//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! * DEE specialization mode — faithful Listing-4 guards vs pruning-only
//!   (exact) — measuring both the transform cost and the resulting
//!   interpreted execution cost;
//! * live range analysis configuration — sound vs escape vs
//!   paper-methodology — measuring analysis time on the mcf kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use memoir_analysis::LiveRangeConfig;
use memoir_interp::{Interp, Value};
use memoir_ir::Type;
use memoir_opt::DeeOptions;

fn dee_mode_ablation(c: &mut Criterion) {
    // Transform cost per mode.
    for (name, opts) in [
        ("listing4", DeeOptions::default()),
        ("exact", DeeOptions::exact()),
    ] {
        c.bench_function(format!("ablation/dee_transform/{name}"), |b| {
            b.iter(|| {
                let mut m = workloads::mcf_ir::build_mcf_ir();
                memoir_opt::construct_ssa(&mut m).unwrap();
                memoir_opt::dee_specialize_calls_with(&mut m, opts);
                memoir_opt::destruct_ssa(&mut m);
                m
            })
        });
    }

    // Execution cost per mode (smaller basket for bench time).
    let args = || {
        vec![
            Value::Int(Type::Index, 600),
            Value::Int(Type::Index, 16),
            Value::Int(Type::Index, 300),
            Value::Int(Type::Index, 2),
        ]
    };
    for (name, opts) in [
        ("listing4", DeeOptions::default()),
        ("exact", DeeOptions::exact()),
    ] {
        let mut m = workloads::mcf_ir::build_mcf_ir();
        memoir_opt::construct_ssa(&mut m).unwrap();
        memoir_opt::dee_specialize_calls_with(&mut m, opts);
        memoir_opt::destruct_ssa(&mut m);
        c.bench_function(format!("ablation/dee_exec/{name}"), |b| {
            b.iter(|| {
                let mut vm = Interp::new(&m).with_fuel(4_000_000_000);
                vm.run_by_name("master", args()).unwrap()
            })
        });
    }
}

fn liverange_config_ablation(c: &mut Criterion) {
    let mut m = workloads::mcf_ir::build_mcf_ir();
    memoir_opt::construct_ssa(&mut m).unwrap();
    let master = m.func_by_name("master").unwrap();
    for (name, cfg) in [
        ("sound", LiveRangeConfig::sound()),
        ("escape", LiveRangeConfig::escape()),
        ("paper", LiveRangeConfig::paper()),
    ] {
        c.bench_function(format!("ablation/liverange/{name}"), |b| {
            b.iter(|| memoir_analysis::live_ranges(&m, master, &cfg))
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(name = benches; config = config(); targets = dee_mode_ablation, liverange_config_ablation);
criterion_main!(benches);
