//! Criterion benches for Table III's compile-time columns: the MEMOIR
//! pipeline at O0 (construction+destruction) and O3 (all optimizations)
//! on each compilation subject.

use criterion::{criterion_group, criterion_main, Criterion};
use memoir_opt::OptLevel;

fn compile_time(c: &mut Criterion) {
    for (name, module) in bench::compilation_subjects() {
        c.bench_function(format!("compile/{name}/O0"), |b| {
            b.iter(|| bench::compile_at(std::hint::black_box(&module), OptLevel::O0))
        });
        c.bench_function(format!("compile/{name}/O3"), |b| {
            b.iter(|| bench::compile_at(std::hint::black_box(&module), bench::o3_all()))
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(name = benches; config = config(); targets = compile_time);
criterion_main!(benches);
