//! Criterion benches for the analyses and low-level passes: the live
//! range analysis on the mcf kernel, and GVN/Sink/ConstantFold on the
//! lowered subjects.

use criterion::{criterion_group, criterion_main, Criterion};
use memoir_analysis::LiveRangeConfig;

fn passes(c: &mut Criterion) {
    // Live range analysis on the SSA mcf kernel.
    let mut m = workloads::mcf_ir::build_mcf_ir();
    memoir_opt::construct_ssa(&mut m).unwrap();
    let master = m.func_by_name("master").unwrap();
    c.bench_function("analysis/liverange_sound/mcf_master", |b| {
        b.iter(|| memoir_analysis::live_ranges(&m, master, &LiveRangeConfig::sound()))
    });
    let qsort = m.func_by_name("qsort").unwrap();
    c.bench_function("analysis/liverange_escape/mcf_qsort", |b| {
        b.iter(|| memoir_analysis::live_ranges(&m, qsort, &LiveRangeConfig::escape()))
    });

    // Low-level passes over the lowered subjects.
    for (name, module) in bench::lowered_subjects() {
        c.bench_function(format!("lir/gvn/{name}"), |b| {
            b.iter(|| {
                let mut m = module.clone();
                lir::gvn(&mut m)
            })
        });
        c.bench_function(format!("lir/constfold/{name}"), |b| {
            b.iter(|| {
                let mut m = module.clone();
                lir::constfold(&mut m)
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(name = benches; config = config(); targets = passes);
criterion_main!(benches);
