//! Criterion bench for E12: the interpreted mcf kernel with and without
//! automatic DEE specialization (the Listings 2–4 complexity effect).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memoir_interp::{Interp, Value};
use memoir_ir::Type;

fn qsort_dee(c: &mut Criterion) {
    let baseline = workloads::mcf_ir::build_mcf_ir();
    let mut dee = workloads::mcf_ir::build_mcf_ir();
    memoir_opt::construct_ssa(&mut dee).unwrap();
    memoir_opt::dee_specialize_calls_with(&mut dee, memoir_opt::DeeOptions::exact());
    memoir_opt::destruct_ssa(&mut dee);

    let mut group = c.benchmark_group("mcf_kernel");
    for n in [500i64, 1500] {
        let args = || {
            vec![
                Value::Int(Type::Index, n),
                Value::Int(Type::Index, 16),
                Value::Int(Type::Index, n / 2),
                Value::Int(Type::Index, 2),
            ]
        };
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut i = Interp::new(&baseline).with_fuel(4_000_000_000);
                i.run_by_name("master", args()).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dee", n), &n, |b, _| {
            b.iter(|| {
                let mut i = Interp::new(&dee).with_fuel(4_000_000_000);
                i.run_by_name("master", args()).unwrap()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(name = benches; config = config(); targets = qsort_dee);
criterion_main!(benches);
