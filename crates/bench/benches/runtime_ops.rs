//! Criterion microbenches for the MUT runtime collections — the per-op
//! costs behind the Figs. 6–9 proxies (sequence vs hashtable access,
//! object field access by layout size).

use criterion::{criterion_group, criterion_main, Criterion};
use memoir_runtime::{Assoc, ObjectHeap, Seq};

fn runtime_ops(c: &mut Criterion) {
    c.bench_function("runtime/seq_push_read", |b| {
        b.iter(|| {
            let mut s = Seq::new();
            for i in 0..1000i64 {
                s.push(i);
            }
            let mut acc = 0;
            for i in 0..1000 {
                acc += *s.read(i);
            }
            acc
        })
    });
    c.bench_function("runtime/assoc_write_read", |b| {
        b.iter(|| {
            let mut a = Assoc::new();
            for i in 0..1000i64 {
                a.write(i, i);
            }
            let mut acc = 0;
            for i in 0..1000 {
                acc += *a.read(&i);
            }
            acc
        })
    });
    c.bench_function("runtime/object_field_access", |b| {
        b.iter(|| {
            let mut h = ObjectHeap::new(56);
            let refs: Vec<_> = (0..500i64).map(|i| h.alloc((i, i * 2))).collect();
            let mut acc = 0;
            for &r in &refs {
                acc += h.read(r, |o| o.0 + o.1);
            }
            acc
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(name = benches; config = config(); targets = runtime_ops);
criterion_main!(benches);
