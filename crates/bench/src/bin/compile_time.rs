//! Compile-time profile: serial vs sharded pass execution, and
//! copy-on-write vs full-clone snapshots, over the Table III subjects
//! plus a lowered low-level-IR subject.
//!
//! Emits `BENCH_compile_time.json`: per subject × mode, the per-pass
//! wall-clock times, the total, and the snapshot-engine counters. The
//! three modes are `serial` (1 thread, CoW snapshots), `threads4`
//! (4 workers, CoW snapshots) and `full-clone` (1 thread, whole-module
//! clone snapshots — the recovery baseline CoW replaces). All modes run
//! under the `SkipPass` policy so snapshots are actually taken.
//!
//! ```text
//! compile_time [--out FILE] [--check]
//! ```
//!
//! `--check` asserts the invariants CI smokes: non-zero pass timings,
//! byte-identical IR between serial and sharded runs, and strictly fewer
//! units cloned by CoW than by the full-clone baseline.

use bench::{compilation_subjects, o3_all};
use memoir_opt::lowering::{compile_lowered_with, LowerConfig, LoweredPipeline};
use memoir_opt::pipeline::{compile_spec_with, default_spec};
use passman::{FaultPolicy, PassOptions, SnapshotStats};

struct ModeResult {
    mode: &'static str,
    threads: usize,
    engine: &'static str,
    total_ms: f64,
    passes: Vec<(String, f64)>,
    snapshots: SnapshotStats,
    /// Printed final IR, for the determinism check (not serialized).
    ir: String,
}

fn run_memoir(m: &memoir_ir::Module, mode: &'static str, threads: usize, cow: bool) -> ModeResult {
    let mut m = m.clone();
    let report = compile_spec_with(&mut m, &default_spec(o3_all()), |pm| {
        let pm = pm.on_fault(FaultPolicy::SkipPass).with_threads(threads);
        if cow {
            pm // pass_manager() installs the CoW engine by default
        } else {
            pm.with_full_clone_snapshots()
        }
    })
    .expect("pipeline runs clean");
    let run = report.run;
    ModeResult {
        mode,
        threads,
        engine: if cow { "cow" } else { "full-clone" },
        total_ms: run.total_ms(),
        passes: run
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.time.as_secs_f64() * 1e3))
            .collect(),
        snapshots: run.snapshots,
        ir: memoir_ir::printer::print_module(&m),
    }
}

fn run_lir(m: &lir::Module, mode: &'static str, threads: usize, cow: bool) -> ModeResult {
    let mut m = m.clone();
    let pm = lir::passes::pass_manager()
        .on_fault(FaultPolicy::SkipPass)
        .with_threads(threads);
    let pm = if cow {
        pm
    } else {
        pm.with_full_clone_snapshots()
    };
    let run = pm
        .run(&mut m, &lir::passes::default_spec())
        .expect("pipeline runs clean");
    ModeResult {
        mode,
        threads,
        engine: if cow { "cow" } else { "full-clone" },
        total_ms: run.total_ms(),
        passes: run
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.time.as_secs_f64() * 1e3))
            .collect(),
        snapshots: run.snapshots,
        ir: format!("{m:?}"),
    }
}

/// The end-to-end lowered pipeline: MEMOIR passes → the verified `lower`
/// stage → the default lir pipeline, profiled as one run (the stage shows
/// up as the `lower` row in `passes`).
fn run_lowered(m: &memoir_ir::Module, mode: &'static str, threads: usize, cow: bool) -> ModeResult {
    let mut m = m.clone();
    let pipeline = LoweredPipeline {
        memoir: default_spec(o3_all()),
        lower_opts: PassOptions::none(),
        lir: lir::passes::default_spec(),
    };
    let cfg = LowerConfig {
        policy: FaultPolicy::SkipPass,
        threads,
        full_clone_snapshots: !cow,
        ..LowerConfig::default()
    };
    let out = compile_lowered_with(&mut m, &pipeline, &cfg).expect("pipeline runs clean");
    let lowered = out.lowered.expect("pipeline lowers");
    let run = out.report.run;
    ModeResult {
        mode,
        threads,
        engine: if cow { "cow" } else { "full-clone" },
        total_ms: run.total_ms(),
        passes: run
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.time.as_secs_f64() * 1e3))
            .collect(),
        snapshots: run.snapshots,
        ir: format!("{lowered:?}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn mode_json(r: &ModeResult) -> String {
    let passes: Vec<String> = r
        .passes
        .iter()
        .map(|(n, ms)| format!("{{\"name\": \"{}\", \"ms\": {:.6}}}", json_escape(n), ms))
        .collect();
    let s = r.snapshots;
    format!(
        "{{\"mode\": \"{}\", \"threads\": {}, \"snapshot_engine\": \"{}\", \
         \"total_ms\": {:.6}, \"passes\": [{}], \"snapshots\": {{\
         \"captures\": {}, \"full_clones\": {}, \"funcs_cloned\": {}, \
         \"funcs_reused\": {}, \"units_cloned\": {}, \"restores\": {}}}}}",
        r.mode,
        r.threads,
        r.engine,
        r.total_ms,
        passes.join(", "),
        s.captures,
        s.full_clones,
        s.funcs_cloned,
        s.funcs_reused,
        s.units_cloned,
        s.restores,
    )
}

fn main() {
    let mut out_path = String::from("BENCH_compile_time.json");
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out_path = it.next().expect("--out needs a value"),
            other => match other.strip_prefix("--out=") {
                Some(v) => out_path = v.to_string(),
                None => panic!("unknown argument `{other}`"),
            },
        }
    }

    let mut subjects: Vec<(String, &'static str, Vec<ModeResult>)> = Vec::new();
    for (name, m) in compilation_subjects() {
        subjects.push((
            name.to_string(),
            "memoir",
            vec![
                run_memoir(&m, "serial", 1, true),
                run_memoir(&m, "threads4", 4, true),
                run_memoir(&m, "full-clone", 1, false),
            ],
        ));
    }
    // One low-level-IR subject, where every pass is function-sharded: the
    // whole-program-sized synthetic module.
    let synth = memoir_lower::lower_module(&workloads::synth_ir::build_synth_ir(120, 2024))
        .expect("lowerable");
    subjects.push((
        "synthetic (lir)".to_string(),
        "lir",
        vec![
            run_lir(&synth, "serial", 1, true),
            run_lir(&synth, "threads4", 4, true),
            run_lir(&synth, "full-clone", 1, false),
        ],
    ));
    // The full MEMOIR → lower → lir pipeline as one profiled run: the
    // verified lowering stage appears as the `lower` row.
    let synth_mir = workloads::synth_ir::build_synth_ir(120, 2024);
    subjects.push((
        "synthetic (memoir→lir)".to_string(),
        "lowered",
        vec![
            run_lowered(&synth_mir, "serial", 1, true),
            run_lowered(&synth_mir, "threads4", 4, true),
            run_lowered(&synth_mir, "full-clone", 1, false),
        ],
    ));

    let subject_json: Vec<String> = subjects
        .iter()
        .map(|(name, ir, modes)| {
            let modes: Vec<String> = modes.iter().map(mode_json).collect();
            format!(
                "    {{\"name\": \"{}\", \"ir\": \"{}\", \"modes\": [\n      {}\n    ]}}",
                json_escape(name),
                ir,
                modes.join(",\n      ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"compile_time\",\n  \"subjects\": [\n{}\n  ]\n}}\n",
        subject_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path} ({} subjects)", subjects.len());

    for (name, _, modes) in &subjects {
        for r in modes {
            let s = r.snapshots;
            println!(
                "{name:>16}  {:>10}  {:8.3}ms  snapshots: {} captures, {} full, \
                 {}c/{}r funcs, {} units",
                r.mode,
                r.total_ms,
                s.captures,
                s.full_clones,
                s.funcs_cloned,
                s.funcs_reused,
                s.units_cloned,
            );
        }
    }

    if check {
        let mut cow_units = 0usize;
        let mut full_units = 0usize;
        for (name, _, modes) in &subjects {
            let serial = &modes[0];
            let threads4 = &modes[1];
            let full = &modes[2];
            assert!(
                serial.passes.iter().map(|(_, ms)| ms).sum::<f64>() > 0.0,
                "{name}: zero pass timings"
            );
            assert_eq!(
                serial.ir, threads4.ir,
                "{name}: sharded IR diverged from serial"
            );
            assert_eq!(
                fingerprint_times(&serial.passes),
                fingerprint_times(&threads4.passes),
                "{name}: sharded pass sequence diverged from serial"
            );
            assert!(serial.snapshots.captures > 0, "{name}: no snapshots taken");
            cow_units += serial.snapshots.units_cloned;
            full_units += full.snapshots.units_cloned;
        }
        assert!(
            cow_units < full_units,
            "CoW snapshots must clone strictly fewer units than the \
             full-clone baseline ({cow_units} vs {full_units})"
        );
        println!("check OK: cow cloned {cow_units} units vs full-clone {full_units}");
    }
}

/// The pass-name sequence (timings themselves legitimately differ
/// between runs; the executed sequence must not).
fn fingerprint_times(passes: &[(String, f64)]) -> Vec<&str> {
    passes.iter().map(|(n, _)| n.as_str()).collect()
}
