//! Compile-time profile: serial vs sharded pass execution, and
//! copy-on-write vs full-clone snapshots, over the Table III subjects
//! plus a lowered low-level-IR subject.
//!
//! Emits `BENCH_compile_time.json`: per subject × mode, the per-pass
//! wall-clock times, the total, and the snapshot-engine counters. The
//! three modes are `serial` (1 thread, CoW snapshots), `threads4`
//! (4 workers, CoW snapshots) and `full-clone` (1 thread, whole-module
//! clone snapshots — the recovery baseline CoW replaces). All modes run
//! under the `SkipPass` policy so snapshots are actually taken.
//!
//! Also emits `BENCH_incremental.json`: warm-cache recompiles through a
//! shared [`passman::CompileCache`]. Each subject compiles the synthetic
//! whole-program module cold (populating the cache), edits 0%, 10%, or
//! 50% of its functions, and recompiles warm — reporting the cache
//! hit/skip/miss counters, the reuse rate, and the speedup vs the cold
//! compile. The 0% subject is the incremental-recompilation contract:
//! byte-identical output with ≥ 90% of per-function work reused.
//!
//! ```text
//! compile_time [--out FILE] [--inc-out FILE] [--check]
//! ```
//!
//! `--check` asserts the invariants CI smokes: non-zero pass timings,
//! byte-identical IR between serial and sharded runs, strictly fewer
//! units cloned by CoW than by the full-clone baseline, and — for the
//! incremental section — ≥ 90% cache reuse and byte-identical output on
//! the unchanged-module recompile.

use bench::report::{json_escape, write_report, BenchArgs};
use bench::{compilation_subjects, o3_all};
use memoir_opt::lowering::{compile_lowered_with, LowerConfig, LoweredPipeline};
use memoir_opt::pipeline::{compile_spec_with, default_spec};
use passman::{FaultPolicy, PassOptions, SnapshotStats};

struct ModeResult {
    mode: &'static str,
    threads: usize,
    engine: &'static str,
    total_ms: f64,
    passes: Vec<(String, f64)>,
    snapshots: SnapshotStats,
    /// Printed final IR, for the determinism check (not serialized).
    ir: String,
}

fn run_memoir(m: &memoir_ir::Module, mode: &'static str, threads: usize, cow: bool) -> ModeResult {
    let mut m = m.clone();
    let report = compile_spec_with(&mut m, &default_spec(o3_all()), |pm| {
        let pm = pm.on_fault(FaultPolicy::SkipPass).with_threads(threads);
        if cow {
            pm // pass_manager() installs the CoW engine by default
        } else {
            pm.with_full_clone_snapshots()
        }
    })
    .expect("pipeline runs clean");
    let run = report.run;
    ModeResult {
        mode,
        threads,
        engine: if cow { "cow" } else { "full-clone" },
        total_ms: run.total_ms(),
        passes: run
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.time.as_secs_f64() * 1e3))
            .collect(),
        snapshots: run.snapshots,
        ir: memoir_ir::printer::print_module(&m),
    }
}

fn run_lir(m: &lir::Module, mode: &'static str, threads: usize, cow: bool) -> ModeResult {
    let mut m = m.clone();
    let pm = lir::passes::pass_manager()
        .on_fault(FaultPolicy::SkipPass)
        .with_threads(threads);
    let pm = if cow {
        pm
    } else {
        pm.with_full_clone_snapshots()
    };
    let run = pm
        .run(&mut m, &lir::passes::default_spec())
        .expect("pipeline runs clean");
    ModeResult {
        mode,
        threads,
        engine: if cow { "cow" } else { "full-clone" },
        total_ms: run.total_ms(),
        passes: run
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.time.as_secs_f64() * 1e3))
            .collect(),
        snapshots: run.snapshots,
        ir: format!("{m:?}"),
    }
}

/// The end-to-end lowered pipeline: MEMOIR passes → the verified `lower`
/// stage → the default lir pipeline, profiled as one run (the stage shows
/// up as the `lower` row in `passes`).
fn run_lowered(m: &memoir_ir::Module, mode: &'static str, threads: usize, cow: bool) -> ModeResult {
    let mut m = m.clone();
    let pipeline = LoweredPipeline {
        memoir: default_spec(o3_all()),
        lower_opts: PassOptions::none(),
        lir: lir::passes::default_spec(),
    };
    let cfg = LowerConfig {
        policy: FaultPolicy::SkipPass,
        threads,
        full_clone_snapshots: !cow,
        ..LowerConfig::default()
    };
    let out = compile_lowered_with(&mut m, &pipeline, &cfg).expect("pipeline runs clean");
    let lowered = out.lowered.expect("pipeline lowers");
    let run = out.report.run;
    ModeResult {
        mode,
        threads,
        engine: if cow { "cow" } else { "full-clone" },
        total_ms: run.total_ms(),
        passes: run
            .passes
            .iter()
            .map(|p| (p.name.clone(), p.time.as_secs_f64() * 1e3))
            .collect(),
        snapshots: run.snapshots,
        ir: format!("{lowered:?}"),
    }
}

/// One warm-cache recompile subject: edit `edited_funcs` functions,
/// recompile through the cache the cold run populated.
struct IncrementalResult {
    edited_pct: u32,
    edited_funcs: usize,
    funcs: usize,
    cold_ms: f64,
    warm_ms: f64,
    cache: passman::CompileCacheStats,
    identical: bool,
}

/// Compiles `m` through the full lowered pipeline with `cache`
/// installed, returning wall-clock ms, this run's cache counters, and
/// the printed lowered output.
fn compile_cached(
    m: &memoir_ir::Module,
    cache: &passman::CompileCache,
) -> (f64, passman::CompileCacheStats, String) {
    let mut m = m.clone();
    let pipeline = LoweredPipeline {
        memoir: default_spec(o3_all()),
        lower_opts: PassOptions::none(),
        lir: lir::passes::default_spec(),
    };
    let cfg = LowerConfig {
        threads: 1,
        cross_check: false,
        cache: Some(cache.clone()),
        ..LowerConfig::default()
    };
    let t0 = std::time::Instant::now();
    let out = compile_lowered_with(&mut m, &pipeline, &cfg).expect("pipeline runs clean");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let lowered = out.lowered.expect("pipeline lowers");
    (ms, out.report.run.compile_cache, format!("{lowered:?}"))
}

/// Edits the first `count` functions in place — bumping an `i64`
/// constant where one exists, renaming otherwise — so their fingerprints
/// (and their callers') change while the rest of the module stays
/// cache-hot.
fn edit_functions(m: &mut memoir_ir::Module, count: usize) -> usize {
    use memoir_ir::{Constant, Type, ValueDef};
    let ids: Vec<_> = m.funcs.ids().collect();
    let mut edited = 0;
    for &fid in &ids {
        if edited == count {
            break;
        }
        let f = &mut m.funcs[fid];
        let const_val = f.values.ids().find(|&v| {
            matches!(
                f.values[v].def,
                ValueDef::Const(Constant::Int(Type::I64, _))
            )
        });
        match const_val {
            Some(v) => {
                let ValueDef::Const(Constant::Int(t, k)) = f.values[v].def else {
                    unreachable!()
                };
                f.values[v].def = ValueDef::Const(Constant::Int(t, k.wrapping_add(1)));
            }
            None => f.name.push_str("_edited"),
        }
        edited += 1;
    }
    edited
}

/// Cold-compiles the subject into a fresh cache, edits `pct`% of its
/// functions, and recompiles warm through the same cache.
fn run_incremental(base: &memoir_ir::Module, pct: u32) -> IncrementalResult {
    let funcs = base.funcs.ids().count();
    let cache = passman::CompileCache::new();
    let (cold_ms, _, cold_ir) = compile_cached(base, &cache);
    let mut edited_m = base.clone();
    let edited_funcs = edit_functions(&mut edited_m, funcs * pct as usize / 100);
    let (warm_ms, warm_cache, warm_ir) = compile_cached(&edited_m, &cache);
    IncrementalResult {
        edited_pct: pct,
        edited_funcs,
        funcs,
        cold_ms,
        warm_ms,
        cache: warm_cache,
        identical: cold_ir == warm_ir,
    }
}

fn incremental_json(r: &IncrementalResult) -> String {
    let c = r.cache;
    format!(
        "    {{\"edited_pct\": {}, \"edited_funcs\": {}, \"funcs\": {},          \"cold_ms\": {:.6}, \"warm_ms\": {:.6}, \"speedup\": {:.6},          \"cache\": {{\"hits\": {}, \"skips\": {}, \"misses\": {},          \"lookups\": {}, \"reuse_rate\": {:.6}}}, \"identical_output\": {}}}",
        r.edited_pct,
        r.edited_funcs,
        r.funcs,
        r.cold_ms,
        r.warm_ms,
        if r.warm_ms > 0.0 {
            r.cold_ms / r.warm_ms
        } else {
            0.0
        },
        c.hits,
        c.skips,
        c.misses,
        c.lookups(),
        c.reuse_rate(),
        r.identical,
    )
}

fn mode_json(r: &ModeResult) -> String {
    let passes: Vec<String> = r
        .passes
        .iter()
        .map(|(n, ms)| format!("{{\"name\": \"{}\", \"ms\": {:.6}}}", json_escape(n), ms))
        .collect();
    let s = r.snapshots;
    format!(
        "{{\"mode\": \"{}\", \"threads\": {}, \"snapshot_engine\": \"{}\", \
         \"total_ms\": {:.6}, \"passes\": [{}], \"snapshots\": {{\
         \"captures\": {}, \"full_clones\": {}, \"funcs_cloned\": {}, \
         \"funcs_reused\": {}, \"units_cloned\": {}, \"restores\": {}}}}}",
        r.mode,
        r.threads,
        r.engine,
        r.total_ms,
        passes.join(", "),
        s.captures,
        s.full_clones,
        s.funcs_cloned,
        s.funcs_reused,
        s.units_cloned,
        s.restores,
    )
}

fn main() {
    let args = BenchArgs::parse("BENCH_compile_time.json", &["inc-out"]);
    let out_path = args.out.clone();
    let inc_path = args
        .opt("inc-out")
        .unwrap_or("BENCH_incremental.json")
        .to_string();
    let check = args.check;

    let mut subjects: Vec<(String, &'static str, Vec<ModeResult>)> = Vec::new();
    for (name, m) in compilation_subjects() {
        subjects.push((
            name.to_string(),
            "memoir",
            vec![
                run_memoir(&m, "serial", 1, true),
                run_memoir(&m, "threads4", 4, true),
                run_memoir(&m, "full-clone", 1, false),
            ],
        ));
    }
    // One low-level-IR subject, where every pass is function-sharded: the
    // whole-program-sized synthetic module.
    let synth = memoir_lower::lower_module(&workloads::synth_ir::build_synth_ir(120, 2024))
        .expect("lowerable");
    subjects.push((
        "synthetic (lir)".to_string(),
        "lir",
        vec![
            run_lir(&synth, "serial", 1, true),
            run_lir(&synth, "threads4", 4, true),
            run_lir(&synth, "full-clone", 1, false),
        ],
    ));
    // The full MEMOIR → lower → lir pipeline as one profiled run: the
    // verified lowering stage appears as the `lower` row.
    let synth_mir = workloads::synth_ir::build_synth_ir(120, 2024);
    subjects.push((
        "synthetic (memoir→lir)".to_string(),
        "lowered",
        vec![
            run_lowered(&synth_mir, "serial", 1, true),
            run_lowered(&synth_mir, "threads4", 4, true),
            run_lowered(&synth_mir, "full-clone", 1, false),
        ],
    ));

    let subject_json: Vec<String> = subjects
        .iter()
        .map(|(name, ir, modes)| {
            let modes: Vec<String> = modes.iter().map(mode_json).collect();
            format!(
                "    {{\"name\": \"{}\", \"ir\": \"{}\", \"modes\": [\n      {}\n    ]}}",
                json_escape(name),
                ir,
                modes.join(",\n      ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"compile_time\",\n  \"subjects\": [\n{}\n  ]\n}}\n",
        subject_json.join(",\n")
    );
    write_report(&out_path, &json, &format!("{} subjects", subjects.len()));

    for (name, _, modes) in &subjects {
        for r in modes {
            let s = r.snapshots;
            println!(
                "{name:>16}  {:>10}  {:8.3}ms  snapshots: {} captures, {} full, \
                 {}c/{}r funcs, {} units",
                r.mode,
                r.total_ms,
                s.captures,
                s.full_clones,
                s.funcs_cloned,
                s.funcs_reused,
                s.units_cloned,
            );
        }
    }

    // Warm-cache/incremental subjects: cold compile populates a shared
    // compile cache; the warm recompile (0%, 10%, 50% of functions
    // edited) replays it.
    let incrementals: Vec<IncrementalResult> = [0u32, 10, 50]
        .iter()
        .map(|&pct| run_incremental(&synth_mir, pct))
        .collect();
    let inc_json = format!(
        "{{\n  \"bench\": \"incremental\",\n  \"subject\": \"synthetic (memoir→lir)\",\n  \"subjects\": [\n{}\n  ]\n}}\n",
        incrementals
            .iter()
            .map(incremental_json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    write_report(
        &inc_path,
        &inc_json,
        &format!("{} subjects", incrementals.len()),
    );
    for r in &incrementals {
        println!(
            "incremental {:>3}% edited ({:>3}/{} funcs)  cold {:8.3}ms  warm {:8.3}ms               {:.1}x  cache {}h/{}s/{}m ({:.0}% reuse){}",
            r.edited_pct,
            r.edited_funcs,
            r.funcs,
            r.cold_ms,
            r.warm_ms,
            if r.warm_ms > 0.0 { r.cold_ms / r.warm_ms } else { 0.0 },
            r.cache.hits,
            r.cache.skips,
            r.cache.misses,
            r.cache.reuse_rate() * 100.0,
            if r.identical { ", identical" } else { "" },
        );
    }

    if check {
        let unchanged = &incrementals[0];
        assert!(
            unchanged.cache.lookups() > 0,
            "warm recompile made no cache lookups"
        );
        assert!(
            unchanged.cache.reuse_rate() >= 0.9,
            "unchanged-module warm recompile must reuse >= 90% of per-function              work, got {:.1}% ({:?})",
            unchanged.cache.reuse_rate() * 100.0,
            unchanged.cache
        );
        assert!(
            unchanged.identical,
            "unchanged-module warm recompile must be byte-identical to cold"
        );
        for r in &incrementals[1..] {
            assert!(
                r.cache.misses > 0,
                "{}% edit produced no cache misses",
                r.edited_pct
            );
        }
        println!(
            "check OK: unchanged warm recompile reused {:.1}% of lookups, identical output",
            unchanged.cache.reuse_rate() * 100.0
        );

        let mut cow_units = 0usize;
        let mut full_units = 0usize;
        for (name, _, modes) in &subjects {
            let serial = &modes[0];
            let threads4 = &modes[1];
            let full = &modes[2];
            assert!(
                serial.passes.iter().map(|(_, ms)| ms).sum::<f64>() > 0.0,
                "{name}: zero pass timings"
            );
            assert_eq!(
                serial.ir, threads4.ir,
                "{name}: sharded IR diverged from serial"
            );
            assert_eq!(
                fingerprint_times(&serial.passes),
                fingerprint_times(&threads4.passes),
                "{name}: sharded pass sequence diverged from serial"
            );
            assert!(serial.snapshots.captures > 0, "{name}: no snapshots taken");
            cow_units += serial.snapshots.units_cloned;
            full_units += full.snapshots.units_cloned;
        }
        assert!(
            cow_units < full_units,
            "CoW snapshots must clone strictly fewer units than the \
             full-clone baseline ({cow_units} vs {full_units})"
        );
        println!("check OK: cow cloned {cow_units} units vs full-clone {full_units}");
    }
}

/// The pass-name sequence (timings themselves legitimately differ
/// between runs; the executed sequence must not).
fn fingerprint_times(passes: &[(String, f64)]) -> Vec<&str> {
    passes.iter().map(|(n, _)| n.as_str()).collect()
}
