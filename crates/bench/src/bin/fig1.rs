//! Figure 1: classification of heap memory usage across the SPECINT-shaped
//! workload suite — bytes allocated, read, and written per collection
//! class (paper §III).

use memoir_runtime::CollectionClass;

fn main() {
    let results = workloads::suite::run_suite();
    let classes = CollectionClass::ALL;

    for (title, pick) in [
        ("(a) bytes allocated per collection class", 0usize),
        ("(b) bytes read per collection class", 1),
        ("(c) bytes written per collection class", 2),
    ] {
        println!("{}", bench::header(&format!("Figure 1{title}")));
        print!("{:>12}", "");
        for c in classes {
            print!("{:>14}", c.label());
        }
        println!();
        for r in &results {
            print!("{:>12}", r.name);
            let total: f64 = classes
                .iter()
                .map(|&c| {
                    let cb = r.ledger.class(c);
                    (match pick {
                        0 => cb.allocated,
                        1 => cb.read,
                        _ => cb.written,
                    }) as f64
                })
                .sum();
            for c in classes {
                let cb = r.ledger.class(c);
                let v = match pick {
                    0 => cb.allocated,
                    1 => cb.read,
                    _ => cb.written,
                } as f64;
                let share = if total > 0.0 { v / total * 100.0 } else { 0.0 };
                print!("{share:>13.1}%");
            }
            println!();
        }
    }

    // The §III headline number.
    let mut structured = 0.0;
    let mut total = 0.0;
    for r in &results {
        for c in classes {
            let b = r.ledger.class(c).allocated as f64;
            total += b;
            if c.representable() {
                structured += b;
            }
        }
    }
    println!(
        "\nMEMOIR-representable share of allocated bytes across the suite: {:.1}%",
        structured / total * 100.0
    );
}
