//! Figure 10: percentage of global value numbers introduced for memory
//! operations in the low-level GVN (paper §VII-D).

fn main() {
    println!(
        "{}",
        bench::header("Figure 10 — % value numbers for memory (GVN)")
    );
    for (name, module) in bench::lowered_subjects() {
        let mut m = module;
        let stats = lir::gvn(&mut m);
        println!(
            "{:>12}  {:5.1}%   ({} of {} value numbers)",
            name,
            stats.memory_fraction() * 100.0,
            stats.memory_value_numbers,
            stats.total_value_numbers
        );
    }
    println!("\n(paper: 30–52.8% across SPECINT; memory VNs dominate hot benchmarks)");
}
