//! Figure 11: the Sink pass attempt breakdown — success / blocked by
//! may-write / blocked by may-reference (paper §VII-D).

fn main() {
    println!("{}", bench::header("Figure 11 — Sink attempt breakdown"));
    println!(
        "{:>12} {:>10} {:>12} {:>16}",
        "benchmark", "success", "may write", "may reference"
    );
    for (name, module) in bench::lowered_subjects() {
        let mut m = module;
        let stats = lir::sink(&mut m);
        let total = stats.attempts().max(1) as f64;
        println!(
            "{:>12} {:>9.1}% {:>11.1}% {:>15.1}%",
            name,
            stats.success as f64 / total * 100.0,
            stats.blocked_may_write as f64 / total * 100.0,
            stats.blocked_may_reference as f64 / total * 100.0,
        );
    }
    println!("\n(paper: ~15–42% success; the rest blocked by memory barriers)");
}
