//! Figure 12: the ConstantFold attempt breakdown — scalar success / load
//! success / load fail (paper §VII-D).

fn main() {
    println!(
        "{}",
        bench::header("Figure 12 — ConstantFold attempt breakdown")
    );
    println!(
        "{:>12} {:>15} {:>13} {:>11}",
        "benchmark", "scalar success", "load success", "load fail"
    );
    for (name, module) in bench::lowered_subjects() {
        let mut m = module;
        // mem2reg + GVN first (the production pipeline order): promoted
        // allocas and merged address computations are what give
        // ConstantFold its few load-fold successes.
        lir::mem2reg(&mut m);
        lir::gvn(&mut m);
        let stats = lir::constfold(&mut m);
        let total = stats.attempts().max(1) as f64;
        println!(
            "{:>12} {:>14.1}% {:>12.1}% {:>10.1}%",
            name,
            stats.scalar_success as f64 / total * 100.0,
            stats.load_success as f64 / total * 100.0,
            stats.load_fail as f64 / total * 100.0,
        );
    }
    println!("\n(paper: load folds mostly fail in the lowered form; MEMOIR's");
    println!(" element-level constprop succeeds on the same programs — see");
    println!(" `memoir-opt::constprop` and the listing1 integration test.)");
}
