//! Figure 6: relative execution time of the ported benchmarks under the
//! ALL configuration (MEMOIR vs the baseline pipeline).

fn main() {
    println!(
        "{}",
        bench::header("Figure 6 — relative execution time (vs baseline)")
    );
    // mcf.
    let sweep = bench::mcf_sweep();
    let base = sweep[0].1.ledger.cost;
    let all = &sweep.iter().find(|(n, _)| *n == "ALL").unwrap().1;
    println!(
        "{}",
        bench::pct("mcf (MEMOIR ALL)", all.ledger.cost / base - 1.0)
    );

    // deepsjeng.
    let p = workloads::deepsjeng::DeepsjengParams::default();
    let dbase =
        workloads::deepsjeng::run_deepsjeng(&p, workloads::deepsjeng::DeepsjengVariant::default());
    let dfe = workloads::deepsjeng::run_deepsjeng(
        &p,
        workloads::deepsjeng::DeepsjengVariant { fe_key_fold: true },
    );
    println!(
        "{}",
        bench::pct(
            "deepsjeng (MEMOIR ALL)",
            dfe.ledger.cost / dbase.ledger.cost - 1.0
        )
    );
    println!("\n(paper: mcf −26.6%…−28%, deepsjeng +5.1%)");
}
