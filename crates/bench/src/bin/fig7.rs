//! Figure 7: relative memory usage (max RSS) of the ported benchmarks
//! under the ALL configuration.

fn main() {
    println!(
        "{}",
        bench::header("Figure 7 — relative max RSS (vs baseline)")
    );
    let sweep = bench::mcf_sweep();
    let base = sweep[0].1.ledger.peak_bytes as f64;
    let all = &sweep.iter().find(|(n, _)| *n == "ALL").unwrap().1;
    println!(
        "{}",
        bench::pct(
            "mcf (MEMOIR ALL)",
            all.ledger.peak_bytes as f64 / base - 1.0
        )
    );

    let p = workloads::deepsjeng::DeepsjengParams::default();
    let dbase =
        workloads::deepsjeng::run_deepsjeng(&p, workloads::deepsjeng::DeepsjengVariant::default());
    let dfe = workloads::deepsjeng::run_deepsjeng(
        &p,
        workloads::deepsjeng::DeepsjengVariant { fe_key_fold: true },
    );
    println!(
        "{}",
        bench::pct(
            "deepsjeng (MEMOIR ALL)",
            dfe.ledger.peak_bytes as f64 / dbase.ledger.peak_bytes as f64 - 1.0
        )
    );
    println!("\n(paper: mcf −20.8%, deepsjeng −16.6%)");
}
