//! Figure 8: relative execution time of each mcf optimization, in
//! isolation and concert (paper §VII-C).

fn main() {
    println!(
        "{}",
        bench::header("Figure 8 — mcf execution time per configuration")
    );
    let sweep = bench::mcf_sweep();
    let base = sweep[0].1.ledger.cost;
    for (name, out) in &sweep {
        println!("{}", bench::pct(name, out.ledger.cost / base - 1.0));
    }
    println!("\n(paper: DEE −26.6%, FE +10.4%, FE+RIE +1.3%, FE+DFE −4.7%, ALL ≈ DEE −2.1%)");
}
