//! Figure 9: relative max RSS of each mcf optimization, in isolation and
//! concert (paper §VII-C).

fn main() {
    println!(
        "{}",
        bench::header("Figure 9 — mcf max RSS per configuration")
    );
    let sweep = bench::mcf_sweep();
    let base = sweep[0].1.ledger.peak_bytes as f64;
    for (name, out) in &sweep {
        println!(
            "{}",
            bench::pct(name, out.ledger.peak_bytes as f64 / base - 1.0)
        );
    }
    println!("\n(paper: FE +3.3%, FE+RIE −10.4%, FE+DFE/ALL −20.8%)");
}
