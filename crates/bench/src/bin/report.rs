//! The E12 complexity sweep: the interpreted mcf kernel, baseline vs the
//! automatically DEE-specialized build, across basket sizes — the
//! `O(n log n) → O(n + B log B)` effect of §VII-C. The other artefacts
//! each have their own binary (fig1, table2, table3, fig6–fig12).

use memoir_interp::{Interp, Value};
use memoir_ir::Type;

fn main() {
    println!(
        "{}",
        bench::header("E12 — automatic DEE on the mcf IR kernel (interp cost)")
    );
    let baseline = workloads::mcf_ir::build_mcf_ir();
    let mut dee = workloads::mcf_ir::build_mcf_ir();
    memoir_opt::construct_ssa(&mut dee).unwrap();
    let stats = memoir_opt::dee_specialize_calls_with(&mut dee, memoir_opt::DeeOptions::exact());
    memoir_opt::destruct_ssa(&mut dee);
    println!("transform: {stats:?}");
    println!(
        "{:>8} {:>4} {:>14} {:>14} {:>9}",
        "n0+K", "B", "baseline cost", "DEE cost", "speedup"
    );
    for (n0, k) in [(1000i64, 500i64), (2000, 1000), (4000, 2000), (8000, 4000)] {
        let run = |m: &memoir_ir::Module| {
            let mut i = Interp::new(m).with_fuel(4_000_000_000);
            let args = vec![
                Value::Int(Type::Index, n0),
                Value::Int(Type::Index, 16),
                Value::Int(Type::Index, k),
                Value::Int(Type::Index, 3),
            ];
            let out = i.run_by_name("master", args).unwrap();
            (out[0].as_int().unwrap(), i.stats.cost)
        };
        let (ob, cb) = run(&baseline);
        let (od, cd) = run(&dee);
        assert_eq!(ob, od, "exact-mode objectives match");
        println!(
            "{:>8} {:>4} {:>14.0} {:>14.0} {:>8.1}%",
            n0 + k,
            16,
            cb,
            cd,
            (1.0 - cd / cb) * 100.0
        );
    }
    println!("\n(the speedup grows with n while B stays fixed: O(n log n) → O(n + B log B))");
}
