//! Table III (artifact `table_2`): MEMOIR compile time at O0/O3 and the
//! collection census (source / SSA / binary), demonstrating that SSA
//! construction+destruction introduces no spurious copies.

use memoir_opt::OptLevel;

fn main() {
    println!(
        "{}",
        bench::header("Table III — compile time and collection census")
    );
    println!(
        "{:>12} | {:>12} {:>12} | {:>8} {:>6} {:>8} | {:>14}",
        "benchmark", "MEMOIR O0", "MEMOIR O3", "source", "SSA", "binary", "destruct copies"
    );
    println!("{}", "-".repeat(96));
    for (name, module) in bench::compilation_subjects() {
        let source = module.collection_census();
        // Warm once, then take the median of several timed runs.
        let _ = bench::compile_at(&module, OptLevel::O0);
        let mut o0_times = Vec::new();
        let mut o0_report = None;
        for _ in 0..5 {
            let r = bench::compile_at(&module, OptLevel::O0);
            o0_times.push(r.total_ms());
            o0_report = Some(r);
        }
        let mut o3_times = Vec::new();
        let mut o3_report = None;
        for _ in 0..5 {
            let r = bench::compile_at(&module, bench::o3_all());
            o3_times.push(r.total_ms());
            o3_report = Some(r);
        }
        o0_times.sort_by(f64::total_cmp);
        o3_times.sort_by(f64::total_cmp);
        let (o0r, o3r) = (o0_report.unwrap(), o3_report.unwrap());
        println!(
            "{:>12} | {:>10.2}ms {:>10.2}ms | {:>8} {:>6} {:>8} | {:>14}",
            name,
            o0_times[o0_times.len() / 2],
            o3_times[o3_times.len() / 2],
            source.allocations,
            o0r.ssa_census.ssa_variables,
            o3r.final_census.allocations,
            o0r.destruct_copies,
        );
        assert_eq!(o0r.destruct_copies, 0, "no spurious copies at O0");
    }
    println!("\n(`destruct copies` = collection copies materialized by SSA destruction;");
    println!(" the paper's Table III claim is that this is zero.)");
}
