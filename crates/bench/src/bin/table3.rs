//! Table II (artifact `table_3`): developer effort — significant lines of
//! code of each MEMOIR transformation, next to the low-level-IR passes
//! they are contrasted with in §VII-D.

use std::path::Path;

fn sloc(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut in_tests = false;
    let mut count = 0;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        count += 1;
    }
    count
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    println!(
        "{}",
        bench::header("Table II — developer effort (SLOC, tests excluded)")
    );
    println!("{:>28} | {:>6}", "MEMOIR pass", "SLOC");
    println!("{}", "-".repeat(40));
    for (label, file) in [
        ("DEE", "crates/memoir-opt/src/dee.rs"),
        ("DFE", "crates/memoir-opt/src/dfe.rs"),
        ("FE", "crates/memoir-opt/src/field_elision.rs"),
        ("RIE", "crates/memoir-opt/src/rie.rs"),
        ("KeyFold", "crates/memoir-opt/src/key_fold.rs"),
        ("SSA construction", "crates/memoir-opt/src/ssa_construct.rs"),
        ("SSA destruction", "crates/memoir-opt/src/ssa_destruct.rs"),
    ] {
        println!("{label:>28} | {:>6}", sloc(&root.join(file)));
    }
    println!();
    println!("{:>28} | {:>6}", "low-level-IR pass", "SLOC");
    println!("{}", "-".repeat(40));
    for (label, file) in [
        ("GVN (NewGVN analogue)", "crates/lir/src/gvn.rs"),
        ("Sink", "crates/lir/src/sinkpass.rs"),
        ("ConstantFold", "crates/lir/src/constfold.rs"),
    ] {
        println!("{label:>28} | {:>6}", sloc(&root.join(file)));
    }
}
