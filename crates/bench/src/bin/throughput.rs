//! Service throughput bench: a fixed Smallbank-ish compile-job mix
//! driven closed-loop through `memoird` at several worker × client
//! combinations, plus one deliberately overloaded configuration and a
//! fault-injection determinism check.
//!
//! Emits `BENCH_throughput.json`: per configuration, jobs/sec, p50/p99
//! latency, terminal-outcome counts (ok / degraded-ok / shed / failed),
//! retry/timeout/panic counts, and compile-cache reuse. The
//! `fault_check` section replays the same mix with `slow-job`,
//! `worker-panic`, and `poison-cache` plans at the same seed and records
//! whether every recovered job's output stayed byte-identical.
//!
//! `--check` asserts the robustness invariants: at least two distinct
//! worker counts were measured, no configuration lost a job
//! (ok + degraded-ok + shed + failed == submitted), and the
//! fault-injected replay was byte-identical with zero lost jobs.

use bench::report::{write_report, BenchArgs};
use memoird::{JobOutcome, JobSpec, RetryPolicy, Service, ServiceConfig, ServiceStats};
use passman::{CompileCache, PipelineSpec};
use workloads::synth_ir::build_synth_ir;

const MEMOIR_SPEC: &str = "ssa-construct,constprop,dce,ssa-destruct";
const LOWER_SPEC: &str = "ssa-construct,constprop,dce,ssa-destruct,lower,mem2reg,dce";

/// The fixed job mix, one "tranche" of 12 jobs: mostly small modules
/// drawn from three repeated seeds (so a shared cache gets real hits),
/// a few mid-size, one large, one through-lowering.
fn job_mix(tranches: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for t in 0..tranches {
        for i in 0..7 {
            let seed = (i % 3) as u64 + 1;
            jobs.push(JobSpec::new(
                format!("small-{t}-{i}"),
                build_synth_ir(4, seed),
                PipelineSpec::parse(MEMOIR_SPEC).unwrap(),
            ));
        }
        for i in 0..3 {
            jobs.push(JobSpec::new(
                format!("mid-{t}-{i}"),
                build_synth_ir(12, 40 + i as u64),
                PipelineSpec::parse(MEMOIR_SPEC).unwrap(),
            ));
        }
        jobs.push(JobSpec::new(
            format!("large-{t}"),
            build_synth_ir(24, 99),
            PipelineSpec::parse(MEMOIR_SPEC).unwrap(),
        ));
        jobs.push(JobSpec::new(
            format!("lowered-{t}"),
            build_synth_ir(4, 2),
            PipelineSpec::parse(LOWER_SPEC).unwrap(),
        ));
    }
    jobs
}

struct ConfigResult {
    name: String,
    workers: usize,
    clients: usize,
    jobs: usize,
    wall_ms: f64,
    stats: ServiceStats,
}

impl ConfigResult {
    fn jobs_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.jobs as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }

    fn lost(&self) -> i64 {
        self.stats.submitted as i64 - self.stats.terminal() as i64
    }
}

/// Closed-loop run: `clients` driver threads share the service, each
/// submitting its slice of the mix one job at a time (submit, wait,
/// next), so offered load tracks service capacity.
fn run_closed_loop(name: &str, workers: usize, clients: usize, tranches: usize) -> ConfigResult {
    let jobs = job_mix(tranches);
    let total = jobs.len();
    let cfg = ServiceConfig {
        workers,
        queue_cap: 256,
        cache: Some(CompileCache::new()),
        job_cache: true,
        retry: RetryPolicy {
            base_backoff_ms: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let svc = Service::start(cfg);
    let mut slices: Vec<Vec<JobSpec>> = (0..clients).map(|_| Vec::new()).collect();
    for (i, j) in jobs.into_iter().enumerate() {
        slices[i % clients].push(j);
    }
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for slice in slices {
            let svc = &svc;
            scope.spawn(move || {
                for job in slice {
                    let outcome = svc.submit(job).wait();
                    assert!(outcome.output().is_some() || outcome.kind() == "shed");
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = svc.join();
    ConfigResult {
        name: name.to_string(),
        workers,
        clients,
        jobs: total,
        wall_ms,
        stats,
    }
}

/// Overload run: everything submitted open-loop into a tiny queue on one
/// worker, so admission control must shed; the invariant under test is
/// that shed jobs still get structured terminal outcomes.
fn run_overload(tranches: usize) -> ConfigResult {
    let jobs = job_mix(tranches);
    let total = jobs.len();
    let cfg = ServiceConfig {
        workers: 1,
        queue_cap: 4,
        shed_qdepth: Some(3),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let (outcomes, stats) = memoird::run_jobs(cfg, jobs);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(outcomes.len(), total);
    ConfigResult {
        name: "overload".to_string(),
        workers: 1,
        clients: 1,
        jobs: total,
        wall_ms,
        stats,
    }
}

struct FaultCheck {
    jobs: usize,
    clean: Vec<JobOutcome>,
    faulty: Vec<JobOutcome>,
    stats: ServiceStats,
}

impl FaultCheck {
    fn lost(&self) -> i64 {
        self.stats.submitted as i64 - self.stats.terminal() as i64
    }

    /// Byte-identical outputs for every job across the clean and the
    /// fault-injected run at the same seed.
    fn byte_identical(&self) -> bool {
        self.clean.len() == self.faulty.len()
            && self
                .clean
                .iter()
                .zip(&self.faulty)
                .all(|(a, b)| a.output() == b.output())
    }
}

/// The determinism check: the same mix and seed, once clean and once
/// under slow-job / worker-panic / poison-cache plans with the watchdog
/// armed. Submission is single-threaded so job ids (fault targets) are
/// reproducible.
fn run_fault_check() -> FaultCheck {
    let mk_cfg = || ServiceConfig {
        workers: 2,
        seed: 2024,
        cache: Some(CompileCache::new()),
        retry: RetryPolicy {
            base_backoff_ms: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let faulty_cfg = ServiceConfig {
        timeout_ms: Some(300),
        faults: vec![
            "slow-job@1".parse().unwrap(),
            "worker-panic@3".parse().unwrap(),
            "poison-cache@5".parse().unwrap(),
        ],
        ..mk_cfg()
    };
    let (clean, _) = memoird::run_jobs(mk_cfg(), job_mix(1));
    let (faulty, stats) = memoird::run_jobs(faulty_cfg, job_mix(1));
    FaultCheck {
        jobs: clean.len(),
        clean,
        faulty,
        stats,
    }
}

fn stats_json(s: &ServiceStats) -> String {
    format!(
        "{{\"ok\": {}, \"degraded_ok\": {}, \"shed\": {}, \"failed\": {}, \
         \"retries\": {}, \"timeouts\": {}, \"worker_panics\": {}, \
         \"cache\": {{\"hits\": {}, \"skips\": {}, \"misses\": {}, \
         \"contended\": {}, \"job_hits\": {}, \"reuse_rate\": {:.4}}}}}",
        s.ok,
        s.degraded_ok,
        s.shed,
        s.failed,
        s.retries,
        s.timeouts,
        s.worker_panics,
        s.compile_cache.hits,
        s.compile_cache.skips,
        s.compile_cache.misses,
        s.compile_cache.contended,
        s.job_cache_hits,
        s.compile_cache.reuse_rate(),
    )
}

fn config_json(r: &ConfigResult) -> String {
    format!(
        "    {{\"name\": \"{}\", \"workers\": {}, \"clients\": {}, \"jobs\": {}, \
         \"wall_ms\": {:.3}, \"jobs_per_sec\": {:.2}, \"p50_ms\": {:.3}, \
         \"p99_ms\": {:.3}, \"lost\": {}, \"outcomes\": {}}}",
        r.name,
        r.workers,
        r.clients,
        r.jobs,
        r.wall_ms,
        r.jobs_per_sec(),
        r.stats.p50_ms,
        r.stats.p99_ms,
        r.lost(),
        stats_json(&r.stats),
    )
}

fn main() {
    // Injected worker panics are caught by the service's envelope; keep
    // the default hook from spraying backtraces over the report.
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        if !msg.contains("injected ") {
            eprintln!("{msg}");
        }
    }));
    let args = BenchArgs::parse("BENCH_throughput.json", &["tranches"]);
    let out_path = args.out.clone();
    let check = args.check;
    let tranches: usize = args
        .opt("tranches")
        .map(|v| v.parse().expect("bad --tranches"))
        .unwrap_or(2);

    let mut configs = Vec::new();
    for &(workers, clients) in &[(1usize, 1usize), (1, 4), (2, 4), (4, 4), (4, 8)] {
        let name = format!("w{workers}-c{clients}");
        configs.push(run_closed_loop(&name, workers, clients, tranches));
    }
    configs.push(run_overload(tranches));
    let fault = run_fault_check();

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"configs\": [\n{}\n  ],\n  \
         \"fault_check\": {{\"jobs\": {}, \"lost\": {}, \"byte_identical\": {}, \
         \"timeouts\": {}, \"worker_panics\": {}, \"outcomes\": {}}}\n}}\n",
        configs
            .iter()
            .map(config_json)
            .collect::<Vec<_>>()
            .join(",\n"),
        fault.jobs,
        fault.lost(),
        fault.byte_identical(),
        fault.stats.timeouts,
        fault.stats.worker_panics,
        stats_json(&fault.stats),
    );
    write_report(&out_path, &json, &format!("{} configs", configs.len()));

    for r in &configs {
        println!(
            "{:>10}  {} workers x {} clients  {:>4} jobs  {:8.1} jobs/s  \
             p50 {:6.2}ms  p99 {:6.2}ms  ok {} deg {} shed {} fail {}  \
             cache {:.0}% reuse",
            r.name,
            r.workers,
            r.clients,
            r.jobs,
            r.jobs_per_sec(),
            r.stats.p50_ms,
            r.stats.p99_ms,
            r.stats.ok,
            r.stats.degraded_ok,
            r.stats.shed,
            r.stats.failed,
            r.stats.compile_cache.reuse_rate() * 100.0,
        );
    }
    println!(
        "fault-check  {} jobs  lost {}  byte-identical {}  timeouts {}  panics {}",
        fault.jobs,
        fault.lost(),
        fault.byte_identical(),
        fault.stats.timeouts,
        fault.stats.worker_panics,
    );

    if check {
        let worker_counts: std::collections::BTreeSet<usize> =
            configs.iter().map(|c| c.workers).collect();
        assert!(
            worker_counts.len() >= 2,
            "--check needs at least two distinct worker counts, got {worker_counts:?}"
        );
        for r in &configs {
            assert_eq!(
                r.lost(),
                0,
                "config {} lost jobs: {} submitted, {} terminal",
                r.name,
                r.stats.submitted,
                r.stats.terminal()
            );
            assert_eq!(r.stats.submitted as usize, r.jobs, "config {}", r.name);
        }
        assert_eq!(fault.lost(), 0, "fault check lost jobs: {:?}", fault.stats);
        assert!(
            fault.byte_identical(),
            "fault-injected outputs diverged from the clean run"
        );
        assert!(
            fault.stats.timeouts >= 1 && fault.stats.worker_panics >= 1,
            "injection did not exercise the envelope: {:?}",
            fault.stats
        );
        println!("check passed: no lost jobs, deterministic under injection");
    }
}
