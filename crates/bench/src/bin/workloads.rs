//! Workload cost sweep for the two tentpole optimizations (DESIGN §16):
//! collection-op fusion and adaptive representation selection, on vs
//! off, over the IR workload kernels.
//!
//! Each subject compiles through the O3 pipeline four ways — `baseline`
//! (fusion stripped from the spec), `fusion` (the default pipeline),
//! `adaptive` (fusion stripped, interp charged per the representation
//! analysis's choices), and `fusion+adaptive` — and executes under the
//! MEMOIR interpreter's deterministic cost model
//! (`memoir-interp/src/stats.rs`). The outputs must be identical in all
//! four configurations; only the abstract cycle count may move.
//!
//! Emits `BENCH_workloads.json`: per subject × configuration, the
//! returned values, the cost, and the reduction vs baseline.
//!
//! `--check` asserts the invariants CI smokes: identical outputs across
//! all configurations of every subject, `fusion+adaptive` cost ≤
//! baseline cost on *every* subject, and a ≥ 10% reduction on at least
//! one subject.

use bench::report::{json_escape, write_report, BenchArgs};
use memoir_interp::{ExecStats, Interp, Value};
use memoir_ir::{Module, Type};
use memoir_opt::pipeline::{compile_spec_with, default_spec};
use passman::PipelineSpec;

/// One workload kernel: module, entry function, and entry arguments.
struct Subject {
    name: &'static str,
    module: Module,
    entry: &'static str,
    args: Vec<Value>,
}

fn subjects() -> Vec<Subject> {
    let idx = |n: i64| Value::Int(Type::Index, n);
    vec![
        Subject {
            name: "mcf",
            module: workloads::mcf_ir::build_mcf_ir(),
            entry: "master",
            args: vec![idx(64), idx(8), idx(16), idx(3)],
        },
        Subject {
            name: "deepsjeng",
            module: workloads::deepsjeng_ir::build_deepsjeng_ir(),
            entry: "search",
            args: vec![idx(3000)],
        },
        Subject {
            name: "LLVM opt",
            module: workloads::optlike_ir::build_optlike_ir(),
            entry: "gvn",
            args: vec![idx(5000)],
        },
        Subject {
            name: "listing1",
            module: workloads::listing1::build_listing1(),
            entry: "work",
            args: vec![],
        },
        Subject {
            name: "smallbank",
            module: workloads::smallbank_ir::build_smallbank_ir(),
            entry: "bank",
            args: vec![idx(4000)],
        },
        Subject {
            name: "docstore",
            module: workloads::docstore::build_docstore_ir(),
            entry: "docstore",
            args: vec![idx(4000)],
        },
    ]
}

/// The default O3 spec with every standalone `fusion` pass removed —
/// the with-vs-without axis of the sweep.
fn spec_without_fusion() -> PipelineSpec {
    let full = default_spec(bench::o3_all()).to_string();
    let stripped: Vec<&str> = full.split(',').filter(|p| *p != "fusion").collect();
    PipelineSpec::parse(&stripped.join(",")).expect("stripped spec parses")
}

struct ConfigResult {
    config: &'static str,
    output: String,
    cost: f64,
}

/// Compiles a clone of the subject under `spec` and runs it under the
/// interp cost model, optionally charging adaptive-representation costs.
fn run_config(
    s: &Subject,
    config: &'static str,
    spec: &PipelineSpec,
    adaptive: bool,
) -> ConfigResult {
    let mut m = s.module.clone();
    compile_spec_with(&mut m, spec, |pm| pm).expect("pipeline runs clean");
    let mut interp = Interp::new(&m).with_fuel(2_000_000_000);
    if adaptive {
        interp = interp.with_repr_choices(memoir_analysis::choose_reprs(&m));
    }
    let out = interp
        .run_by_name(s.entry, s.args.clone())
        .expect("workload runs clean");
    let ExecStats { cost, .. } = interp.stats;
    ConfigResult {
        config,
        output: format!("{out:?}"),
        cost,
    }
}

fn sweep(s: &Subject) -> Vec<ConfigResult> {
    let without = spec_without_fusion();
    let with = default_spec(bench::o3_all());
    vec![
        run_config(s, "baseline", &without, false),
        run_config(s, "fusion", &with, false),
        run_config(s, "adaptive", &without, true),
        run_config(s, "fusion+adaptive", &with, true),
    ]
}

fn main() {
    let args = BenchArgs::parse("BENCH_workloads.json", &[]);

    let subjects = subjects();
    let results: Vec<(&'static str, Vec<ConfigResult>)> =
        subjects.iter().map(|s| (s.name, sweep(s))).collect();

    let subject_json: Vec<String> = results
        .iter()
        .map(|(name, configs)| {
            let base = configs[0].cost;
            let cfg_json: Vec<String> = configs
                .iter()
                .map(|c| {
                    format!(
                        "      {{\"config\": \"{}\", \"cost\": {:.1}, \"reduction\": {:.6}}}",
                        c.config,
                        c.cost,
                        if base > 0.0 { 1.0 - c.cost / base } else { 0.0 },
                    )
                })
                .collect();
            let identical = configs.iter().all(|c| c.output == configs[0].output);
            format!(
                "    {{\"name\": \"{}\", \"output\": \"{}\", \"outputs_identical\": {}, \"configs\": [\n{}\n    ]}}",
                json_escape(name),
                json_escape(&configs[0].output),
                identical,
                cfg_json.join(",\n"),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"workloads\",\n  \"configs\": [\"baseline\", \"fusion\", \"adaptive\", \"fusion+adaptive\"],\n  \"subjects\": [\n{}\n  ]\n}}\n",
        subject_json.join(",\n")
    );
    write_report(&args.out, &json, &format!("{} subjects", results.len()));

    for (name, configs) in &results {
        let base = configs[0].cost;
        for c in configs {
            println!(
                "{name:>12}  {:>16}  {:>14.0} cycles  {:+6.1}%",
                c.config,
                c.cost,
                if base > 0.0 {
                    (c.cost / base - 1.0) * 100.0
                } else {
                    0.0
                },
            );
        }
    }

    if args.check {
        let mut best = 0.0f64;
        for (name, configs) in &results {
            let base = &configs[0];
            for c in &configs[1..] {
                assert_eq!(
                    c.output, base.output,
                    "{name}: {} output diverged from baseline",
                    c.config
                );
                assert!(
                    c.cost <= base.cost,
                    "{name}: {} cost {} exceeds baseline {}",
                    c.config,
                    c.cost,
                    base.cost
                );
            }
            let all = configs.last().unwrap();
            best = best.max(1.0 - all.cost / base.cost);
        }
        assert!(
            best >= 0.10,
            "fusion+adaptive must cut >= 10% of cycles on at least one subject, best {:.1}%",
            best * 100.0
        );
        println!(
            "check OK: outputs identical, costs monotone, best fusion+adaptive reduction {:.1}%",
            best * 100.0
        );
    }
}
