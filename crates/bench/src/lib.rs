//! # bench
//!
//! The evaluation harness: one binary per table/figure of the paper
//! (DESIGN.md §4). Each binary regenerates its artefact's rows from the
//! workloads and prints a plain-text table; `report` runs everything.
//!
//! | paper artefact | binary |
//! |---|---|
//! | Fig. 1 (heap classification) | `fig1` |
//! | Table II (developer effort) | `table3` |
//! | Table III (compile time / collections) | `table2` |
//! | Fig. 6 (exec time, ported) | `fig6` |
//! | Fig. 7 (max RSS, ported) | `fig7` |
//! | Fig. 8 (mcf time breakdown) | `fig8` |
//! | Fig. 9 (mcf RSS breakdown) | `fig9` |
//! | Fig. 10 (GVN memory VNs) | `fig10` |
//! | Fig. 11 (Sink breakdown) | `fig11` |
//! | Fig. 12 (ConstantFold breakdown) | `fig12` |

#![warn(missing_docs)]

use memoir_opt::{OptConfig, OptLevel};
use workloads::mcf::{McfOutcome, McfParams, McfVariant};

pub mod report;

/// Renders a labelled percentage row.
pub fn pct(label: &str, value: f64) -> String {
    format!("{label:>24}  {:+7.1}%", value * 100.0)
}

/// Renders a header line.
pub fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// The mcf variant axis used by Figs. 8/9, in the paper's bar order.
pub fn mcf_variants() -> Vec<(&'static str, McfVariant)> {
    vec![
        ("LLVM9 (baseline)", McfVariant::default()),
        (
            "DEE",
            McfVariant {
                dee: true,
                ..Default::default()
            },
        ),
        (
            "FE",
            McfVariant {
                fe: true,
                ..Default::default()
            },
        ),
        (
            "FE+RIE",
            McfVariant {
                fe: true,
                rie: true,
                ..Default::default()
            },
        ),
        (
            "FE+DFE",
            McfVariant {
                fe: true,
                dfe: true,
                ..Default::default()
            },
        ),
        (
            "RIE",
            McfVariant {
                rie: true,
                ..Default::default()
            },
        ),
        (
            "DFE",
            McfVariant {
                dfe: true,
                ..Default::default()
            },
        ),
        ("ALL", McfVariant::all()),
    ]
}

/// Runs the full mcf variant sweep once.
pub fn mcf_sweep() -> Vec<(&'static str, McfOutcome)> {
    let p = McfParams::default();
    mcf_variants()
        .into_iter()
        .map(|(name, v)| (name, workloads::mcf::run_mcf(&p, v)))
        .collect()
}

/// Builds the three Table III compilation subjects.
pub fn compilation_subjects() -> Vec<(&'static str, memoir_ir::Module)> {
    vec![
        ("mcf", workloads::mcf_ir::build_mcf_ir()),
        ("deepsjeng", workloads::deepsjeng_ir::build_deepsjeng_ir()),
        ("LLVM opt", workloads::optlike_ir::build_optlike_ir()),
    ]
}

/// Compiles a clone of the module at a level, returning the report.
pub fn compile_at(m: &memoir_ir::Module, level: OptLevel) -> memoir_opt::PipelineReport {
    let mut m = m.clone();
    memoir_opt::compile(&mut m, level).expect("pipeline")
}

/// The O3 level with every optimization.
pub fn o3_all() -> OptLevel {
    OptLevel::O3(OptConfig::all())
}

/// Lowers the compilation subjects (plus Listing 1) to the low-level IR
/// for the pass-analysis figures.
pub fn lowered_subjects() -> Vec<(&'static str, lir::Module)> {
    let mut out = Vec::new();
    for (name, m) in compilation_subjects() {
        out.push((name, memoir_lower::lower_module(&m).expect("lowerable")));
    }
    out.push((
        "listing1",
        memoir_lower::lower_module(&workloads::listing1::build_listing1()).expect("lowerable"),
    ));
    // A whole-program-sized synthetic subject: the paper's pass analysis
    // ran on full SPEC bitcode, which the kernels above cannot match in
    // op-mix volume (DESIGN.md §2).
    out.push((
        "synthetic",
        memoir_lower::lower_module(&workloads::synth_ir::build_synth_ir(120, 2024))
            .expect("lowerable"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_paper_bars() {
        let v = mcf_variants();
        assert_eq!(v.len(), 8);
        assert_eq!(v[0].0, "LLVM9 (baseline)");
        assert_eq!(v[7].0, "ALL");
    }

    #[test]
    fn subjects_build_and_lower() {
        let lowered = lowered_subjects();
        assert_eq!(lowered.len(), 5);
        for (name, m) in &lowered {
            assert!(m.inst_count() > 0, "{name} is empty");
        }
    }
}
