//! Shared plumbing for the `BENCH_*.json`-emitting report binaries:
//! the common CLI shape (`--out FILE`, `--check`, plus binary-specific
//! `--name VALUE` options), JSON string escaping, and the standard
//! write-and-announce step. Every report binary parses its arguments
//! through [`BenchArgs`] so the flag syntax (space- or `=`-separated
//! values, unknown-flag diagnostics) stays identical across them.

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The common report-binary CLI: `--check`, `--out FILE` (or
/// `--out=FILE`), plus any extra `--name VALUE` options the binary
/// declares up front.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Output path for the primary JSON report.
    pub out: String,
    /// Whether `--check` (the CI smoke assertions) was requested.
    pub check: bool,
    opts: BTreeMap<String, String>,
}

impl BenchArgs {
    /// Parses `std::env::args()`, accepting `--check`, `--out`, and the
    /// `extra` option names (without the `--` prefix). Panics on unknown
    /// flags, matching the report binaries' historical behaviour.
    pub fn parse(default_out: &str, extra: &[&str]) -> BenchArgs {
        Self::parse_from(std::env::args().skip(1), default_out, extra)
    }

    /// [`BenchArgs::parse`] over an explicit argument iterator (testable).
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        default_out: &str,
        extra: &[&str],
    ) -> BenchArgs {
        let mut out = BenchArgs {
            out: default_out.to_string(),
            check: false,
            opts: BTreeMap::new(),
        };
        let mut it = args.into_iter().peekable();
        'args: while let Some(arg) = it.next() {
            if arg == "--check" {
                out.check = true;
                continue;
            }
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let value = |it: &mut std::iter::Peekable<_>| {
                inline
                    .clone()
                    .or_else(|| it.next())
                    .unwrap_or_else(|| panic!("`{flag}` needs a value"))
            };
            if flag == "--out" {
                out.out = value(&mut it);
                continue;
            }
            for name in extra {
                if flag == format!("--{name}") {
                    let v = value(&mut it);
                    out.opts.insert(name.to_string(), v);
                    continue 'args;
                }
            }
            panic!("unknown argument `{arg}`");
        }
        out
    }

    /// The value of a binary-specific option, if given.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(String::as_str)
    }
}

/// Writes the report and prints the standard `wrote <path> (<what>)`
/// line every report binary emits.
pub fn write_report(path: &str, json: &str, what: &str) {
    std::fs::write(path, json).expect("write report");
    println!("wrote {path} ({what})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], extra: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(
            args.iter().map(|s| s.to_string()),
            "BENCH_default.json",
            extra,
        )
    }

    #[test]
    fn defaults_and_check() {
        let a = parse(&[], &[]);
        assert_eq!(a.out, "BENCH_default.json");
        assert!(!a.check);
        let a = parse(&["--check"], &[]);
        assert!(a.check);
    }

    #[test]
    fn out_both_syntaxes() {
        assert_eq!(parse(&["--out", "x.json"], &[]).out, "x.json");
        assert_eq!(parse(&["--out=y.json"], &[]).out, "y.json");
    }

    #[test]
    fn extra_options() {
        let a = parse(
            &["--tranches=3", "--inc-out", "z.json"],
            &["tranches", "inc-out"],
        );
        assert_eq!(a.opt("tranches"), Some("3"));
        assert_eq!(a.opt("inc-out"), Some("z.json"));
        assert_eq!(a.opt("missing"), None);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        parse(&["--bogus"], &[]);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
