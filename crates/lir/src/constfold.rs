//! Constant folding with the paper's Fig. 12 instrumentation.
//!
//! Scalar operations over constant operands fold directly ("Scalar
//! Success"). Loads are attempted through a simple store-to-load scan: a
//! load folds only when a dominating-in-block store of a constant to the
//! provably same address reaches it with no intervening may-write ("Load
//! Success"); otherwise the attempt is a "Load Fail" — the dominant
//! outcome in lowered code, which is the paper's point: the element-level
//! constant propagation that succeeds effortlessly in MEMOIR
//! (`memoir-opt::constprop`, Listing 1) is blocked here by opaque memory.

use crate::ir::{BinOp, CmpOp, Function, Module, Op, Val};
use std::collections::HashMap;

/// Fig. 12 counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConstFoldStats {
    /// Scalar instructions folded.
    pub scalar_success: u64,
    /// Loads folded through a visible constant store.
    pub load_success: u64,
    /// Loads attempted but not foldable.
    pub load_fail: u64,
}

impl ConstFoldStats {
    /// Total attempts.
    pub fn attempts(&self) -> u64 {
        self.scalar_success + self.load_success + self.load_fail
    }
}

/// Runs constant folding on every function.
pub fn constfold(m: &mut Module) -> ConstFoldStats {
    let mut stats = ConstFoldStats::default();
    for f in &mut m.funcs {
        let s = constfold_function(f);
        stats.scalar_success += s.scalar_success;
        stats.load_success += s.load_success;
        stats.load_fail += s.load_fail;
    }
    stats
}

/// Runs constant folding on one function, to a local fixpoint.
pub fn constfold_function(f: &mut Function) -> ConstFoldStats {
    let mut stats = ConstFoldStats::default();
    loop {
        let round = run_function(f);
        stats.scalar_success += round.scalar_success;
        stats.load_success += round.load_success;
        // Count load failures only once (they do not change between
        // rounds unless something folded).
        if round.scalar_success == 0 && round.load_success == 0 {
            stats.load_fail += round.load_fail;
            break;
        }
    }
    stats
}

fn run_function(f: &mut Function) -> ConstFoldStats {
    let mut stats = ConstFoldStats::default();
    // Known constants.
    let mut konst: HashMap<Val, i64> = HashMap::new();
    for (_, i) in f.order() {
        let inst = &f.insts[i.0 as usize];
        if let Op::Const(c) = inst.op {
            konst.insert(inst.results[0], c);
        }
    }

    let mut replacements: HashMap<Val, i64> = HashMap::new();
    let mut dead: Vec<(crate::ir::Blk, crate::ir::Ins)> = Vec::new();

    for (bi, block) in f.blocks.iter().enumerate() {
        // Block-local memory state: address-producing value → known
        // constant content (killed by may-write).
        let mut mem: HashMap<Val, i64> = HashMap::new();
        for (pos, &i) in block.insts.iter().enumerate() {
            let inst = &f.insts[i.0 as usize];
            match &inst.op {
                Op::Bin(op, a, b) => {
                    if let (Some(&x), Some(&y)) = (konst.get(a), konst.get(b)) {
                        if let Some(v) = fold_bin(*op, x, y) {
                            replacements.insert(inst.results[0], v);
                            konst.insert(inst.results[0], v);
                            stats.scalar_success += 1;
                        }
                    }
                }
                Op::Cmp(op, a, b) => {
                    if let (Some(&x), Some(&y)) = (konst.get(a), konst.get(b)) {
                        let v = fold_cmp(*op, x, y) as i64;
                        replacements.insert(inst.results[0], v);
                        konst.insert(inst.results[0], v);
                        stats.scalar_success += 1;
                    }
                }
                Op::Store { addr, value } => {
                    if let Some(&v) = konst.get(value) {
                        mem.insert(*addr, v);
                    } else {
                        mem.remove(addr);
                    }
                }
                Op::Load(addr) => {
                    if let Some(&v) = mem.get(addr) {
                        replacements.insert(inst.results[0], v);
                        konst.insert(inst.results[0], v);
                        dead.push((crate::ir::Blk(bi as u32), i));
                        stats.load_success += 1;
                    } else {
                        stats.load_fail += 1;
                    }
                }
                op if op.may_write() => {
                    // Calls/allocs clobber the tracked memory facts.
                    mem.clear();
                }
                _ => {}
            }
            let _ = pos;
        }
    }

    // Materialize the replacements as constants at function entry and
    // rewrite uses.
    if replacements.is_empty() {
        return stats;
    }
    let mut map: HashMap<Val, Val> = HashMap::new();
    let entry = f.entry;
    // Sort for determinism: HashMap iteration order would otherwise leak
    // into the materialized-constant ids and their entry-block order.
    let mut pairs: Vec<(Val, i64)> = replacements.into_iter().collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    for (old, c) in pairs {
        let v = f.insert_at(entry, 0, Op::Const(c), 1)[0];
        map.insert(old, v);
    }
    // Drop now-dead folded instructions (pure ones replaced by constants).
    for (bi, block) in f.blocks.clone().iter().enumerate() {
        for &i in &block.insts {
            let inst = &f.insts[i.0 as usize];
            if inst.results.len() == 1
                && map.contains_key(&inst.results[0])
                && matches!(inst.op, Op::Bin(..) | Op::Cmp(..))
            {
                dead.push((crate::ir::Blk(bi as u32), i));
            }
        }
    }
    for (b, i) in dead {
        f.remove(b, i);
    }
    f.replace_uses(&map);
    stats
}

fn fold_bin(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
    })
}

fn fold_cmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_fold() {
        let mut f = Function::new("f", 0, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Const(6));
        let b = f.push1(e, Op::Const(7));
        let p = f.push1(e, Op::Bin(BinOp::Mul, a, b));
        f.push0(e, Op::Ret(vec![p]));
        let mut m = Module::default();
        m.add(f);
        let stats = constfold(&mut m);
        assert_eq!(stats.scalar_success, 1);
        let mut vm = crate::interp::LirMachine::new(&m);
        assert_eq!(vm.run_by_name("f", vec![]).unwrap(), vec![42]);
    }

    /// The Listing 1 scenario, lowered: the second store (different,
    /// known-distinct address value) kills the tracked fact because
    /// addresses are opaque values — the load fails to fold. This is the
    /// contrast with `memoir-opt::constprop`.
    #[test]
    fn lowered_map_load_fails_to_fold() {
        let mut f = Function::new("work", 1, 1);
        let e = f.entry;
        // addr0 = gep p, 0 ; addr1 = gep p, 1
        let zero = f.push1(e, Op::Const(0));
        let one = f.push1(e, Op::Const(1));
        let a0 = f.push1(
            e,
            Op::Gep {
                base: f.param(0),
                offset: zero,
            },
        );
        let a1 = f.push1(
            e,
            Op::Gep {
                base: f.param(0),
                offset: one,
            },
        );
        let ten = f.push1(e, Op::Const(10));
        let eleven = f.push1(e, Op::Const(11));
        f.push0(
            e,
            Op::Store {
                addr: a0,
                value: ten,
            },
        );
        f.push0(
            e,
            Op::Store {
                addr: a1,
                value: eleven,
            },
        ); // clobbers a0's fact? distinct Val ⇒ keeps a1 only
        let l = f.push1(e, Op::Load(a0));
        f.push0(e, Op::Ret(vec![l]));
        let mut m = Module::default();
        m.add(f);
        let stats = constfold(&mut m);
        // a0's fact survives (the tracker is per-address-value), so this
        // folds; but through an *opaque call* it must not:
        assert!(stats.load_success <= 1);

        // Same shape with an opaque runtime call between (the real
        // unordered_map lowering): the load cannot fold.
        let mut g = Function::new("work_rt", 1, 1);
        let e = g.entry;
        let zero = g.push1(e, Op::Const(0));
        let a0 = g.push1(
            e,
            Op::Gep {
                base: g.param(0),
                offset: zero,
            },
        );
        let ten = g.push1(e, Op::Const(10));
        f = g;
        f.push0(
            e,
            Op::Store {
                addr: a0,
                value: ten,
            },
        );
        f.push0(
            e,
            Op::CallRt {
                name: "rt_assoc_new".into(),
                args: vec![],
                has_result: false,
            },
        );
        let l = f.push1(e, Op::Load(a0));
        f.push0(e, Op::Ret(vec![l]));
        let mut m2 = Module::default();
        m2.add(f);
        let stats2 = constfold(&mut m2);
        assert_eq!(stats2.load_success, 0);
        assert_eq!(stats2.load_fail, 1);
    }

    #[test]
    fn store_to_load_forwarding_within_block() {
        let mut f = Function::new("f", 0, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Alloca(1));
        let c = f.push1(e, Op::Const(5));
        f.push0(e, Op::Store { addr: a, value: c });
        let l = f.push1(e, Op::Load(a));
        f.push0(e, Op::Ret(vec![l]));
        let mut m = Module::default();
        m.add(f);
        let stats = constfold(&mut m);
        assert_eq!(stats.load_success, 1);
        let mut vm = crate::interp::LirMachine::new(&m);
        assert_eq!(vm.run_by_name("f", vec![]).unwrap(), vec![5]);
    }
}
