//! Dead code elimination for the low-level IR: drops side-effect-free
//! instructions with no used results.

use crate::ir::{Module, Val};
use std::collections::HashSet;

/// Removes dead instructions; returns how many were removed.
pub fn dce(m: &mut Module) -> usize {
    m.funcs.iter_mut().map(dce_function).sum()
}

/// Removes dead instructions from one function, transitively; returns
/// how many were removed.
pub fn dce_function(f: &mut crate::ir::Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: HashSet<Val> = HashSet::new();
        for (_, i) in f.order() {
            f.insts[i.0 as usize].op.visit(|v| {
                used.insert(*v);
            });
        }
        let mut dead = Vec::new();
        for (b, i) in f.order() {
            let inst = &f.insts[i.0 as usize];
            if inst.op.is_terminator() || inst.op.may_write() {
                continue;
            }
            // Loads are removable when unused (no observable effect).
            if !inst.results.is_empty() && inst.results.iter().all(|r| !used.contains(r)) {
                dead.push((b, i));
            }
        }
        if dead.is_empty() {
            break;
        }
        removed += dead.len();
        for (b, i) in dead {
            f.remove(b, i);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Function, Op};

    #[test]
    fn removes_transitively_dead() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(0)));
        let _b = f.push1(e, Op::Bin(BinOp::Mul, a, a));
        let keep = f.push1(e, Op::Const(1));
        f.push0(e, Op::Ret(vec![keep]));
        let mut m = Module::default();
        m.add(f);
        assert_eq!(dce(&mut m), 2);
        assert_eq!(m.funcs[0].live_inst_count(), 2);
    }

    #[test]
    fn stores_and_calls_survive() {
        let mut f = Function::new("f", 1, 0);
        let e = f.entry;
        let c = f.push1(e, Op::Const(1));
        f.push0(
            e,
            Op::Store {
                addr: f.param(0),
                value: c,
            },
        );
        f.push0(
            e,
            Op::CallRt {
                name: "rt_assoc_new".into(),
                args: vec![],
                has_result: false,
            },
        );
        f.push0(e, Op::Ret(vec![]));
        let mut m = Module::default();
        m.add(f);
        assert_eq!(dce(&mut m), 0);
    }
}
