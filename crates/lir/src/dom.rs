//! Dominator analysis for lir functions.
//!
//! Block *layout* order in lir is not required to follow dominance —
//! `memoir-lower` preserves the MEMOIR module's block indices, and the
//! MEMOIR passes (`dee-strict` splitting, `ssa-destruct` copy blocks)
//! append blocks that sit late in the layout but early in the CFG. Any
//! pass that reasons about "before/after" must therefore consult real
//! dominance, not layout positions; this module provides it.
//!
//! The immediate-dominator tree is computed with the Cooper–Harvey–
//! Kennedy iterative algorithm over a reverse post-order, which is
//! simple and near-linear on the small CFGs lowering produces.

use crate::ir::{Blk, Fun, Function, Module};

/// The dominator tree of one function's CFG.
///
/// Blocks unreachable from the entry have no dominator information;
/// [`DomTree::dominates`] is `false` whenever either endpoint is
/// unreachable.
///
/// `Clone` is cheap (two flat `Vec`s over the block count) so sharded
/// passes can carry a copy of the cached tree onto worker threads — see
/// [`DomTreeAnalysis`].
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; the entry points at itself,
    /// unreachable blocks are `None`.
    idom: Vec<Option<Blk>>,
    /// Reverse post-order number per block (`None` = unreachable).
    rpo_num: Vec<Option<u32>>,
}

impl DomTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> DomTree {
        let n = f.blocks.len();
        // Out-of-range targets are a (reportable) malformation, not a
        // reason to panic — the verifier runs this on broken modules.
        let succs = |b: Blk| -> Vec<Blk> {
            f.successors(b)
                .into_iter()
                .filter(|s| (s.0 as usize) < n)
                .collect()
        };
        // Post-order DFS from the entry (iterative, successor cursor per
        // frame), then reverse.
        let mut post: Vec<Blk> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(Blk, Vec<Blk>, usize)> = Vec::new();
        visited[f.entry.0 as usize] = true;
        stack.push((f.entry, succs(f.entry), 0));
        while let Some((b, frame_succs, cursor)) = stack.last_mut() {
            if let Some(&s) = frame_succs.get(*cursor) {
                *cursor += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, succs(s), 0));
                }
            } else {
                post.push(*b);
                stack.pop();
            }
        }
        let rpo: Vec<Blk> = post.into_iter().rev().collect();
        let mut rpo_num = vec![None; n];
        for (k, &b) in rpo.iter().enumerate() {
            rpo_num[b.0 as usize] = Some(k as u32);
        }

        // Predecessors, restricted to reachable blocks.
        let mut preds: Vec<Vec<Blk>> = vec![Vec::new(); n];
        for &b in &rpo {
            for s in succs(b) {
                if rpo_num[s.0 as usize].is_some() {
                    preds[s.0 as usize].push(b);
                }
            }
        }

        let mut idom: Vec<Option<Blk>> = vec![None; n];
        idom[f.entry.0 as usize] = Some(f.entry);
        let intersect = |idom: &[Option<Blk>], mut a: Blk, mut b: Blk| -> Blk {
            let num = |x: Blk| rpo_num[x.0 as usize].unwrap();
            while a != b {
                while num(a) > num(b) {
                    a = idom[a.0 as usize].unwrap();
                }
                while num(b) > num(a) {
                    b = idom[b.0 as usize].unwrap();
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new: Option<Blk> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new = Some(match new {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new.is_some() && idom[b.0 as usize] != new {
                    idom[b.0 as usize] = new;
                    changed = true;
                }
            }
        }

        DomTree { idom, rpo_num }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: Blk) -> bool {
        self.rpo_num.get(b.0 as usize).is_some_and(|n| n.is_some())
    }

    /// Whether `a` dominates `b` (reflexively). `false` when either
    /// block is unreachable.
    pub fn dominates(&self, a: Blk, b: Blk) -> bool {
        let (Some(na), Some(_)) = (
            self.rpo_num.get(a.0 as usize).copied().flatten(),
            self.rpo_num.get(b.0 as usize).copied().flatten(),
        ) else {
            return false;
        };
        // Walk b's idom chain; RPO numbers strictly decrease along it,
        // so stop once we pass a's.
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let num = self.rpo_num[cur.0 as usize].unwrap();
            if num <= na {
                return false;
            }
            cur = self.idom[cur.0 as usize].unwrap();
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: Blk, b: Blk) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: Blk) -> Option<Blk> {
        let d = self.idom.get(b.0 as usize).copied().flatten()?;
        (d != b).then_some(d)
    }
}

/// Registers [`DomTree`] as a cached per-function analysis with the
/// pass manager, the way the MEMOIR passes cache affinity and purity:
/// consumers call `am.get::<DomTreeAnalysis>(module, fun)` and the tree
/// is computed at most once per function between mutations of that
/// function.
///
/// The two lir consumers are `gvn` (dominance-gated leader replacement)
/// and the inter-pass verifier (dominance of uses by definitions) —
/// `sink` is deliberately *not* one: it reasons over layout order within
/// a single block and has no dominance query to migrate.
#[derive(Debug)]
pub struct DomTreeAnalysis;

impl passman::Analysis<Module> for DomTreeAnalysis {
    type Output = DomTree;
    const NAME: &'static str = "dom-tree";
    fn compute(m: &Module, f: Fun) -> DomTree {
        DomTree::compute(&m.funcs[f.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpOp, Op};

    /// entry → {then, else} → join: the join's idom is the entry, the
    /// arms dominate only themselves.
    #[test]
    fn diamond_idoms() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        let c = f.push1(e, Op::Cmp(CmpOp::Gt, f.param(0), f.param(0)));
        f.push0(
            e,
            Op::Br {
                cond: c,
                then_b: t,
                else_b: el,
            },
        );
        f.push0(t, Op::Jmp(j));
        f.push0(el, Op::Jmp(j));
        f.push0(j, Op::Ret(vec![f.param(0)]));
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(j), Some(e));
        assert_eq!(dom.idom(t), Some(e));
        assert!(dom.dominates(e, j));
        assert!(dom.dominates(j, j));
        assert!(!dom.dominates(t, j));
        assert!(!dom.strictly_dominates(j, j));
    }

    /// Layout order and dominance order disagree: the entry jumps to the
    /// *last* block, which dominates the middle one. This is the shape
    /// `ssa-destruct`-appended blocks give the lowered module.
    #[test]
    fn backward_layout_dominance() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let mid = f.add_block(); // b1, laid out before…
        let late = f.add_block(); // …b2, its dominator
        f.push0(e, Op::Jmp(late));
        f.push0(late, Op::Jmp(mid));
        f.push0(mid, Op::Ret(vec![f.param(0)]));
        let dom = DomTree::compute(&f);
        assert!(dom.strictly_dominates(late, mid));
        assert!(!dom.dominates(mid, late));
        assert_eq!(dom.idom(mid), Some(late));
    }

    /// Unreachable blocks have no dominance relations.
    #[test]
    fn unreachable_blocks_dominate_nothing() {
        let mut f = Function::new("f", 0, 0);
        let e = f.entry;
        let dead = f.add_block();
        f.push0(e, Op::Ret(Vec::new()));
        f.push0(dead, Op::Ret(Vec::new()));
        let dom = DomTree::compute(&f);
        assert!(!dom.is_reachable(dead));
        assert!(dom.is_reachable(e));
        assert!(!dom.dominates(dead, e));
        assert!(!dom.dominates(e, dead));
        assert!(!dom.dominates(dead, dead));
    }
}
