//! Content fingerprints for lir functions (see `passman::fingerprint`
//! for the contract).
//!
//! The hash walks each function in canonical form: blocks in reverse
//! postorder from the entry (unreachable blocks appended in id order),
//! values renumbered by definition order (parameters first, then
//! instruction results in walk order) — so compaction, print/parse round
//! trips, or any other value-id renumbering leaves the fingerprint
//! unchanged, while every op, immediate, φ-incoming, or runtime-call
//! name edit changes it. The function *name* is included: cached pass
//! outputs are whole function bodies carrying their symbol name, so two
//! functions may share a fingerprint only when they are byte-compatible,
//! not merely structurally isomorphic.
//!
//! Callee *bodies* are not hashed locally (their slot ids are, since
//! cached pass outputs embed them); instead the callgraph is condensed
//! into SCCs (leaves-first) and each function's final fingerprint folds
//! in the fingerprints of its callees in call-site order — intra-SCC
//! (recursive) calls as a marker plus a commutative SCC summary, so the
//! result is independent of member enumeration order. Editing any
//! (transitively) called function therefore changes the fingerprints of
//! all its dependents.

use crate::ir::{Blk, Fun, Function, Module, Op, Val};
use passman::fingerprint::{sccs, Fingerprint, StableHasher};
use std::collections::HashMap;

/// Per-op tags (stable, never reordered: they are part of the hash).
const T_CONST: u64 = 1;
const T_BIN: u64 = 2;
const T_CMP: u64 = 3;
const T_PHI: u64 = 4;
const T_ALLOCA: u64 = 5;
const T_MALLOC: u64 = 6;
const T_FREE: u64 = 7;
const T_LOAD: u64 = 8;
const T_STORE: u64 = 9;
const T_GEP: u64 = 10;
const T_CALL: u64 = 11;
const T_CALLRT: u64 = 12;
const T_JMP: u64 = 13;
const T_BR: u64 = 14;
const T_RET: u64 = 15;
const BLOCK_MARK: u64 = 0x424c_4f43_4b00_0000; // "BLOCK"
const RECURSIVE_CALLEE: u64 = 0x5245_4355_5253_4500; // "RECURSE"

/// Canonical block order: reverse postorder from the entry, then any
/// unreachable blocks in id order.
fn block_order(f: &Function) -> Vec<Blk> {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut post: Vec<Blk> = Vec::with_capacity(n);
    // Iterative DFS with explicit (block, next-successor) frames.
    if (f.entry.0 as usize) < n {
        let mut stack: Vec<(Blk, Vec<Blk>, usize)> = vec![(f.entry, f.successors(f.entry), 0)];
        seen[f.entry.0 as usize] = true;
        while let Some(frame) = stack.last_mut() {
            if frame.1.len() > frame.2 {
                let s = frame.1[frame.2];
                frame.2 += 1;
                if (s.0 as usize) < n && !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    stack.push((s, f.successors(s), 0));
                }
            } else {
                post.push(frame.0);
                stack.pop();
            }
        }
    }
    post.reverse();
    for (b, &hit) in seen.iter().enumerate() {
        if !hit {
            post.push(Blk(b as u32));
        }
    }
    post
}

/// Hashes one function's structure (ops, immediates, control flow) with
/// canonical value/block numbering, and collects its callee list in
/// call-site order.
fn local_structure(f: &Function) -> (u64, Vec<usize>) {
    let order = block_order(f);
    let mut bnum: HashMap<Blk, u64> = HashMap::new();
    for (i, &b) in order.iter().enumerate() {
        bnum.insert(b, i as u64);
    }
    // Canonical value numbers: params first, then results in walk order.
    let mut canon: HashMap<Val, u64> = HashMap::new();
    for p in 0..f.num_params {
        canon.insert(Val(p), p as u64);
    }
    let mut next = f.num_params as u64;
    for &b in &order {
        for &i in &f.blocks[b.0 as usize].insts {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                continue;
            };
            for &r in &inst.results {
                canon.entry(r).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
            }
        }
    }
    let cv = |h: &mut StableHasher, v: Val| match canon.get(&v) {
        Some(&c) => {
            h.write_u64(2);
            h.write_u64(c);
        }
        None => {
            // Use of an undefined value (broken IR mid-fuzz): hash the
            // raw id so the walk stays total and deterministic.
            h.write_u64(1);
            h.write_u64(v.0 as u64);
        }
    };
    let cb = |h: &mut StableHasher, b: Blk| match bnum.get(&b) {
        Some(&c) => {
            h.write_u64(2);
            h.write_u64(c);
        }
        None => {
            h.write_u64(1);
            h.write_u64(b.0 as u64);
        }
    };

    let mut h = StableHasher::new();
    let mut callees: Vec<usize> = Vec::new();
    h.write_str(&f.name);
    h.write_u32(f.num_params);
    h.write_u32(f.num_rets);
    h.write_usize(order.len());
    for &b in &order {
        h.write_u64(BLOCK_MARK);
        h.write_u64(bnum[&b]);
        for &i in &f.blocks[b.0 as usize].insts {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                h.write_u64(u64::MAX); // dangling inst id
                continue;
            };
            h.write_usize(inst.results.len());
            match &inst.op {
                Op::Const(k) => {
                    h.write_u64(T_CONST);
                    h.write_i64(*k);
                }
                Op::Bin(op, a, b2) => {
                    h.write_u64(T_BIN);
                    h.write_u8(*op as u8);
                    cv(&mut h, *a);
                    cv(&mut h, *b2);
                }
                Op::Cmp(op, a, b2) => {
                    h.write_u64(T_CMP);
                    h.write_u8(*op as u8);
                    cv(&mut h, *a);
                    cv(&mut h, *b2);
                }
                Op::Phi(incomings) => {
                    h.write_u64(T_PHI);
                    // Incoming order is id-dependent: sort by canonical
                    // predecessor number.
                    let mut inc: Vec<(u64, Blk, Val)> = incomings
                        .iter()
                        .map(|&(p, v)| (bnum.get(&p).copied().unwrap_or(u64::MAX), p, v))
                        .collect();
                    inc.sort_by_key(|&(c, _, _)| c);
                    h.write_usize(inc.len());
                    for (_, p, v) in inc {
                        cb(&mut h, p);
                        cv(&mut h, v);
                    }
                }
                Op::Alloca(n) => {
                    h.write_u64(T_ALLOCA);
                    h.write_u32(*n);
                }
                Op::Malloc(v) => {
                    h.write_u64(T_MALLOC);
                    cv(&mut h, *v);
                }
                Op::Free(v) => {
                    h.write_u64(T_FREE);
                    cv(&mut h, *v);
                }
                Op::Load(v) => {
                    h.write_u64(T_LOAD);
                    cv(&mut h, *v);
                }
                Op::Store { addr, value } => {
                    h.write_u64(T_STORE);
                    cv(&mut h, *addr);
                    cv(&mut h, *value);
                }
                Op::Gep { base, offset } => {
                    h.write_u64(T_GEP);
                    cv(&mut h, *base);
                    cv(&mut h, *offset);
                }
                Op::Call { func, args } => {
                    // The callee's *content* is hashed by fingerprint
                    // propagation (call-site order); its *slot id* is
                    // hashed here, because cached pass outputs embed
                    // concrete `Fun` indices — reusing one across modules
                    // whose function tables are laid out differently
                    // would retarget the call.
                    h.write_u64(T_CALL);
                    h.write_u32(func.0);
                    h.write_usize(args.len());
                    for &a in args {
                        cv(&mut h, a);
                    }
                    callees.push(func.0 as usize);
                }
                Op::CallRt {
                    name,
                    args,
                    has_result,
                } => {
                    h.write_u64(T_CALLRT);
                    h.write_str(name);
                    h.write_bool(*has_result);
                    h.write_usize(args.len());
                    for &a in args {
                        cv(&mut h, a);
                    }
                }
                Op::Jmp(b2) => {
                    h.write_u64(T_JMP);
                    cb(&mut h, *b2);
                }
                Op::Br {
                    cond,
                    then_b,
                    else_b,
                } => {
                    h.write_u64(T_BR);
                    cv(&mut h, *cond);
                    cb(&mut h, *then_b);
                    cb(&mut h, *else_b);
                }
                Op::Ret(vals) => {
                    h.write_u64(T_RET);
                    h.write_usize(vals.len());
                    for &v in vals {
                        cv(&mut h, v);
                    }
                }
            }
        }
    }
    (h.finish(), callees)
}

/// Fingerprints every function of a module, with callee propagation
/// across the condensed callgraph (see the module docs).
pub fn module_fingerprints(m: &Module) -> Vec<(Fun, Fingerprint)> {
    let n = m.funcs.len();
    let mut locals: Vec<u64> = Vec::with_capacity(n);
    let mut callees: Vec<Vec<usize>> = Vec::with_capacity(n);
    for f in &m.funcs {
        let (h, cs) = local_structure(f);
        locals.push(h);
        callees.push(cs);
    }
    let comps = sccs(n, &|v| callees[v].clone());
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci;
        }
    }
    let mut out = vec![Fingerprint(0); n];
    for (ci, comp) in comps.iter().enumerate() {
        // Member hash: local structure + callee fingerprints in
        // call-site order (leaves-first, so cross-SCC callees are final;
        // intra-SCC callees become a marker, resolved by the summary).
        let members: Vec<Fingerprint> = comp
            .iter()
            .map(|&v| {
                let mut h = StableHasher::new();
                h.write_u64(locals[v]);
                for &c in &callees[v] {
                    if c < n && comp_of[c] == ci {
                        h.write_u64(RECURSIVE_CALLEE);
                    } else if c < n {
                        h.write_u64(out[c].0);
                    } else {
                        h.write_u64(u64::MAX); // dangling callee
                    }
                }
                h.fingerprint()
            })
            .collect();
        let summary = Fingerprint::combine_commutative(members.iter().copied());
        for (&v, member) in comp.iter().zip(members) {
            out[v] = member.combine(summary);
        }
    }
    (0..n).map(|i| (Fun(i as u32), out[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Op};

    fn leaf(k: i64) -> Function {
        let mut f = Function::new("leaf", 1, 1);
        let c = f.push1(f.entry, Op::Const(k));
        let s = f.push1(f.entry, Op::Bin(BinOp::Add, f.param(0), c));
        f.push0(f.entry, Op::Ret(vec![s]));
        f
    }

    #[test]
    fn deterministic_across_computations() {
        let mut m = Module::default();
        m.add(leaf(7));
        let a = module_fingerprints(&m);
        let b = module_fingerprints(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn insensitive_to_value_id_renumbering() {
        let f1 = leaf(7);
        // Same structure, but an orphaned instruction consumed value ids
        // first — every live id is shifted.
        let mut f2 = Function::new("leaf", 1, 1);
        let orphan = f2.push1(f2.entry, Op::Const(999));
        let _ = orphan;
        f2.blocks[f2.entry.0 as usize].insts.remove(0);
        let c = f2.push1(f2.entry, Op::Const(7));
        let s = f2.push1(f2.entry, Op::Bin(BinOp::Add, f2.param(0), c));
        f2.push0(f2.entry, Op::Ret(vec![s]));

        let mut m1 = Module::default();
        m1.add(f1);
        let mut m2 = Module::default();
        m2.add(f2);
        assert_eq!(
            module_fingerprints(&m1)[0].1,
            module_fingerprints(&m2)[0].1,
            "value-id renumbering must not change the fingerprint"
        );
    }

    #[test]
    fn sensitive_to_op_edits() {
        let mut m1 = Module::default();
        m1.add(leaf(7));
        let mut m2 = Module::default();
        m2.add(leaf(8));
        assert_ne!(module_fingerprints(&m1)[0].1, module_fingerprints(&m2)[0].1);
    }

    #[test]
    fn callee_edit_changes_caller_fingerprint() {
        let caller = |m: &mut Module, callee: Fun| {
            let mut f = Function::new("caller", 1, 1);
            let r = f.push1(
                f.entry,
                Op::Call {
                    func: callee,
                    args: vec![f.param(0)],
                },
            );
            f.push0(f.entry, Op::Ret(vec![r]));
            m.add(f)
        };
        let mut m1 = Module::default();
        let g1 = m1.add(leaf(7));
        let c1 = caller(&mut m1, g1);
        let mut m2 = Module::default();
        let g2 = m2.add(leaf(8));
        let c2 = caller(&mut m2, g2);
        let fp1 = module_fingerprints(&m1);
        let fp2 = module_fingerprints(&m2);
        let of = |fps: &[(Fun, Fingerprint)], f: Fun| fps.iter().find(|(k, _)| *k == f).unwrap().1;
        assert_ne!(
            of(&fp1, c1),
            of(&fp2, c2),
            "editing the callee must change the caller's fingerprint"
        );
    }

    #[test]
    fn mutual_recursion_terminates_and_distinguishes() {
        let mut m = Module::default();
        // f0 calls f1, f1 calls f0; bodies differ by a constant.
        let mut f0 = Function::new("f0", 1, 1);
        let c0 = f0.push1(f0.entry, Op::Const(1));
        let r0 = f0.push1(
            f0.entry,
            Op::Call {
                func: Fun(1),
                args: vec![c0],
            },
        );
        f0.push0(f0.entry, Op::Ret(vec![r0]));
        let mut f1 = Function::new("f1", 1, 1);
        let c1 = f1.push1(f1.entry, Op::Const(2));
        let r1 = f1.push1(
            f1.entry,
            Op::Call {
                func: Fun(0),
                args: vec![c1],
            },
        );
        f1.push0(f1.entry, Op::Ret(vec![r1]));
        m.add(f0);
        m.add(f1);
        let fps = module_fingerprints(&m);
        assert_ne!(fps[0].1, fps[1].1);
    }
}
