//! Global value numbering with the paper's Fig. 10 instrumentation.
//!
//! Pure expressions hash into congruence classes (and redundant ones are
//! replaced). Memory operations — loads, stores, allocations, opaque
//! calls — cannot join an existing class because the IR gives no
//! guarantees about the memory they touch, so each introduces a **fresh**
//! value number. Fig. 10 reports the fraction of value numbers introduced
//! for memory operations (49.8–52.8% on SPEC under LLVM's NewGVN); the
//! same counter is exposed here.

use crate::dom::DomTree;
use crate::ir::{Blk, Function, Module, Op, Val};
use std::collections::HashMap;

/// Fig. 10 counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GvnStats {
    /// Value numbers created in total.
    pub total_value_numbers: u64,
    /// Value numbers created for memory operations (opaque).
    pub memory_value_numbers: u64,
    /// Redundant pure instructions replaced.
    pub replaced: u64,
}

impl GvnStats {
    /// Fraction of value numbers that are memory-related.
    pub fn memory_fraction(&self) -> f64 {
        if self.total_value_numbers == 0 {
            0.0
        } else {
            self.memory_value_numbers as f64 / self.total_value_numbers as f64
        }
    }
}

/// Runs GVN on every function.
pub fn gvn(m: &mut Module) -> GvnStats {
    let mut stats = GvnStats::default();
    for f in &mut m.funcs {
        run_function(f, &mut stats);
    }
    stats
}

/// Runs GVN on one function, computing the dominator tree fresh.
pub fn gvn_function(f: &mut crate::ir::Function) -> GvnStats {
    let dom = DomTree::compute(f);
    gvn_function_with(f, &dom)
}

/// Runs GVN on one function against a caller-provided dominator tree —
/// the entry point for the pass-manager path, where the tree comes out
/// of the analysis cache ([`DomTreeAnalysis`](crate::dom::DomTreeAnalysis))
/// instead of being recomputed per invocation. `dom` must describe `f`'s
/// current CFG; GVN itself only deletes redundant straight-line
/// instructions and never edits edges, so the tree stays valid
/// throughout the run.
pub fn gvn_function_with(f: &mut crate::ir::Function, dom: &DomTree) -> GvnStats {
    let mut stats = GvnStats::default();
    run_function_with(f, dom, &mut stats);
    stats
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Expr {
    Bin(crate::ir::BinOp, u64, u64),
    Cmp(crate::ir::CmpOp, u64, u64),
    Gep(u64, u64),
    Const(i64),
}

/// Per expression class: the value number and every *leader* — a
/// defining occurrence with its (block, position-in-block).
type Classes = HashMap<Expr, (u64, Vec<(Val, Blk, usize)>)>;

fn run_function(f: &mut Function, stats: &mut GvnStats) {
    let dom = DomTree::compute(f);
    run_function_with(f, &dom, stats);
}

fn run_function_with(f: &mut Function, dom: &DomTree, stats: &mut GvnStats) {
    // Value → value number; per expression class, the value number and
    // every *leader*: a defining occurrence with its position, so a
    // redundant instruction is only replaced by a leader whose
    // definition dominates it (block layout is not dominance-sorted in
    // lowered modules, so "first in layout" is not "available here" —
    // found by `memoir-fuzz --lower`, crash-7-172).
    let mut vn_of: HashMap<Val, u64> = HashMap::new();
    let mut next_vn: u64 = 0;
    let mut classes: Classes = HashMap::new();
    let mut replacements: HashMap<Val, Val> = HashMap::new();
    let mut dead: Vec<(Blk, crate::ir::Ins)> = Vec::new();

    let fresh = |vn_of: &mut HashMap<Val, u64>,
                 next_vn: &mut u64,
                 v: Val,
                 memory: bool,
                 stats: &mut GvnStats| {
        let vn = *next_vn;
        *next_vn += 1;
        vn_of.insert(v, vn);
        stats.total_value_numbers += 1;
        if memory {
            stats.memory_value_numbers += 1;
        }
        vn
    };

    // Parameters get fresh scalar numbers.
    for p in 0..f.num_params {
        fresh(&mut vn_of, &mut next_vn, Val(p), false, stats);
    }

    let order: Vec<(Blk, usize, crate::ir::Ins)> = f
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(bi, blk)| {
            blk.insts
                .iter()
                .enumerate()
                .map(move |(k, &i)| (Blk(bi as u32), k, i))
        })
        .collect();
    for (b, k, i) in order {
        let inst = f.insts[i.0 as usize].clone();
        let vn_arg = |vn_of: &HashMap<Val, u64>, v: Val| vn_of.get(&v).copied();
        let expr: Option<Expr> = match &inst.op {
            Op::Const(c) => Some(Expr::Const(*c)),
            Op::Bin(op, a, bb) => match (vn_arg(&vn_of, *a), vn_arg(&vn_of, *bb)) {
                (Some(x), Some(y)) => Some(Expr::Bin(*op, x, y)),
                _ => None,
            },
            Op::Cmp(op, a, bb) => match (vn_arg(&vn_of, *a), vn_arg(&vn_of, *bb)) {
                (Some(x), Some(y)) => Some(Expr::Cmp(*op, x, y)),
                _ => None,
            },
            Op::Gep { base, offset } => match (vn_arg(&vn_of, *base), vn_arg(&vn_of, *offset)) {
                (Some(x), Some(y)) => Some(Expr::Gep(x, y)),
                _ => None,
            },
            _ => None,
        };

        match expr {
            Some(e) => {
                // Pure expression: join or found a class.
                if let Some((vn, leaders)) = classes.get_mut(&e) {
                    // Replace only when some leader's definition
                    // dominates this instruction — earlier in the same
                    // block, or in a strictly dominating block.
                    let avail = leaders
                        .iter()
                        .find(|&&(_, db, dk)| (db == b && dk < k) || dom.strictly_dominates(db, b));
                    vn_of.insert(inst.results[0], *vn);
                    if let Some(&(leader, _, _)) = avail {
                        replacements.insert(inst.results[0], leader);
                        dead.push((b, i));
                        stats.replaced += 1;
                    } else {
                        // Congruent (same value number) but not
                        // available here; keep it as another leader for
                        // the region it dominates.
                        leaders.push((inst.results[0], b, k));
                    }
                } else {
                    let memory = matches!(e, Expr::Gep(..));
                    let vn = fresh(&mut vn_of, &mut next_vn, inst.results[0], memory, stats);
                    classes.insert(e, (vn, vec![(inst.results[0], b, k)]));
                }
            }
            None => {
                // Memory/opaque operation or φ: every result is a fresh
                // number; memory ops count toward Fig. 10. Result-less
                // memory operations (stores, frees) still define the
                // memory state — NewGVN's MemoryDefs — and count once.
                let memory = inst.op.is_memory_op();
                for &r in &inst.results {
                    fresh(&mut vn_of, &mut next_vn, r, memory, stats);
                }
                if memory && inst.results.is_empty() {
                    next_vn += 1;
                    stats.total_value_numbers += 1;
                    stats.memory_value_numbers += 1;
                }
            }
        }
    }

    for (b, i) in dead {
        f.remove(b, i);
    }
    f.replace_uses(&replacements);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Op};

    #[test]
    fn redundant_adds_collapse() {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(1)));
        let b = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(1)));
        let s = f.push1(e, Op::Bin(BinOp::Mul, a, b));
        f.push0(e, Op::Ret(vec![s]));
        let mut m = Module::default();
        m.add(f);
        let stats = gvn(&mut m);
        assert_eq!(stats.replaced, 1);
        // The mul now squares the single add.
        let f = &m.funcs[0];
        assert_eq!(f.live_inst_count(), 3);
    }

    #[test]
    fn loads_never_join_classes() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let l1 = f.push1(e, Op::Load(f.param(0)));
        let l2 = f.push1(e, Op::Load(f.param(0))); // same address, still fresh
        let s = f.push1(e, Op::Bin(BinOp::Add, l1, l2));
        f.push0(e, Op::Ret(vec![s]));
        let mut m = Module::default();
        m.add(f);
        let stats = gvn(&mut m);
        assert_eq!(stats.replaced, 0, "loads are opaque");
        assert!(stats.memory_value_numbers >= 2);
    }

    /// Congruent expressions where the *layout-first* occurrence sits in
    /// a block that does **not** dominate the second one — the shape
    /// `dee-strict` + `ssa-destruct` give the lowered module (found by
    /// `memoir-fuzz --lower`, crash-7-172: GVN replaced the dominating
    /// occurrence with the dominated one, leaving a use-before-def that
    /// trapped as `unbound value`). The cross-block pair must be left
    /// alone; a same-block redundancy after a surviving occurrence must
    /// still collapse.
    #[test]
    fn layout_first_occurrence_in_dominated_block_is_not_a_leader() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let late_use = f.add_block(); // b1, laid out before…
        let dom_b = f.add_block(); // …b2, its dominator
        f.push0(e, Op::Jmp(dom_b));
        // b1 (runs last): its own copy of p0+p0, plus a second copy that
        // IS locally redundant.
        let y = f.push1(late_use, Op::Bin(BinOp::Add, f.param(0), f.param(0)));
        let y2 = f.push1(late_use, Op::Bin(BinOp::Add, f.param(0), f.param(0)));
        let s = f.push1(late_use, Op::Bin(BinOp::Mul, y, y2));
        f.push0(late_use, Op::Ret(vec![s]));
        // b2 (runs first): the congruent add, used before b1 executes.
        let x = f.push1(dom_b, Op::Bin(BinOp::Add, f.param(0), f.param(0)));
        let two = f.push1(dom_b, Op::Const(2));
        let _z = f.push1(dom_b, Op::Bin(BinOp::Mul, x, two));
        f.push0(dom_b, Op::Jmp(late_use));
        let mut m = Module::default();
        m.add(f);

        let stats = gvn(&mut m);
        // Only the same-block duplicate collapses; replacing across the
        // non-dominating pair would break def-before-use.
        assert_eq!(stats.replaced, 1, "{stats:?}");
        crate::verifier::assert_valid(&m);
        let got = crate::interp::LirMachine::new(&m)
            .run_by_name("f", vec![3])
            .unwrap();
        assert_eq!(got, vec![36]); // (3+3) * (3+3)
    }

    #[test]
    fn memory_fraction_reflects_op_mix() {
        // A memory-heavy function: fraction should exceed 0.4 (the Fig. 10
        // regime).
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let mut last = f.param(0);
        for k in 0..10 {
            let c = f.push1(e, Op::Const(k));
            let a = f.push1(
                e,
                Op::Gep {
                    base: f.param(0),
                    offset: c,
                },
            );
            let l = f.push1(e, Op::Load(a));
            f.push0(e, Op::Store { addr: a, value: l });
            last = l;
        }
        f.push0(e, Op::Ret(vec![last]));
        let mut m = Module::default();
        m.add(f);
        let stats = gvn(&mut m);
        assert!(stats.memory_fraction() > 0.4, "{}", stats.memory_fraction());
    }
}
