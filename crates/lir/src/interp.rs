//! An interpreter for the low-level IR.
//!
//! Memory is a flat, word-addressed array grown by a bump allocator
//! (`free` is a no-op — lifetimes are measured at the MEMOIR level).
//! Opaque runtime routines (`rt_*`) are implemented by the host: sequence
//! helpers manipulate the same linear memory (their data is visible to
//! `load`/`store`), while associative arrays live in host tables —
//! mirroring a real libc++ `unordered_map` being opaque to the compiler
//! *and* to this paper's analyses.

use crate::ir::{BinOp, Blk, CmpOp, Fun, Function, Module, Op, Val};
use std::collections::HashMap;
use std::fmt;

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LirTrap {
    /// Division by zero.
    DivByZero,
    /// Address out of the allocated range.
    BadAddress(i64),
    /// Missing associative key.
    MissingKey,
    /// Fuel exhausted.
    OutOfFuel,
    /// Unknown runtime routine.
    UnknownRt(String),
    /// Malformed block (no terminator / φ misuse).
    Malformed(&'static str),
}

impl fmt::Display for LirTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LirTrap::DivByZero => write!(f, "division by zero"),
            LirTrap::BadAddress(a) => write!(f, "bad address {a}"),
            LirTrap::MissingKey => write!(f, "missing key"),
            LirTrap::OutOfFuel => write!(f, "out of fuel"),
            LirTrap::UnknownRt(n) => write!(f, "unknown runtime routine `{n}`"),
            LirTrap::Malformed(m) => write!(f, "malformed function: {m}"),
        }
    }
}

impl std::error::Error for LirTrap {}

/// Execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LirStats {
    /// Instructions executed.
    pub insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Runtime calls executed.
    pub rt_calls: u64,
}

/// The machine.
#[derive(Debug)]
pub struct LirMachine<'m> {
    module: &'m Module,
    /// Linear memory (word-addressed).
    pub mem: Vec<i64>,
    assocs: Vec<(HashMap<i64, i64>, Vec<i64>)>,
    /// Counters.
    pub stats: LirStats,
    fuel: u64,
}

const NULL_GUARD: usize = 16; // low addresses invalid

/// Applies an `rt_assoc_rmw`/dense-rmw opcode (the integer encoding of
/// `memoir_ir::BinOp` emitted by `memoir-lower::rmw_opcode`):
/// `0`=add `1`=sub `2`=mul `3`=div `4`=rem `5`=and `6`=or `7`=xor
/// `8`=shl `9`=shr `10`=min `11`=max.
fn apply_rmw(op: i64, x: i64, y: i64) -> Result<i64, LirTrap> {
    Ok(match op {
        0 => x.wrapping_add(y),
        1 => x.wrapping_sub(y),
        2 => x.wrapping_mul(y),
        3 => {
            if y == 0 {
                return Err(LirTrap::DivByZero);
            }
            x.wrapping_div(y)
        }
        4 => {
            if y == 0 {
                return Err(LirTrap::DivByZero);
            }
            x.wrapping_rem(y)
        }
        5 => x & y,
        6 => x | y,
        7 => x ^ y,
        8 => x.wrapping_shl(y as u32),
        9 => x.wrapping_shr(y as u32),
        10 => x.min(y),
        11 => x.max(y),
        _ => return Err(LirTrap::Malformed("bad rmw opcode")),
    })
}

impl<'m> LirMachine<'m> {
    /// Creates a machine.
    pub fn new(module: &'m Module) -> Self {
        LirMachine {
            module,
            mem: vec![0; NULL_GUARD],
            assocs: Vec::new(),
            stats: LirStats::default(),
            fuel: 200_000_000,
        }
    }

    /// Overrides the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs a function by name.
    pub fn run_by_name(&mut self, name: &str, args: Vec<i64>) -> Result<Vec<i64>, LirTrap> {
        let f = self.module.by_name(name).expect("function exists");
        self.run(f, args)
    }

    fn alloc_words(&mut self, n: usize) -> i64 {
        let base = self.mem.len() as i64;
        self.mem.resize(self.mem.len() + n.max(1), 0);
        base
    }

    fn load(&mut self, addr: i64) -> Result<i64, LirTrap> {
        self.stats.loads += 1;
        if addr < NULL_GUARD as i64 || addr as usize >= self.mem.len() {
            return Err(LirTrap::BadAddress(addr));
        }
        Ok(self.mem[addr as usize])
    }

    fn store(&mut self, addr: i64, v: i64) -> Result<(), LirTrap> {
        self.stats.stores += 1;
        if addr < NULL_GUARD as i64 || addr as usize >= self.mem.len() {
            return Err(LirTrap::BadAddress(addr));
        }
        self.mem[addr as usize] = v;
        Ok(())
    }

    /// Runs a function.
    pub fn run(&mut self, fid: Fun, args: Vec<i64>) -> Result<Vec<i64>, LirTrap> {
        let f: &Function = &self.module.funcs[fid.0 as usize];
        let mut env: HashMap<Val, i64> = HashMap::new();
        for (i, a) in args.iter().enumerate() {
            env.insert(Val(i as u32), *a);
        }
        let mut block = f.entry;
        let mut prev: Option<Blk> = None;
        loop {
            let insts = f.blocks[block.0 as usize].insts.clone();
            // φs first (parallel).
            let mut cursor = 0;
            let mut phi_updates = Vec::new();
            while cursor < insts.len() {
                let inst = &f.insts[insts[cursor].0 as usize];
                if let Op::Phi(incs) = &inst.op {
                    let pred = prev.ok_or(LirTrap::Malformed("phi in entry"))?;
                    let (_, v) = incs
                        .iter()
                        .find(|(b, _)| *b == pred)
                        .ok_or(LirTrap::Malformed("phi missing incoming"))?;
                    let x = *env
                        .get(v)
                        .ok_or(LirTrap::Malformed("unbound phi operand"))?;
                    phi_updates.push((inst.results[0], x));
                    self.stats.insts += 1;
                    cursor += 1;
                } else {
                    break;
                }
            }
            for (r, v) in phi_updates {
                env.insert(r, v);
            }

            let mut next: Option<Blk> = None;
            for &iid in &insts[cursor..] {
                if self.stats.insts >= self.fuel {
                    return Err(LirTrap::OutOfFuel);
                }
                self.stats.insts += 1;
                let inst = f.insts[iid.0 as usize].clone();
                let get = |env: &HashMap<Val, i64>, v: Val| -> Result<i64, LirTrap> {
                    env.get(&v)
                        .copied()
                        .ok_or(LirTrap::Malformed("unbound value"))
                };
                match inst.op {
                    Op::Const(c) => {
                        env.insert(inst.results[0], c);
                    }
                    Op::Bin(op, a, b) => {
                        let (x, y) = (get(&env, a)?, get(&env, b)?);
                        let r = match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(LirTrap::DivByZero);
                                }
                                x.wrapping_div(y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    return Err(LirTrap::DivByZero);
                                }
                                x.wrapping_rem(y)
                            }
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Xor => x ^ y,
                            BinOp::Shl => x.wrapping_shl(y as u32),
                            BinOp::Shr => x.wrapping_shr(y as u32),
                        };
                        env.insert(inst.results[0], r);
                    }
                    Op::Cmp(op, a, b) => {
                        let (x, y) = (get(&env, a)?, get(&env, b)?);
                        let r = match op {
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                        };
                        env.insert(inst.results[0], r as i64);
                    }
                    Op::Phi(_) => return Err(LirTrap::Malformed("phi after non-phi")),
                    Op::Alloca(n) => {
                        let base = self.alloc_words(n as usize);
                        env.insert(inst.results[0], base);
                    }
                    Op::Malloc(n) => {
                        let words = get(&env, n)?.max(0) as usize;
                        let base = self.alloc_words(words);
                        env.insert(inst.results[0], base);
                    }
                    Op::Free(_) => {}
                    Op::Load(a) => {
                        let v = self.load(get(&env, a)?)?;
                        env.insert(inst.results[0], v);
                    }
                    Op::Store { addr, value } => {
                        let (a, v) = (get(&env, addr)?, get(&env, value)?);
                        self.store(a, v)?;
                    }
                    Op::Gep { base, offset } => {
                        let r = get(&env, base)?.wrapping_add(get(&env, offset)?);
                        env.insert(inst.results[0], r);
                    }
                    Op::Call { func, ref args } => {
                        let argv: Vec<i64> = args
                            .iter()
                            .map(|&a| get(&env, a))
                            .collect::<Result<_, _>>()?;
                        let rets = self.run(func, argv)?;
                        for (r, v) in inst.results.iter().zip(rets) {
                            env.insert(*r, v);
                        }
                    }
                    Op::CallRt {
                        ref name, ref args, ..
                    } => {
                        self.stats.rt_calls += 1;
                        let argv: Vec<i64> = args
                            .iter()
                            .map(|&a| get(&env, a))
                            .collect::<Result<_, _>>()?;
                        let out = self.call_rt(name, &argv)?;
                        if let (Some(&r), Some(v)) = (inst.results.first(), out) {
                            env.insert(r, v);
                        }
                    }
                    Op::Jmp(b) => {
                        next = Some(b);
                        break;
                    }
                    Op::Br {
                        cond,
                        then_b,
                        else_b,
                    } => {
                        next = Some(if get(&env, cond)? != 0 {
                            then_b
                        } else {
                            else_b
                        });
                        break;
                    }
                    Op::Ret(ref vs) => {
                        return vs.iter().map(|&v| get(&env, v)).collect();
                    }
                }
            }
            match next {
                Some(b) => {
                    prev = Some(block);
                    block = b;
                }
                None => return Err(LirTrap::Malformed("fell off block")),
            }
        }
    }

    /// Sequence header layout: `[data, len, cap]` at the handle address.
    fn seq_parts(&mut self, hdr: i64) -> Result<(i64, i64, i64), LirTrap> {
        Ok((self.load(hdr)?, self.load(hdr + 1)?, self.load(hdr + 2)?))
    }

    /// Dense-map operations at a non-negative assoc handle. Layout in
    /// linear memory: `[cap, size, present[cap], vals[cap]]` at `hdr`.
    /// The repr analysis proved every key in `0 .. cap`, so an
    /// out-of-bound read/write is a compiler bug and traps loudly
    /// (`has` stays total: absent, not a trap).
    fn call_dense(&mut self, name: &str, args: &[i64]) -> Result<Option<i64>, LirTrap> {
        let hdr = args[0];
        let cap = self.load(hdr)?;
        let in_bounds = |k: i64| (0..cap).contains(&k);
        match name {
            "rt_assoc_read" => {
                let k = args[1];
                if !in_bounds(k) || self.load(hdr + 2 + k)? == 0 {
                    return Err(LirTrap::MissingKey);
                }
                Ok(Some(self.load(hdr + 2 + cap + k)?))
            }
            "rt_assoc_write" => {
                let (k, v) = (args[1], args[2]);
                if !in_bounds(k) {
                    return Err(LirTrap::BadAddress(k));
                }
                if self.load(hdr + 2 + k)? == 0 {
                    self.store(hdr + 2 + k, 1)?;
                    let sz = self.load(hdr + 1)?;
                    self.store(hdr + 1, sz + 1)?;
                }
                self.store(hdr + 2 + cap + k, v)?;
                Ok(None)
            }
            "rt_assoc_rmw" => {
                let k = args[1];
                if !in_bounds(k) || self.load(hdr + 2 + k)? == 0 {
                    return Err(LirTrap::MissingKey);
                }
                let x = self.load(hdr + 2 + cap + k)?;
                let r = apply_rmw(args[2], x, args[3])?;
                self.store(hdr + 2 + cap + k, r)?;
                Ok(None)
            }
            "rt_assoc_has" => {
                let k = args[1];
                let present = in_bounds(k) && self.load(hdr + 2 + k)? != 0;
                Ok(Some(present as i64))
            }
            "rt_assoc_remove" => {
                let k = args[1];
                if in_bounds(k) && self.load(hdr + 2 + k)? != 0 {
                    self.store(hdr + 2 + k, 0)?;
                    let sz = self.load(hdr + 1)?;
                    self.store(hdr + 1, sz - 1)?;
                }
                Ok(None)
            }
            "rt_assoc_size" => Ok(Some(self.load(hdr + 1)?)),
            "rt_assoc_copy" => {
                let out = self.alloc_words((2 + 2 * cap) as usize);
                for i in 0..2 + 2 * cap {
                    let v = self.load(hdr + i)?;
                    self.store(out + i, v)?;
                }
                Ok(Some(out))
            }
            "rt_assoc_keys" => {
                // Present keys ascending — selection never fires when a
                // `keys` op is reachable, so this order is unobservable;
                // it matches `memoir_runtime::DenseMap::keys`.
                let mut keys = Vec::new();
                for k in 0..cap {
                    if self.load(hdr + 2 + k)? != 0 {
                        keys.push(k);
                    }
                }
                let out = self.call_rt("rt_seq_new", &[keys.len() as i64])?.unwrap();
                let (odata, _, _) = self.seq_parts(out)?;
                for (i, k) in keys.iter().enumerate() {
                    self.store(odata + i as i64, *k)?;
                }
                Ok(Some(out))
            }
            other => Err(LirTrap::UnknownRt(other.to_string())),
        }
    }

    fn call_rt(&mut self, name: &str, args: &[i64]) -> Result<Option<i64>, LirTrap> {
        match name {
            // Dense dispatch: a non-negative assoc handle is a dense
            // direct-indexed map living in linear memory (emitted by the
            // adaptive `rt_dense_new` lowering); a negative handle is a
            // host hashtable as before.
            n if n.starts_with("rt_assoc_") && args.first().is_some_and(|&h| h >= 0) => {
                self.call_dense(n, args)
            }
            "rt_dense_new" => {
                let cap = args[0].max(0);
                let hdr = self.alloc_words((2 + 2 * cap) as usize);
                self.store(hdr, cap)?;
                self.store(hdr + 1, 0)?;
                Ok(Some(hdr))
            }
            // ------------------------------------------------- sequences
            "rt_seq_new" => {
                let n = args[0].max(0);
                let data = self.alloc_words(n as usize);
                let hdr = self.alloc_words(3);
                self.store(hdr, data)?;
                self.store(hdr + 1, n)?;
                self.store(hdr + 2, n)?;
                Ok(Some(hdr))
            }
            "rt_seq_grow" => {
                // Ensure capacity ≥ args[1] for handle args[0].
                let hdr = args[0];
                let want = args[1];
                let (data, len, cap) = self.seq_parts(hdr)?;
                if want > cap {
                    let new_cap = (cap * 2).max(want).max(4);
                    let new_data = self.alloc_words(new_cap as usize);
                    for i in 0..len {
                        let v = self.load(data + i)?;
                        self.store(new_data + i, v)?;
                    }
                    self.store(hdr, new_data)?;
                    self.store(hdr + 2, new_cap)?;
                }
                Ok(None)
            }
            "rt_seq_insert" => {
                let (hdr, at, v) = (args[0], args[1], args[2]);
                let (_, len, _) = self.seq_parts(hdr)?;
                self.call_rt("rt_seq_grow", &[hdr, len + 1])?;
                let (data, len, _) = self.seq_parts(hdr)?;
                let mut i = len;
                while i > at {
                    let x = self.load(data + i - 1)?;
                    self.store(data + i, x)?;
                    i -= 1;
                }
                self.store(data + at, v)?;
                self.store(hdr + 1, len + 1)?;
                Ok(None)
            }
            "rt_seq_remove" => {
                let (hdr, at) = (args[0], args[1]);
                let (data, len, _) = self.seq_parts(hdr)?;
                for i in at..len - 1 {
                    let x = self.load(data + i + 1)?;
                    self.store(data + i, x)?;
                }
                self.store(hdr + 1, len - 1)?;
                Ok(None)
            }
            "rt_seq_remove_range" => {
                let (hdr, from, to) = (args[0], args[1], args[2]);
                let (data, len, _) = self.seq_parts(hdr)?;
                let w = to - from;
                for i in from..len - w {
                    let x = self.load(data + i + w)?;
                    self.store(data + i, x)?;
                }
                self.store(hdr + 1, len - w)?;
                Ok(None)
            }
            "rt_seq_splice" => {
                let (hdr, at, src) = (args[0], args[1], args[2]);
                let (_, slen, _) = self.seq_parts(src)?;
                let (_, len, _) = self.seq_parts(hdr)?;
                self.call_rt("rt_seq_grow", &[hdr, len + slen])?;
                let (data, len, _) = self.seq_parts(hdr)?;
                let (sdata, slen, _) = self.seq_parts(src)?;
                let mut i = len;
                while i > at {
                    let x = self.load(data + i - 1)?;
                    self.store(data + i - 1 + slen, x)?;
                    i -= 1;
                }
                for i in 0..slen {
                    let x = self.load(sdata + i)?;
                    self.store(data + at + i, x)?;
                }
                self.store(hdr + 1, len + slen)?;
                Ok(None)
            }
            "rt_seq_swap_range" => {
                let (hdr, from, to, at) = (args[0], args[1], args[2], args[3]);
                let (data, _, _) = self.seq_parts(hdr)?;
                for o in 0..(to - from) {
                    let a = self.load(data + from + o)?;
                    let b = self.load(data + at + o)?;
                    self.store(data + from + o, b)?;
                    self.store(data + at + o, a)?;
                }
                Ok(None)
            }
            "rt_seq_copy" => {
                let hdr = args[0];
                let (data, len, _) = self.seq_parts(hdr)?;
                let out = self.call_rt("rt_seq_new", &[len])?.unwrap();
                let (odata, _, _) = self.seq_parts(out)?;
                for i in 0..len {
                    let v = self.load(data + i)?;
                    self.store(odata + i, v)?;
                }
                Ok(Some(out))
            }
            "rt_seq_copy_range" => {
                let (hdr, from, to) = (args[0], args[1], args[2]);
                let (data, _, _) = self.seq_parts(hdr)?;
                let out = self.call_rt("rt_seq_new", &[to - from])?.unwrap();
                let (odata, _, _) = self.seq_parts(out)?;
                for i in 0..(to - from) {
                    let v = self.load(data + from + i)?;
                    self.store(odata + i, v)?;
                }
                Ok(Some(out))
            }
            "rt_seq_swap2" => {
                let (ha, from, to, hb, at) = (args[0], args[1], args[2], args[3], args[4]);
                let (da, _, _) = self.seq_parts(ha)?;
                let (db, _, _) = self.seq_parts(hb)?;
                for o in 0..(to - from) {
                    let x = self.load(da + from + o)?;
                    let y = self.load(db + at + o)?;
                    self.store(da + from + o, y)?;
                    self.store(db + at + o, x)?;
                }
                Ok(None)
            }
            // ------------------------------------------------ assoc (host)
            "rt_assoc_copy" => {
                let idx = (-args[0] - 1) as usize;
                let cloned = self.assocs[idx].clone();
                self.assocs.push(cloned);
                Ok(Some(-(self.assocs.len() as i64)))
            }
            "rt_assoc_new" => {
                self.assocs.push((HashMap::new(), Vec::new()));
                Ok(Some(-(self.assocs.len() as i64)))
            }
            "rt_assoc_write" => {
                let idx = (-args[0] - 1) as usize;
                let (map, order) = &mut self.assocs[idx];
                if !map.contains_key(&args[1]) {
                    order.push(args[1]);
                }
                map.insert(args[1], args[2]);
                Ok(None)
            }
            "rt_assoc_read" => {
                let idx = (-args[0] - 1) as usize;
                self.assocs[idx]
                    .0
                    .get(&args[1])
                    .copied()
                    .map(Some)
                    .ok_or(LirTrap::MissingKey)
            }
            "rt_assoc_has" => {
                let idx = (-args[0] - 1) as usize;
                Ok(Some(self.assocs[idx].0.contains_key(&args[1]) as i64))
            }
            "rt_assoc_remove" => {
                let idx = (-args[0] - 1) as usize;
                let (map, order) = &mut self.assocs[idx];
                if map.remove(&args[1]).is_some() {
                    order.retain(|&k| k != args[1]);
                }
                Ok(None)
            }
            "rt_assoc_rmw" => {
                // Fused read-modify-write (`mut.rmw` lowering): the
                // read-half traps on a missing key exactly like
                // `rt_assoc_read`, then the combined value is stored
                // without re-hashing.
                let idx = (-args[0] - 1) as usize;
                let x = *self.assocs[idx]
                    .0
                    .get(&args[1])
                    .ok_or(LirTrap::MissingKey)?;
                let r = apply_rmw(args[2], x, args[3])?;
                self.assocs[idx].0.insert(args[1], r);
                Ok(None)
            }
            "rt_assoc_size" => {
                let idx = (-args[0] - 1) as usize;
                Ok(Some(self.assocs[idx].0.len() as i64))
            }
            "rt_assoc_keys" => {
                // Returns a fresh sequence of the keys.
                let idx = (-args[0] - 1) as usize;
                let keys: Vec<i64> = {
                    let (map, order) = &self.assocs[idx];
                    order
                        .iter()
                        .copied()
                        .filter(|k| map.contains_key(k))
                        .collect()
                };
                let out = self.call_rt("rt_seq_new", &[keys.len() as i64])?.unwrap();
                let (odata, _, _) = self.seq_parts(out)?;
                for (i, k) in keys.iter().enumerate() {
                    self.store(odata + i as i64, *k)?;
                }
                Ok(Some(out))
            }
            // ------------------------------------------------------ misc
            "rt_obj_new" => {
                let words = args[0].max(1);
                Ok(Some(self.alloc_words(words as usize)))
            }
            "rt_obj_delete" => Ok(None),
            other => Err(LirTrap::UnknownRt(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_loop_runs() {
        // sum 0..n via a loop.
        let mut f = Function::new("sum", 1, 1);
        let entry = f.entry;
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let zero = f.push1(entry, Op::Const(0));
        f.push0(entry, Op::Jmp(header));
        let i = f.push1(header, Op::Phi(vec![]));
        let acc = f.push1(header, Op::Phi(vec![]));
        let done = f.push1(header, Op::Cmp(CmpOp::Ge, i, f.param(0)));
        f.push0(
            header,
            Op::Br {
                cond: done,
                then_b: exit,
                else_b: body,
            },
        );
        let one = f.push1(body, Op::Const(1));
        let acc2 = f.push1(body, Op::Bin(BinOp::Add, acc, i));
        let i2 = f.push1(body, Op::Bin(BinOp::Add, i, one));
        f.push0(body, Op::Jmp(header));
        f.push0(exit, Op::Ret(vec![acc]));
        // Patch φs (found by scan; `i` comes before `acc`).
        let mut patched = 0;
        for inst in &mut f.insts {
            if let Op::Phi(incs) = &mut inst.op {
                if patched == 0 {
                    incs.push((entry, zero));
                    incs.push((body, i2));
                } else {
                    incs.push((entry, zero));
                    incs.push((body, acc2));
                }
                patched += 1;
            }
        }
        assert_eq!(patched, 2);
        let mut m = Module::default();
        m.add(f);
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("sum", vec![10]).unwrap(), vec![45]);
    }

    #[test]
    fn memory_roundtrip_and_stats() {
        let mut f = Function::new("mem", 0, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Alloca(2));
        let c = f.push1(e, Op::Const(7));
        f.push0(e, Op::Store { addr: a, value: c });
        let one = f.push1(e, Op::Const(1));
        let a1 = f.push1(
            e,
            Op::Gep {
                base: a,
                offset: one,
            },
        );
        f.push0(
            e,
            Op::Store {
                addr: a1,
                value: one,
            },
        );
        let v = f.push1(e, Op::Load(a));
        f.push0(e, Op::Ret(vec![v]));
        let mut m = Module::default();
        m.add(f);
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("mem", vec![]).unwrap(), vec![7]);
        assert_eq!(vm.stats.stores, 2);
        assert_eq!(vm.stats.loads, 1);
    }

    #[test]
    fn rt_seq_helpers() {
        let mut f = Function::new("seqtest", 0, 2);
        let e = f.entry;
        let n = f.push1(e, Op::Const(3));
        let hdr = f.push1(
            e,
            Op::CallRt {
                name: "rt_seq_new".into(),
                args: vec![n],
                has_result: true,
            },
        );
        // write s[1] = 42 inline: data = load hdr; store data+1.
        let data = f.push1(e, Op::Load(hdr));
        let one = f.push1(e, Op::Const(1));
        let addr = f.push1(
            e,
            Op::Gep {
                base: data,
                offset: one,
            },
        );
        let v42 = f.push1(e, Op::Const(42));
        f.push0(e, Op::Store { addr, value: v42 });
        // insert 99 at 0 → shifts right.
        let zero = f.push1(e, Op::Const(0));
        let v99 = f.push1(e, Op::Const(99));
        f.push0(
            e,
            Op::CallRt {
                name: "rt_seq_insert".into(),
                args: vec![hdr, zero, v99],
                has_result: false,
            },
        );
        // len and s[2] (the shifted 42).
        let lenp = f.push1(
            e,
            Op::Gep {
                base: hdr,
                offset: one,
            },
        );
        let len = f.push1(e, Op::Load(lenp));
        let data2 = f.push1(e, Op::Load(hdr));
        let two = f.push1(e, Op::Const(2));
        let addr2 = f.push1(
            e,
            Op::Gep {
                base: data2,
                offset: two,
            },
        );
        let v = f.push1(e, Op::Load(addr2));
        f.push0(e, Op::Ret(vec![len, v]));
        let mut m = Module::default();
        m.add(f);
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("seqtest", vec![]).unwrap(), vec![4, 42]);
    }

    #[test]
    fn rt_assoc_helpers() {
        let mut f = Function::new("assoctest", 0, 3);
        let e = f.entry;
        let h = f.push1(
            e,
            Op::CallRt {
                name: "rt_assoc_new".into(),
                args: vec![],
                has_result: true,
            },
        );
        let k = f.push1(e, Op::Const(5));
        let v = f.push1(e, Op::Const(50));
        f.push0(
            e,
            Op::CallRt {
                name: "rt_assoc_write".into(),
                args: vec![h, k, v],
                has_result: false,
            },
        );
        let got = f.push1(
            e,
            Op::CallRt {
                name: "rt_assoc_read".into(),
                args: vec![h, k],
                has_result: true,
            },
        );
        let has = f.push1(
            e,
            Op::CallRt {
                name: "rt_assoc_has".into(),
                args: vec![h, k],
                has_result: true,
            },
        );
        let size = f.push1(
            e,
            Op::CallRt {
                name: "rt_assoc_size".into(),
                args: vec![h],
                has_result: true,
            },
        );
        f.push0(e, Op::Ret(vec![got, has, size]));
        let mut m = Module::default();
        m.add(f);
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("assoctest", vec![]).unwrap(), vec![50, 1, 1]);
    }

    /// Builds a one-block function that performs `calls` in order and
    /// returns the listed result values.
    fn rt_program(calls: Vec<(&str, Vec<RtArg>, bool)>, rets: Vec<usize>) -> Module {
        let nrets = rets.len();
        let mut f = Function::new("t", 0, nrets as u32);
        let e = f.entry;
        let mut results: Vec<Val> = Vec::new();
        for (name, args, has_result) in calls {
            let argv: Vec<Val> = args
                .into_iter()
                .map(|a| match a {
                    RtArg::C(c) => f.push1(e, Op::Const(c)),
                    RtArg::R(i) => results[i],
                })
                .collect();
            let out = f.push(
                e,
                Op::CallRt {
                    name: name.into(),
                    args: argv,
                    has_result,
                },
                has_result as usize,
            );
            results.push(out.first().copied().unwrap_or(Val(u32::MAX)));
        }
        let ret_vals: Vec<Val> = rets.into_iter().map(|i| results[i]).collect();
        f.push0(e, Op::Ret(ret_vals));
        let mut m = Module::default();
        m.add(f);
        m
    }

    enum RtArg {
        C(i64),
        R(usize),
    }
    use RtArg::{C, R};

    #[test]
    fn dense_map_roundtrip_through_assoc_dispatch() {
        // new(8); write(3,30); write(3,33); has(3); has(7); size; read(3)
        let m = rt_program(
            vec![
                ("rt_dense_new", vec![C(8)], true),
                ("rt_assoc_write", vec![R(0), C(3), C(30)], false),
                ("rt_assoc_write", vec![R(0), C(3), C(33)], false),
                ("rt_assoc_has", vec![R(0), C(3)], true),
                ("rt_assoc_has", vec![R(0), C(7)], true),
                ("rt_assoc_size", vec![R(0)], true),
                ("rt_assoc_read", vec![R(0), C(3)], true),
            ],
            vec![3, 4, 5, 6],
        );
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("t", vec![]).unwrap(), vec![1, 0, 1, 33]);
    }

    #[test]
    fn dense_rmw_and_remove() {
        let m = rt_program(
            vec![
                ("rt_dense_new", vec![C(4)], true),
                ("rt_assoc_write", vec![R(0), C(2), C(5)], false),
                ("rt_assoc_rmw", vec![R(0), C(2), C(0), C(7)], false), // += 7
                ("rt_assoc_read", vec![R(0), C(2)], true),
                ("rt_assoc_remove", vec![R(0), C(2)], false),
                ("rt_assoc_size", vec![R(0)], true),
            ],
            vec![3, 5],
        );
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("t", vec![]).unwrap(), vec![12, 0]);
    }

    #[test]
    fn dense_read_of_absent_key_traps_like_hashtable() {
        let m = rt_program(
            vec![
                ("rt_dense_new", vec![C(4)], true),
                ("rt_assoc_read", vec![R(0), C(1)], true),
            ],
            vec![1],
        );
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("t", vec![]), Err(LirTrap::MissingKey));
    }

    #[test]
    fn dense_copy_is_value_semantic() {
        let m = rt_program(
            vec![
                ("rt_dense_new", vec![C(4)], true),
                ("rt_assoc_write", vec![R(0), C(1), C(10)], false),
                ("rt_assoc_copy", vec![R(0)], true),
                ("rt_assoc_write", vec![R(0), C(1), C(99)], false),
                ("rt_assoc_read", vec![R(2), C(1)], true),
            ],
            vec![4],
        );
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("t", vec![]).unwrap(), vec![10]);
    }

    #[test]
    fn host_assoc_rmw_traps_on_missing_key() {
        let m = rt_program(
            vec![
                ("rt_assoc_new", vec![], true),
                ("rt_assoc_rmw", vec![R(0), C(1), C(0), C(7)], false),
            ],
            vec![],
        );
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("t", vec![]), Err(LirTrap::MissingKey));
    }

    #[test]
    fn host_assoc_rmw_combines_in_place() {
        let m = rt_program(
            vec![
                ("rt_assoc_new", vec![], true),
                ("rt_assoc_write", vec![R(0), C(5), C(40)], false),
                ("rt_assoc_rmw", vec![R(0), C(5), C(11), C(50)], false), // max
                ("rt_assoc_read", vec![R(0), C(5)], true),
            ],
            vec![3],
        );
        let mut vm = LirMachine::new(&m);
        assert_eq!(vm.run_by_name("t", vec![]).unwrap(), vec![50]);
    }
}
