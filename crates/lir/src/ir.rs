//! The low-level IR: a minimal LLVM-like SSA language.
//!
//! This is the substrate MEMOIR lowers into (the paper lowers to LLVM 9).
//! Memory is explicit — `alloca`, `malloc`, `load`, `store`, `gep` — and
//! collection operations arrive either inlined to loads/stores (sequences,
//! objects) or as **opaque runtime calls** (associative arrays), exactly
//! the premature-lowering shape whose pass-blocking behaviour §VII-D
//! measures.

use std::collections::HashMap;
use std::fmt;

/// Value id (SSA).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Val(pub u32);

/// Block id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Blk(pub u32);

/// Instruction id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ins(pub u32);

/// Function id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fun(pub u32);

impl fmt::Debug for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}
impl fmt::Debug for Blk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}
impl fmt::Debug for Ins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Binary ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Signed divide (traps on zero).
    Div,
    /// Remainder.
    Rem,
    /// And.
    And,
    /// Or.
    Or,
    /// Xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
}

/// Comparisons (produce 0/1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than (signed).
    Lt,
    /// Less-or-equal (signed).
    Le,
    /// Greater-than (signed).
    Gt,
    /// Greater-or-equal (signed).
    Ge,
}

/// An instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Integer constant.
    Const(i64),
    /// ALU operation.
    Bin(BinOp, Val, Val),
    /// Comparison.
    Cmp(CmpOp, Val, Val),
    /// φ node: `(pred, value)` incomings.
    Phi(Vec<(Blk, Val)>),
    /// Stack allocation of `n` words; yields the address.
    Alloca(u32),
    /// Heap allocation: size in words (dynamic); yields the address.
    Malloc(Val),
    /// Heap release.
    Free(Val),
    /// Load one word from an address.
    Load(Val),
    /// Store `value` to `address`.
    Store {
        /// Address operand.
        addr: Val,
        /// Stored value.
        value: Val,
    },
    /// Address arithmetic: `base + offset` (word-scaled).
    Gep {
        /// Base address.
        base: Val,
        /// Word offset.
        offset: Val,
    },
    /// Call a function in this module.
    Call {
        /// Callee.
        func: Fun,
        /// Arguments.
        args: Vec<Val>,
    },
    /// Call an opaque runtime routine by name (may read/write any memory).
    CallRt {
        /// Runtime symbol.
        name: String,
        /// Arguments.
        args: Vec<Val>,
        /// Whether the routine has a result.
        has_result: bool,
    },
    /// Unconditional jump.
    Jmp(Blk),
    /// Conditional branch (`cond != 0` → then).
    Br {
        /// Condition.
        cond: Val,
        /// Target when non-zero.
        then_b: Blk,
        /// Target when zero.
        else_b: Blk,
    },
    /// Return (multi-value).
    Ret(Vec<Val>),
}

impl Op {
    /// Whether this terminates a block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Jmp(_) | Op::Br { .. } | Op::Ret(_))
    }

    /// Whether this may write memory (or have arbitrary effects).
    pub fn may_write(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::Call { .. } | Op::CallRt { .. } | Op::Free(_) | Op::Malloc(_)
        )
    }

    /// Whether this may read memory.
    pub fn may_read(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Call { .. } | Op::CallRt { .. })
    }

    /// Whether this is a memory-class operation for the Fig. 10 census
    /// (loads, stores, address computation, allocation, opaque calls).
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            Op::Load(_)
                | Op::Store { .. }
                | Op::Gep { .. }
                | Op::Alloca(_)
                | Op::Malloc(_)
                | Op::Free(_)
                | Op::CallRt { .. }
                | Op::Call { .. }
        )
    }

    /// Operand values.
    pub fn operands(&self) -> Vec<Val> {
        let mut out = Vec::new();
        self.visit(|v| out.push(*v));
        out
    }

    /// Visits operands immutably.
    pub fn visit(&self, mut f: impl FnMut(&Val)) {
        match self {
            Op::Const(_) | Op::Alloca(_) | Op::Jmp(_) => {}
            Op::Bin(_, a, b) | Op::Cmp(_, a, b) => {
                f(a);
                f(b);
            }
            Op::Phi(incs) => {
                for (_, v) in incs {
                    f(v);
                }
            }
            Op::Malloc(v) | Op::Free(v) | Op::Load(v) => f(v),
            Op::Store { addr, value } => {
                f(addr);
                f(value);
            }
            Op::Gep { base, offset } => {
                f(base);
                f(offset);
            }
            Op::Call { args, .. } | Op::CallRt { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Op::Br { cond, .. } => f(cond),
            Op::Ret(vs) => {
                for v in vs {
                    f(v);
                }
            }
        }
    }

    /// Visits operands mutably.
    pub fn visit_mut(&mut self, mut f: impl FnMut(&mut Val)) {
        match self {
            Op::Const(_) | Op::Alloca(_) | Op::Jmp(_) => {}
            Op::Bin(_, a, b) | Op::Cmp(_, a, b) => {
                f(a);
                f(b);
            }
            Op::Phi(incs) => {
                for (_, v) in incs {
                    f(v);
                }
            }
            Op::Malloc(v) | Op::Free(v) | Op::Load(v) => f(v),
            Op::Store { addr, value } => {
                f(addr);
                f(value);
            }
            Op::Gep { base, offset } => {
                f(base);
                f(offset);
            }
            Op::Call { args, .. } | Op::CallRt { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Op::Br { cond, .. } => f(cond),
            Op::Ret(vs) => {
                for v in vs {
                    f(v);
                }
            }
        }
    }

    /// Successor blocks of a terminator.
    pub fn successors(&self) -> Vec<Blk> {
        match self {
            Op::Jmp(b) => vec![*b],
            Op::Br { then_b, else_b, .. } => {
                if then_b == else_b {
                    vec![*then_b]
                } else {
                    vec![*then_b, *else_b]
                }
            }
            _ => Vec::new(),
        }
    }
}

/// An instruction node.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// Operation.
    pub op: Op,
    /// Results (0, 1, or several for multi-return calls).
    pub results: Vec<Val>,
}

/// A basic block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Instructions in order.
    pub insts: Vec<Ins>,
}

/// A function.
#[derive(Clone, Debug)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Number of parameters (values `0..n`).
    pub num_params: u32,
    /// Number of return values.
    pub num_rets: u32,
    /// Entry block.
    pub entry: Blk,
    /// Blocks.
    pub blocks: Vec<Block>,
    /// Instructions.
    pub insts: Vec<Inst>,
    /// Next value id.
    pub next_val: u32,
}

impl Function {
    /// Creates an empty function with `num_params` parameters (bound to
    /// values `%0..%n`) and one empty entry block.
    pub fn new(name: impl Into<String>, num_params: u32, num_rets: u32) -> Self {
        Function {
            name: name.into(),
            num_params,
            num_rets,
            entry: Blk(0),
            blocks: vec![Block::default()],
            insts: Vec::new(),
            next_val: num_params,
        }
    }

    /// The `i`-th parameter value.
    pub fn param(&self, i: u32) -> Val {
        assert!(i < self.num_params);
        Val(i)
    }

    /// Adds a block.
    pub fn add_block(&mut self) -> Blk {
        self.blocks.push(Block::default());
        Blk(self.blocks.len() as u32 - 1)
    }

    /// Appends an instruction with `nres` results to a block.
    pub fn push(&mut self, b: Blk, op: Op, nres: usize) -> Vec<Val> {
        let results: Vec<Val> = (0..nres)
            .map(|_| {
                let v = Val(self.next_val);
                self.next_val += 1;
                v
            })
            .collect();
        let id = Ins(self.insts.len() as u32);
        self.insts.push(Inst {
            op,
            results: results.clone(),
        });
        self.blocks[b.0 as usize].insts.push(id);
        results
    }

    /// Appends a single-result instruction.
    pub fn push1(&mut self, b: Blk, op: Op) -> Val {
        self.push(b, op, 1)[0]
    }

    /// Appends a no-result instruction.
    pub fn push0(&mut self, b: Blk, op: Op) {
        self.push(b, op, 0);
    }

    /// Inserts an instruction at a position within a block.
    pub fn insert_at(&mut self, b: Blk, pos: usize, op: Op, nres: usize) -> Vec<Val> {
        let results: Vec<Val> = (0..nres)
            .map(|_| {
                let v = Val(self.next_val);
                self.next_val += 1;
                v
            })
            .collect();
        let id = Ins(self.insts.len() as u32);
        self.insts.push(Inst {
            op,
            results: results.clone(),
        });
        self.blocks[b.0 as usize].insts.insert(pos, id);
        results
    }

    /// All `(block, inst)` pairs in block order.
    pub fn order(&self) -> Vec<(Blk, Ins)> {
        let mut out = Vec::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            for &i in &b.insts {
                out.push((Blk(bi as u32), i));
            }
        }
        out
    }

    /// Successors of a block.
    pub fn successors(&self, b: Blk) -> Vec<Blk> {
        self.blocks[b.0 as usize]
            .insts
            .last()
            .map(|&i| self.insts[i.0 as usize].op.successors())
            .unwrap_or_default()
    }

    /// Replaces uses of values per the map.
    pub fn replace_uses(&mut self, map: &HashMap<Val, Val>) {
        if map.is_empty() {
            return;
        }
        for inst in &mut self.insts {
            inst.op.visit_mut(|v| {
                let mut cur = *v;
                while let Some(&n) = map.get(&cur) {
                    cur = n;
                }
                *v = cur;
            });
        }
    }

    /// Removes an instruction from its block (stays in the arena).
    pub fn remove(&mut self, b: Blk, i: Ins) {
        self.blocks[b.0 as usize].insts.retain(|&x| x != i);
    }

    /// Reachable instruction count.
    pub fn live_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A module.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Functions.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Adds a function.
    pub fn add(&mut self, f: Function) -> Fun {
        self.funcs.push(f);
        Fun(self.funcs.len() as u32 - 1)
    }

    /// Function lookup by name.
    pub fn by_name(&self, name: &str) -> Option<Fun> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| Fun(i as u32))
    }

    /// Total reachable instructions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.live_inst_count()).sum()
    }
}

/// lir modules can be driven by the generic `passman` pass-manager
/// framework; functions are keyed by [`Fun`].
impl passman::IrUnit for Module {
    type FuncKey = Fun;

    fn func_keys(&self) -> Vec<Fun> {
        (0..self.funcs.len() as u32).map(Fun).collect()
    }

    fn size_hint(&self) -> usize {
        self.inst_count()
    }

    fn supports_fingerprints(&self) -> bool {
        true
    }

    fn fingerprints(&self) -> Vec<(Fun, passman::Fingerprint)> {
        crate::fingerprint::module_fingerprints(self)
    }
}

/// Functions detach from the (empty) module shell, enabling
/// function-sharded passes and per-function copy-on-write snapshots.
impl passman::ShardedIr for Module {
    type Func = Function;

    fn detach_funcs(&mut self) -> Vec<(Fun, Function)> {
        std::mem::take(&mut self.funcs)
            .into_iter()
            .enumerate()
            .map(|(i, f)| (Fun(i as u32), f))
            .collect()
    }

    fn attach_funcs(&mut self, funcs: Vec<(Fun, Function)>) {
        debug_assert!(self.funcs.is_empty(), "attach over detached shell only");
        for (i, (id, f)) in funcs.into_iter().enumerate() {
            debug_assert_eq!(id, Fun(i as u32), "functions must re-attach in id order");
            self.funcs.push(f);
        }
    }

    fn clone_func(&self, key: Fun) -> Function {
        self.funcs[key.0 as usize].clone()
    }

    fn restore_func(&mut self, key: Fun, func: Function) {
        self.funcs[key.0 as usize] = func;
    }

    fn func_size_hint(&self, key: Fun) -> usize {
        self.funcs[key.0 as usize].live_inst_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_walk() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let c = f.push1(e, Op::Const(2));
        let x = f.param(0);
        let y = f.push1(e, Op::Bin(BinOp::Mul, x, c));
        f.push0(e, Op::Ret(vec![y]));
        assert_eq!(f.live_inst_count(), 3);
        assert_eq!(f.order().len(), 3);
        let last = f.order()[2].1;
        assert!(f.insts[last.0 as usize].op.is_terminator());
    }

    #[test]
    fn memory_classification() {
        assert!(Op::Load(Val(0)).is_memory_op());
        assert!(Op::Store {
            addr: Val(0),
            value: Val(1)
        }
        .may_write());
        assert!(!Op::Bin(BinOp::Add, Val(0), Val(1)).is_memory_op());
        assert!(Op::CallRt {
            name: "x".into(),
            args: vec![],
            has_result: false
        }
        .may_read());
    }

    #[test]
    fn replace_uses_chases_chains() {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let s = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(1)));
        f.push0(e, Op::Ret(vec![s]));
        let mut map = HashMap::new();
        map.insert(f.param(0), f.param(1));
        f.replace_uses(&map);
        let add = &f.insts[0].op;
        assert_eq!(add.operands(), vec![f.param(1), f.param(1)]);
    }
}
