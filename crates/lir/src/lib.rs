//! # lir
//!
//! A low-level SSA IR — the LLVM analogue of the MEMOIR paper's
//! substrate — with explicit memory (`alloca`/`malloc`/`load`/`store`/
//! `gep`), opaque runtime calls (the premature-lowering shape of §III),
//! an interpreter, and the three instrumented passes whose counters
//! reproduce the paper's pass analysis (§VII-D):
//!
//! * [`gvn::gvn`] — value numbering; Fig. 10's "% value numbers for
//!   memory";
//! * [`sinkpass::sink`] — code motion; Fig. 11's success / may-write /
//!   may-reference breakdown;
//! * [`constfold::constfold`] — folding; Fig. 12's scalar/load success
//!   and load fail counts;
//!
//! plus [`dce::dce`] and [`mem2reg::mem2reg`]. MEMOIR programs are lowered into this IR by
//! `memoir-lower`.
//!
//! All passes are also registered with the generic `passman` framework
//! ([`passes::registry`]), so pipelines can be described as textual
//! specs and run with [`passes::optimize`], with structural
//! [`verifier`] checks between passes in debug builds.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod constfold;
pub mod dce;
pub mod dom;
pub mod fingerprint;
pub mod gvn;
pub mod interp;
pub mod ir;
pub mod mem2reg;
pub mod passes;
pub mod printer;
pub mod sinkpass;
pub mod verifier;

pub use constfold::{constfold, ConstFoldStats};
pub use dce::dce;
pub use dom::{DomTree, DomTreeAnalysis};
pub use gvn::{gvn, GvnStats};
pub use interp::{LirMachine, LirStats, LirTrap};
pub use ir::{BinOp, Blk, CmpOp, Fun, Function, Ins, Inst, Module, Op, Val};
pub use mem2reg::{mem2reg, Mem2RegStats};
pub use passes::optimize;
pub use sinkpass::{sink, SinkStats};
