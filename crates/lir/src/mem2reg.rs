//! Promotion of non-escaping `alloca`s: block-local store-to-load
//! forwarding plus removal of allocas whose every access is a direct
//! load/store (the scalar-promotion component of LLVM's mem2reg; loops
//! and cross-block promotion are left to the SSA-construction machinery
//! of the MEMOIR level, which is where the paper does that work).

use crate::ir::{Function, Ins, Module, Op, Val};
use std::collections::{HashMap, HashSet};

/// Statistics from a mem2reg run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Mem2RegStats {
    /// Loads replaced by the forwarded stored value.
    pub loads_forwarded: u64,
    /// Allocas removed entirely (all accesses promoted).
    pub allocas_removed: u64,
    /// Dead stores removed with them.
    pub stores_removed: u64,
}

/// Runs promotion on every function.
pub fn mem2reg(m: &mut Module) -> Mem2RegStats {
    let mut stats = Mem2RegStats::default();
    for f in &mut m.funcs {
        run_function(f, &mut stats);
    }
    stats
}

/// Runs promotion on one function.
pub fn mem2reg_function(f: &mut crate::ir::Function) -> Mem2RegStats {
    let mut stats = Mem2RegStats::default();
    run_function(f, &mut stats);
    stats
}

fn run_function(f: &mut Function, stats: &mut Mem2RegStats) {
    // Which values are alloca results, and do they escape (used by
    // anything but a direct load/store-address)?
    let mut allocas: HashSet<Val> = HashSet::new();
    for inst in &f.insts {
        if matches!(inst.op, Op::Alloca(_)) {
            if let Some(&r) = inst.results.first() {
                allocas.insert(r);
            }
        }
    }
    let mut escaped: HashSet<Val> = HashSet::new();
    for (_, i) in f.order() {
        match &f.insts[i.0 as usize].op {
            Op::Load(a) => {
                let _ = a; // address position: fine
            }
            Op::Store { addr, value } => {
                if allocas.contains(value) {
                    escaped.insert(*value); // address stored somewhere
                }
                let _ = addr;
            }
            other => {
                other.visit(|v| {
                    if allocas.contains(v) {
                        escaped.insert(*v);
                    }
                });
            }
        }
    }
    let promotable: HashSet<Val> = allocas.difference(&escaped).copied().collect();

    // Block-local store-to-load forwarding on promotable allocas.
    let mut replacements: HashMap<Val, Val> = HashMap::new();
    let mut dead: Vec<(crate::ir::Blk, Ins)> = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut current: HashMap<Val, Val> = HashMap::new(); // alloca → last stored value
        for &i in &block.insts {
            match &f.insts[i.0 as usize].op {
                Op::Store { addr, value } if promotable.contains(addr) => {
                    current.insert(*addr, *value);
                }
                Op::Load(addr) if promotable.contains(addr) => {
                    if let Some(&v) = current.get(addr) {
                        replacements.insert(f.insts[i.0 as usize].results[0], v);
                        dead.push((crate::ir::Blk(bi as u32), i));
                        stats.loads_forwarded += 1;
                    }
                }
                op if op.may_write() => {
                    // Opaque writes cannot touch a non-escaping alloca:
                    // the facts survive. (This is exactly the guarantee
                    // the escape check bought.)
                }
                _ => {}
            }
        }
    }
    for (b, i) in dead {
        f.remove(b, i);
    }
    f.replace_uses(&replacements);

    // Remove allocas with no remaining loads (their stores are dead too).
    let mut loaded: HashSet<Val> = HashSet::new();
    for (_, i) in f.order() {
        if let Op::Load(a) = f.insts[i.0 as usize].op {
            loaded.insert(a);
        }
    }
    let mut drop_insts: Vec<(crate::ir::Blk, Ins)> = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for &i in &block.insts {
            match &f.insts[i.0 as usize].op {
                Op::Alloca(_) => {
                    let r = f.insts[i.0 as usize].results[0];
                    if promotable.contains(&r) && !loaded.contains(&r) {
                        drop_insts.push((crate::ir::Blk(bi as u32), i));
                        stats.allocas_removed += 1;
                    }
                }
                Op::Store { addr, .. } if promotable.contains(addr) && !loaded.contains(addr) => {
                    drop_insts.push((crate::ir::Blk(bi as u32), i));
                    stats.stores_removed += 1;
                }
                _ => {}
            }
        }
    }
    for (b, i) in drop_insts {
        f.remove(b, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;

    #[test]
    fn forwards_store_to_load_and_drops_alloca() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Alloca(1));
        f.push0(
            e,
            Op::Store {
                addr: a,
                value: f.param(0),
            },
        );
        let l = f.push1(e, Op::Load(a));
        let s = f.push1(e, Op::Bin(BinOp::Add, l, f.param(0)));
        f.push0(e, Op::Ret(vec![s]));
        let mut m = Module::default();
        m.add(f);
        let stats = mem2reg(&mut m);
        assert_eq!(stats.loads_forwarded, 1);
        assert_eq!(stats.allocas_removed, 1);
        assert_eq!(stats.stores_removed, 1);
        // The function is now pure scalar.
        assert!(m.funcs[0]
            .order()
            .iter()
            .all(|(_, i)| !m.funcs[0].insts[i.0 as usize].op.is_memory_op()));
        let mut vm = crate::interp::LirMachine::new(&m);
        assert_eq!(vm.run_by_name("f", vec![21]).unwrap(), vec![42]);
    }

    #[test]
    fn escaping_alloca_untouched() {
        let mut f = Function::new("f", 0, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Alloca(1));
        let c = f.push1(e, Op::Const(7));
        f.push0(e, Op::Store { addr: a, value: c });
        // The address escapes through an opaque call.
        f.push0(
            e,
            Op::CallRt {
                name: "rt_obj_delete".into(),
                args: vec![a],
                has_result: false,
            },
        );
        let l = f.push1(e, Op::Load(a));
        f.push0(e, Op::Ret(vec![l]));
        let mut m = Module::default();
        m.add(f);
        let stats = mem2reg(&mut m);
        assert_eq!(stats.loads_forwarded, 0);
        assert_eq!(stats.allocas_removed, 0);
    }

    #[test]
    fn opaque_calls_do_not_kill_promotable_facts() {
        let mut f = Function::new("f", 0, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Alloca(1));
        let c = f.push1(e, Op::Const(9));
        f.push0(e, Op::Store { addr: a, value: c });
        // An opaque call that does NOT receive the address.
        f.push0(
            e,
            Op::CallRt {
                name: "rt_assoc_new".into(),
                args: vec![],
                has_result: false,
            },
        );
        let l = f.push1(e, Op::Load(a));
        f.push0(e, Op::Ret(vec![l]));
        let mut m = Module::default();
        m.add(f);
        let stats = mem2reg(&mut m);
        assert_eq!(
            stats.loads_forwarded, 1,
            "non-escaping allocas survive opaque calls"
        );
    }
}
