//! [`passman::Pass`] adapters for the lir passes, and the spec registry.
//!
//! Every lir pass is function-local — it touches one function at a time
//! and never the module shell — so all five register as
//! [`FuncPass`]es behind the sharded executor
//! ([`FuncPassAdapter`]): they run per function, potentially on
//! [`PassManager::with_threads`] worker threads, and declare exactly the
//! changed functions via `Mutation::Funcs` (so unmutated functions keep
//! their cached analyses). Their instrumentation counters distinguish
//! *attempts* from *successes* (e.g. `blocked_may_write`), so the
//! per-function changed-bit is computed from the success counters only —
//! a sink run that was blocked everywhere did not mutate the function.

use crate::dom::{DomTree, DomTreeAnalysis};
use crate::ir::{Fun, Function, Module};
use crate::{constfold, dce, gvn, mem2reg, sinkpass};
use passman::{
    AnalysisManager, FuncOutcome, FuncPass, FuncPassAdapter, PassManager, PassRegistry,
    PipelineSpec, QueryCtx, RunError, RunReport,
};
use std::any::Any;

type Ctx<'a> = Option<&'a (dyn Any + Send + Sync)>;

struct ConstFoldPass;
impl FuncPass<Module> for ConstFoldPass {
    fn name(&self) -> &'static str {
        "constfold"
    }
    fn run_on(&self, _shell: &Module, _key: Fun, f: &mut Function, _ctx: Ctx) -> FuncOutcome {
        let s = constfold::constfold_function(f);
        FuncOutcome {
            changed: s.scalar_success + s.load_success > 0,
            stats: vec![
                ("scalar_success", s.scalar_success as i64),
                ("load_success", s.load_success as i64),
                ("load_fail", s.load_fail as i64),
            ],
        }
    }
}

struct DcePass;
impl FuncPass<Module> for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run_on(&self, _shell: &Module, _key: Fun, f: &mut Function, _ctx: Ctx) -> FuncOutcome {
        let removed = dce::dce_function(f);
        FuncOutcome {
            changed: removed > 0,
            stats: vec![("insts_removed", removed as i64)],
        }
    }
}

struct GvnPass;
impl FuncPass<Module> for GvnPass {
    fn name(&self) -> &'static str {
        "gvn"
    }
    /// GVN gates replacements on dominance, so it pulls the dominator
    /// tree through the query bridge. A clone of the tree (two flat
    /// `Vec`s) crosses onto the worker shard — cheaper than the CHK
    /// recomputation it replaces, and the `Rc` cache itself can't cross.
    fn prefetch(&self, q: &mut QueryCtx<'_, Module>) -> Option<Box<dyn Any + Send + Sync>> {
        Some(Box::new((*q.analysis::<DomTreeAnalysis>()).clone()))
    }
    fn run_on(&self, _shell: &Module, _key: Fun, f: &mut Function, ctx: Ctx) -> FuncOutcome {
        let s = match ctx.and_then(|c| c.downcast_ref::<DomTree>()) {
            Some(dom) => gvn::gvn_function_with(f, dom),
            None => gvn::gvn_function(f),
        };
        FuncOutcome {
            changed: s.replaced > 0,
            stats: vec![
                ("total_value_numbers", s.total_value_numbers as i64),
                ("memory_value_numbers", s.memory_value_numbers as i64),
                ("replaced", s.replaced as i64),
            ],
        }
    }
}

struct Mem2RegPass;
impl FuncPass<Module> for Mem2RegPass {
    fn name(&self) -> &'static str {
        "mem2reg"
    }
    fn run_on(&self, _shell: &Module, _key: Fun, f: &mut Function, _ctx: Ctx) -> FuncOutcome {
        let s = mem2reg::mem2reg_function(f);
        FuncOutcome {
            changed: s.loads_forwarded + s.allocas_removed + s.stores_removed > 0,
            stats: vec![
                ("loads_forwarded", s.loads_forwarded as i64),
                ("allocas_removed", s.allocas_removed as i64),
                ("stores_removed", s.stores_removed as i64),
            ],
        }
    }
}

struct SinkPass;
impl FuncPass<Module> for SinkPass {
    fn name(&self) -> &'static str {
        "sink"
    }
    // No `prefetch`: sink decides legality from layout order within a
    // single block (may-write / may-reference scans between the def and
    // its unique use) and never asks a dominance question — there is no
    // DomTree call site to migrate to the cache.
    fn run_on(&self, _shell: &Module, _key: Fun, f: &mut Function, _ctx: Ctx) -> FuncOutcome {
        let s = sinkpass::sink_function(f);
        FuncOutcome {
            changed: s.success > 0,
            stats: vec![
                ("success", s.success as i64),
                ("blocked_may_write", s.blocked_may_write as i64),
                ("blocked_may_reference", s.blocked_may_reference as i64),
            ],
        }
    }
}

/// The registry of lir passes, by spec name: `constfold`, `dce`, `gvn`,
/// `mem2reg`, `sink` — all function-sharded.
pub fn registry() -> PassRegistry<Module> {
    let mut r = PassRegistry::new();
    r.register("constfold", || {
        Box::new(FuncPassAdapter::new(ConstFoldPass))
    });
    r.register("dce", || Box::new(FuncPassAdapter::new(DcePass)));
    r.register("gvn", || Box::new(FuncPassAdapter::new(GvnPass)));
    r.register("mem2reg", || Box::new(FuncPassAdapter::new(Mem2RegPass)));
    r.register("sink", || Box::new(FuncPassAdapter::new(SinkPass)));
    r
}

/// A [`PassManager`] over the lir registry with the structural verifier
/// installed (inter-pass verification runs in debug builds by default),
/// per-function copy-on-write snapshots for recovering fault policies,
/// and the worker-thread count taken from `MEMOIR_THREADS` (default
/// serial). The verifier draws dominator trees from the run's analysis
/// cache ([`DomTreeAnalysis`]), so back-to-back verifications recompute
/// them only for the functions a pass actually mutated.
pub fn pass_manager() -> PassManager<Module> {
    let mut pm = PassManager::new(registry())
        .with_verifier_am(|m: &Module, am: &mut AnalysisManager<Module>| {
            let errs = crate::verifier::verify_module_cached(m, am);
            if errs.is_empty() {
                Ok(())
            } else {
                Err(errs.join("; "))
            }
        })
        .with_cow_snapshots()
        .with_threads(crate::passes::threads_from_env());
    if let Some(cache) = cache_from_env() {
        pm = pm.with_compile_cache(cache);
    }
    pm
}

/// The process-global compile cache enabled by `MEMOIR_CACHE=1` (or
/// `true`); read once per process, shared by every lir pass manager
/// built here. Pass outputs are keyed by function fingerprint, so jobs
/// recompiling unchanged functions through an identical pipeline are
/// served from cache.
pub fn cache_from_env() -> Option<passman::CompileCache> {
    static CACHE: std::sync::OnceLock<Option<passman::CompileCache>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            matches!(
                std::env::var("MEMOIR_CACHE")
                    .ok()
                    .map(|v| v.trim().to_ascii_lowercase())
                    .as_deref(),
                Some("1") | Some("true")
            )
            .then(passman::CompileCache::new)
        })
        .clone()
}

/// The worker-thread count requested via the `MEMOIR_THREADS`
/// environment variable (unset, empty, or unparsable → 1, i.e. serial).
pub fn threads_from_env() -> usize {
    std::env::var("MEMOIR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

/// The default lir optimization pipeline: promote memory, then fold /
/// number / sink / clean to convergence.
pub fn default_spec() -> PipelineSpec {
    PipelineSpec::parse("mem2reg,fixpoint(constfold,gvn,sink,dce)")
        .expect("default lir spec is well-formed")
}

/// Runs a pipeline spec over a module.
pub fn optimize(m: &mut Module, spec: &PipelineSpec) -> Result<RunReport, RunError> {
    pass_manager().run(m, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Op};

    /// `f(x) = (1 + 2) * x` with a dead add; the default spec folds the
    /// constant, removes the dead instruction, and converges.
    fn sample() -> Module {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Const(1));
        let b = f.push1(e, Op::Const(2));
        let c = f.push1(e, Op::Bin(BinOp::Add, a, b));
        let dead = f.push1(e, Op::Bin(BinOp::Add, c, c));
        let _ = dead;
        let r = f.push1(e, Op::Bin(BinOp::Mul, c, f.param(0)));
        f.push0(e, Op::Ret(vec![r]));
        let mut m = Module::default();
        m.add(f);
        m
    }

    #[test]
    fn default_spec_optimizes_and_converges() {
        let mut m = sample();
        let before = m.inst_count();
        let report = optimize(&mut m, &default_spec()).unwrap();
        crate::verifier::assert_valid(&m);
        assert!(m.inst_count() < before);
        // The fixpoint group terminated with a confirming iteration.
        let last_fix = report
            .passes
            .iter()
            .rev()
            .find(|p| p.fixpoint_iteration.is_some())
            .unwrap();
        assert!(!last_fix.changed);
    }

    #[test]
    fn spec_runs_match_direct_calls() {
        let mut direct = sample();
        crate::constfold::constfold(&mut direct);
        crate::dce::dce(&mut direct);
        let mut via_spec = sample();
        let spec = PipelineSpec::parse("constfold,dce").unwrap();
        optimize(&mut via_spec, &spec).unwrap();
        assert_eq!(direct.inst_count(), via_spec.inst_count());
    }

    #[test]
    fn unknown_pass_errors_before_running() {
        let mut m = sample();
        let before = m.inst_count();
        let spec = PipelineSpec::parse("constfold,licm").unwrap();
        let err = optimize(&mut m, &spec).unwrap_err();
        assert!(err.to_string().contains("unknown pass `licm`"));
        assert_eq!(m.inst_count(), before, "validation precedes execution");
    }

    /// The dominator tree is computed at most once per function between
    /// mutations, and reused across verifier invocations and gvn's
    /// prefetch: once the fixpoint group stops changing the module, the
    /// confirming iteration's verifications are pure cache hits.
    #[test]
    fn dom_trees_are_cached_across_verifications() {
        let mut m = sample();
        let pm = pass_manager().verify_between_passes(true);
        let mut am = passman::AnalysisManager::new();
        pm.run_with(&mut m, &default_spec(), &mut am).unwrap();
        let c = am.counter("dom-tree");
        assert!(c.misses > 0, "the verifier and gvn did request the tree");
        assert!(
            c.hits > 0,
            "converged iterations must reuse cached trees, got {c:?}"
        );
        assert_eq!(
            c.max_computes_between_invalidations, 1,
            "caching contract: one compute per function per generation"
        );
    }

    #[test]
    fn parallel_runs_match_serial() {
        // Three copies of the sample function so the sharded executor
        // actually partitions work.
        let build = || {
            let mut m = sample();
            let f1 = m.funcs[0].clone();
            let f2 = m.funcs[0].clone();
            m.add(f1);
            m.add(f2);
            m
        };
        let mut serial = build();
        let serial_report = optimize(&mut serial, &default_spec()).unwrap();
        for threads in [2, 4, 8] {
            let mut par = build();
            let report = PassManager::new(registry())
                .with_threads(threads)
                .run(&mut par, &default_spec())
                .unwrap();
            assert_eq!(
                format!("{par:?}"),
                format!("{serial:?}"),
                "threads={threads}"
            );
            let fp = |r: &RunReport| {
                r.passes
                    .iter()
                    .map(|p| (p.name.clone(), p.changed, p.stats.clone()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(fp(&report), fp(&serial_report), "threads={threads}");
        }
    }
}
