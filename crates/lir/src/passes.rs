//! [`passman::Pass`] adapters for the lir passes, and the spec registry.
//!
//! The lir passes already iterate to a per-function fixpoint internally,
//! so each adapter runs the whole pass and declares
//! [`Mutation::All`](passman::Mutation) when it changed anything. Their
//! instrumentation counters distinguish *attempts* from *successes*
//! (e.g. `blocked_may_write`), so the changed-bit is computed from the
//! success counters only — a sink run that was blocked everywhere did
//! not mutate the module.

use crate::ir::Module;
use crate::{constfold, dce, gvn, mem2reg, sinkpass};
use passman::{
    FnPass, Mutation, PassManager, PassOutcome, PassRegistry, PipelineSpec, RunError, RunReport,
};

fn outcome(changed: bool, stats: Vec<(&'static str, i64)>) -> PassOutcome<Module> {
    PassOutcome {
        changed,
        mutated: if changed {
            Mutation::All
        } else {
            Mutation::None
        },
        stats,
    }
}

/// The registry of lir passes, by spec name: `constfold`, `dce`, `gvn`,
/// `mem2reg`, `sink`.
pub fn registry() -> PassRegistry<Module> {
    let mut r = PassRegistry::new();

    r.register("constfold", || {
        Box::new(FnPass::infallible("constfold", |m: &mut Module, _am| {
            let s = constfold::constfold(m);
            outcome(
                s.scalar_success + s.load_success > 0,
                vec![
                    ("scalar_success", s.scalar_success as i64),
                    ("load_success", s.load_success as i64),
                    ("load_fail", s.load_fail as i64),
                ],
            )
        }))
    });
    r.register("dce", || {
        Box::new(FnPass::infallible("dce", |m: &mut Module, _am| {
            let removed = dce::dce(m);
            outcome(removed > 0, vec![("insts_removed", removed as i64)])
        }))
    });
    r.register("gvn", || {
        Box::new(FnPass::infallible("gvn", |m: &mut Module, _am| {
            let s = gvn::gvn(m);
            outcome(
                s.replaced > 0,
                vec![
                    ("total_value_numbers", s.total_value_numbers as i64),
                    ("memory_value_numbers", s.memory_value_numbers as i64),
                    ("replaced", s.replaced as i64),
                ],
            )
        }))
    });
    r.register("mem2reg", || {
        Box::new(FnPass::infallible("mem2reg", |m: &mut Module, _am| {
            let s = mem2reg::mem2reg(m);
            outcome(
                s.loads_forwarded + s.allocas_removed + s.stores_removed > 0,
                vec![
                    ("loads_forwarded", s.loads_forwarded as i64),
                    ("allocas_removed", s.allocas_removed as i64),
                    ("stores_removed", s.stores_removed as i64),
                ],
            )
        }))
    });
    r.register("sink", || {
        Box::new(FnPass::infallible("sink", |m: &mut Module, _am| {
            let s = sinkpass::sink(m);
            outcome(
                s.success > 0,
                vec![
                    ("success", s.success as i64),
                    ("blocked_may_write", s.blocked_may_write as i64),
                    ("blocked_may_reference", s.blocked_may_reference as i64),
                ],
            )
        }))
    });

    r
}

/// A [`PassManager`] over the lir registry with the structural verifier
/// installed (inter-pass verification runs in debug builds by default).
pub fn pass_manager() -> PassManager<Module> {
    PassManager::new(registry()).with_verifier(|m: &Module| {
        let errs = crate::verifier::verify_module(m);
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.join("; "))
        }
    })
}

/// The default lir optimization pipeline: promote memory, then fold /
/// number / sink / clean to convergence.
pub fn default_spec() -> PipelineSpec {
    PipelineSpec::parse("mem2reg,fixpoint(constfold,gvn,sink,dce)")
        .expect("default lir spec is well-formed")
}

/// Runs a pipeline spec over a module.
pub fn optimize(m: &mut Module, spec: &PipelineSpec) -> Result<RunReport, RunError> {
    pass_manager().run(m, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Function, Op};

    /// `f(x) = (1 + 2) * x` with a dead add; the default spec folds the
    /// constant, removes the dead instruction, and converges.
    fn sample() -> Module {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let a = f.push1(e, Op::Const(1));
        let b = f.push1(e, Op::Const(2));
        let c = f.push1(e, Op::Bin(BinOp::Add, a, b));
        let dead = f.push1(e, Op::Bin(BinOp::Add, c, c));
        let _ = dead;
        let r = f.push1(e, Op::Bin(BinOp::Mul, c, f.param(0)));
        f.push0(e, Op::Ret(vec![r]));
        let mut m = Module::default();
        m.add(f);
        m
    }

    #[test]
    fn default_spec_optimizes_and_converges() {
        let mut m = sample();
        let before = m.inst_count();
        let report = optimize(&mut m, &default_spec()).unwrap();
        crate::verifier::assert_valid(&m);
        assert!(m.inst_count() < before);
        // The fixpoint group terminated with a confirming iteration.
        let last_fix = report
            .passes
            .iter()
            .rev()
            .find(|p| p.fixpoint_iteration.is_some())
            .unwrap();
        assert!(!last_fix.changed);
    }

    #[test]
    fn spec_runs_match_direct_calls() {
        let mut direct = sample();
        crate::constfold::constfold(&mut direct);
        crate::dce::dce(&mut direct);
        let mut via_spec = sample();
        let spec = PipelineSpec::parse("constfold,dce").unwrap();
        optimize(&mut via_spec, &spec).unwrap();
        assert_eq!(direct.inst_count(), via_spec.inst_count());
    }

    #[test]
    fn unknown_pass_errors_before_running() {
        let mut m = sample();
        let before = m.inst_count();
        let spec = PipelineSpec::parse("constfold,licm").unwrap();
        let err = optimize(&mut m, &spec).unwrap_err();
        assert!(err.to_string().contains("unknown pass `licm`"));
        assert_eq!(m.inst_count(), before, "validation precedes execution");
    }
}
