//! Textual rendering of low-level IR functions (debugging aid).

use crate::ir::{Function, Module, Op};
use std::fmt::Write;

/// Prints a module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for f in &m.funcs {
        out.push_str(&print_function(f, m));
        out.push('\n');
    }
    out
}

/// Prints one function.
pub fn print_function(f: &Function, m: &Module) -> String {
    let mut out = String::new();
    let params: Vec<String> = (0..f.num_params).map(|i| format!("%{i}")).collect();
    let _ = writeln!(
        out,
        "fn {}({}) -> {} values {{",
        f.name,
        params.join(", "),
        f.num_rets
    );
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "b{bi}:");
        for &i in &block.insts {
            let inst = &f.insts[i.0 as usize];
            let results = if inst.results.is_empty() {
                String::new()
            } else {
                let names: Vec<String> = inst.results.iter().map(|r| format!("%{}", r.0)).collect();
                format!("{} = ", names.join(", "))
            };
            let body = match &inst.op {
                Op::Const(c) => format!("const {c}"),
                Op::Bin(op, a, b) => format!("{op:?} %{}, %{}", a.0, b.0).to_lowercase(),
                Op::Cmp(op, a, b) => format!("cmp.{op:?} %{}, %{}", a.0, b.0).to_lowercase(),
                Op::Phi(incs) => {
                    let parts: Vec<String> = incs
                        .iter()
                        .map(|(b, v)| format!("[b{}: %{}]", b.0, v.0))
                        .collect();
                    format!("phi {}", parts.join(", "))
                }
                Op::Alloca(n) => format!("alloca {n}"),
                Op::Malloc(v) => format!("malloc %{}", v.0),
                Op::Free(v) => format!("free %{}", v.0),
                Op::Load(a) => format!("load %{}", a.0),
                Op::Store { addr, value } => format!("store %{}, %{}", addr.0, value.0),
                Op::Gep { base, offset } => format!("gep %{}, %{}", base.0, offset.0),
                Op::Call { func, args } => {
                    let a: Vec<String> = args.iter().map(|v| format!("%{}", v.0)).collect();
                    format!("call @{}({})", m.funcs[func.0 as usize].name, a.join(", "))
                }
                Op::CallRt { name, args, .. } => {
                    let a: Vec<String> = args.iter().map(|v| format!("%{}", v.0)).collect();
                    format!("call @{name}!({})", a.join(", "))
                }
                Op::Jmp(b) => format!("jmp b{}", b.0),
                Op::Br {
                    cond,
                    then_b,
                    else_b,
                } => {
                    format!("br %{}, b{}, b{}", cond.0, then_b.0, else_b.0)
                }
                Op::Ret(vs) => {
                    let a: Vec<String> = vs.iter().map(|v| format!("%{}", v.0)).collect();
                    format!("ret {}", a.join(", "))
                }
            };
            let _ = writeln!(out, "  {results}{body}");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;

    #[test]
    fn prints_readably() {
        let mut f = Function::new("demo", 1, 1);
        let e = f.entry;
        let c = f.push1(e, Op::Const(2));
        let x = f.push1(e, Op::Bin(BinOp::Mul, f.param(0), c));
        let a = f.push1(e, Op::Alloca(1));
        f.push0(e, Op::Store { addr: a, value: x });
        let l = f.push1(e, Op::Load(a));
        f.push0(e, Op::Ret(vec![l]));
        let mut m = Module::default();
        m.add(f);
        let text = print_module(&m);
        assert!(text.contains("fn demo(%0) -> 1 values"), "{text}");
        assert!(text.contains("store"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }
}
