//! The Sink pass with the paper's Fig. 11 instrumentation.
//!
//! Attempts to move single-use instructions into their use's block. In
//! the lowered form, most attempts fail on memory barriers: a load cannot
//! move past an instruction that **may write** memory, and no instruction
//! may move past one that **may reference** the location it writes or
//! computes. Fig. 11 reports the attempt breakdown (success / may-write /
//! may-reference); §VII-D argues MEMOIR's unambiguous element operations
//! would lift most of these barriers (and `memoir-opt::sink` demonstrates
//! it by sinking collection reads freely).

use crate::ir::{Blk, Function, Ins, Module, Op, Val};
use std::collections::HashMap;

/// Fig. 11 counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Candidates successfully sunk.
    pub success: u64,
    /// Candidates blocked because an intervening instruction may write
    /// memory the candidate reads.
    pub blocked_may_write: u64,
    /// Candidates blocked because an intervening instruction may
    /// reference memory the candidate (an address-producing or
    /// memory-reading op) touches.
    pub blocked_may_reference: u64,
}

impl SinkStats {
    /// Total attempts.
    pub fn attempts(&self) -> u64 {
        self.success + self.blocked_may_write + self.blocked_may_reference
    }
}

/// Runs the sink pass on every function.
pub fn sink(m: &mut Module) -> SinkStats {
    let mut stats = SinkStats::default();
    for f in &mut m.funcs {
        run_function(f, &mut stats);
    }
    stats
}

/// Runs the sink pass on one function.
pub fn sink_function(f: &mut crate::ir::Function) -> SinkStats {
    let mut stats = SinkStats::default();
    run_function(f, &mut stats);
    stats
}

fn run_function(f: &mut Function, stats: &mut SinkStats) {
    // Single pass (LLVM's Sink iterates; one pass suffices for counters
    // and most motion).
    let order = f.order();
    let mut pos: HashMap<Ins, (Blk, usize)> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (k, &i) in b.insts.iter().enumerate() {
            pos.insert(i, (Blk(bi as u32), k));
        }
    }
    // Uses per value.
    let mut uses: HashMap<Val, Vec<Ins>> = HashMap::new();
    for &(_, i) in &order {
        f.insts[i.0 as usize].op.visit(|v| {
            uses.entry(*v).or_default().push(i);
        });
    }

    let mut moves: Vec<(Ins, Blk, Blk)> = Vec::new();
    for &(b, i) in &order {
        let inst = &f.insts[i.0 as usize];
        // Candidates: non-terminator, non-φ, single result, single use in
        // a different block, and not a store/call (those anchor).
        if inst.op.is_terminator() || matches!(inst.op, Op::Phi(_)) {
            continue;
        }
        if inst.op.may_write() {
            continue;
        }
        if inst.results.len() != 1 {
            continue;
        }
        let Some(us) = uses.get(&inst.results[0]) else {
            continue;
        };
        if us.len() != 1 {
            continue;
        }
        let user = us[0];
        if matches!(f.insts[user.0 as usize].op, Op::Phi(_)) {
            continue;
        }
        let Some(&(ub, _upos)) = pos.get(&user) else {
            continue;
        };
        if ub == b {
            continue;
        }
        // This is an attempt. Check memory legality along the straight
        // block-order region between def and use (a conservative stand-in
        // for LLVM's dominance walk).
        let (reads_mem, is_addr) = match inst.op {
            Op::Load(_) => (true, false),
            Op::Gep { .. } => (false, true),
            _ => (false, false),
        };
        let mut verdict = Verdict::Ok;
        match region_between(&order, i, user) {
            Some(between) => {
                for &j in &between {
                    let other = &f.insts[j.0 as usize].op;
                    if reads_mem && other.may_write() {
                        verdict = Verdict::MayWrite;
                        break;
                    }
                    if is_addr && (other.may_write() || other.may_read()) {
                        // Moving address computation past memory
                        // operations that may reference the same object.
                        verdict = Verdict::MayReference;
                        break;
                    }
                }
            }
            None => {
                // The use precedes the def in layout order (block layout
                // is not required to be dominance-sorted), so the
                // straight-layout interval is no stand-in for the paths
                // between them: conservatively block memory-sensitive
                // candidates. Pure scalar ops need no memory legality
                // and may still sink.
                if reads_mem {
                    verdict = Verdict::MayWrite;
                } else if is_addr {
                    verdict = Verdict::MayReference;
                }
            }
        }
        match verdict {
            Verdict::Ok => {
                stats.success += 1;
                moves.push((i, b, ub));
            }
            Verdict::MayWrite => stats.blocked_may_write += 1,
            Verdict::MayReference => stats.blocked_may_reference += 1,
        }
    }

    for (i, from, to) in moves {
        f.remove(from, i);
        // Insert after φs of the target.
        let phi_boundary = f.blocks[to.0 as usize]
            .insts
            .iter()
            .take_while(|&&x| matches!(f.insts[x.0 as usize].op, Op::Phi(_)))
            .count();
        f.blocks[to.0 as usize].insts.insert(phi_boundary, i);
    }
}

enum Verdict {
    Ok,
    MayWrite,
    MayReference,
}

/// The instructions strictly between `from` and `to` in layout order, or
/// `None` when `to` does not come after `from` — then the layout
/// interval says nothing about the def→use paths and the caller must be
/// conservative.
fn region_between(order: &[(Blk, Ins)], from: Ins, to: Ins) -> Option<Vec<Ins>> {
    let a = order.iter().position(|&(_, i)| i == from)?;
    let b = order.iter().position(|&(_, i)| i == to)?;
    (a < b).then(|| order[a + 1..b].iter().map(|&(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, CmpOp};

    /// A pure add used only in one branch sinks successfully.
    #[test]
    fn pure_scalar_sinks() {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let yes = f.add_block();
        let no = f.add_block();
        let v = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(0)));
        let c = f.push1(e, Op::Cmp(CmpOp::Gt, f.param(1), f.param(0)));
        f.push0(
            e,
            Op::Br {
                cond: c,
                then_b: yes,
                else_b: no,
            },
        );
        f.push0(yes, Op::Ret(vec![v]));
        let z = f.push1(no, Op::Const(0));
        f.push0(no, Op::Ret(vec![z]));
        let mut m = Module::default();
        m.add(f);
        let stats = sink(&mut m);
        assert_eq!(stats.success, 1);
        assert_eq!(stats.attempts(), 1);
        // The add moved into `yes`.
        assert!(m.funcs[0].blocks[1]
            .insts
            .iter()
            .any(|&i| matches!(m.funcs[0].insts[i.0 as usize].op, Op::Bin(..))));
    }

    /// A load blocked by an intervening store reports MayWrite.
    #[test]
    fn load_blocked_by_store() {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let yes = f.add_block();
        let no = f.add_block();
        let l = f.push1(e, Op::Load(f.param(0)));
        let c9 = f.push1(e, Op::Const(9));
        f.push0(
            e,
            Op::Store {
                addr: f.param(1),
                value: c9,
            },
        ); // may alias
        let c = f.push1(e, Op::Cmp(CmpOp::Gt, c9, f.param(1)));
        f.push0(
            e,
            Op::Br {
                cond: c,
                then_b: yes,
                else_b: no,
            },
        );
        f.push0(yes, Op::Ret(vec![l]));
        let z = f.push1(no, Op::Const(0));
        f.push0(no, Op::Ret(vec![z]));
        let mut m = Module::default();
        m.add(f);
        let stats = sink(&mut m);
        assert_eq!(stats.blocked_may_write, 1);
        assert_eq!(stats.success, 0);
    }

    /// A def whose block dominates its use's block but comes *after* it
    /// in layout order — the shape `ssa-destruct`'s appended blocks give
    /// the lowered module (found by `memoir-fuzz --lower`, crash-7-46:
    /// `region_between` used to panic on the reversed slice). A pure op
    /// may still sink; a memory-sensitive one is conservatively blocked.
    #[test]
    fn backward_layout_use_does_not_panic() {
        let build = |mem: bool| {
            let mut f = Function::new("f", 1, 1);
            let e = f.entry;
            let use_b = f.add_block(); // b1, laid out before…
            let def_b = f.add_block(); // …b2, its dominator
            f.push0(e, Op::Jmp(def_b));
            let v = if mem {
                f.push1(def_b, Op::Load(f.param(0)))
            } else {
                f.push1(def_b, Op::Bin(BinOp::Add, f.param(0), f.param(0)))
            };
            f.push0(def_b, Op::Jmp(use_b));
            let one = f.push1(use_b, Op::Const(1));
            let r = f.push1(use_b, Op::Bin(BinOp::Add, v, one));
            f.push0(use_b, Op::Ret(vec![r]));
            let mut m = Module::default();
            m.add(f);
            m
        };
        let mut m = build(false);
        let stats = sink(&mut m);
        assert_eq!(stats.success, 1, "{stats:?}");
        crate::verifier::assert_valid(&m);
        let mut m = build(true);
        let stats = sink(&mut m);
        assert_eq!(stats.success, 0, "{stats:?}");
        assert_eq!(stats.blocked_may_write, 1, "{stats:?}");
        crate::verifier::assert_valid(&m);
    }

    /// A GEP blocked by intervening memory traffic reports MayReference.
    #[test]
    fn gep_blocked_by_memory_reference() {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let yes = f.add_block();
        let no = f.add_block();
        let one = f.push1(e, Op::Const(1));
        let g = f.push1(
            e,
            Op::Gep {
                base: f.param(0),
                offset: one,
            },
        );
        let l = f.push1(e, Op::Load(f.param(1))); // memory reference between
        let c = f.push1(e, Op::Cmp(CmpOp::Gt, l, one));
        f.push0(
            e,
            Op::Br {
                cond: c,
                then_b: yes,
                else_b: no,
            },
        );
        let lv = f.push1(yes, Op::Load(g));
        f.push0(yes, Op::Ret(vec![lv]));
        let z = f.push1(no, Op::Const(0));
        f.push0(no, Op::Ret(vec![z]));
        let mut m = Module::default();
        m.add(f);
        let stats = sink(&mut m);
        assert_eq!(stats.blocked_may_reference, 1);
    }
}
