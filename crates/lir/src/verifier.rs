//! Structural verifier for lir modules.
//!
//! lir is produced both by `memoir-lower` and by its own optimization
//! passes; this checker catches the invariant breaks a buggy pass is
//! most likely to introduce, so the pass manager can pinpoint the
//! offending pass between runs:
//!
//! * every block ends with exactly one terminator, and only its last
//!   instruction is one;
//! * branch/jump targets are in range;
//! * every used value is defined (a parameter or the result of an
//!   instruction that is still placed in some block);
//! * no value is defined by two placed instructions;
//! * φ nodes sit at the head of their block.

use crate::ir::{Fun, Function, Module, Op, Val};
use std::collections::HashSet;

/// Checks one function, appending human-readable problems to `out`.
fn verify_function(fun: Fun, f: &Function, out: &mut Vec<String>) {
    let name = &f.name;
    let mut defined: HashSet<Val> = (0..f.num_params).map(Val).collect();
    let mut complain = |msg: String| out.push(format!("{name} (f{}): {msg}", fun.0));

    // Definitions: placed instructions only, each value defined once.
    for (bi, b) in f.blocks.iter().enumerate() {
        for &i in &b.insts {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                complain(format!("b{bi} references out-of-range instruction {i:?}"));
                continue;
            };
            for &r in &inst.results {
                if !defined.insert(r) {
                    complain(format!("{r:?} defined more than once (in b{bi})"));
                }
            }
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            complain(format!("b{bi} is empty (no terminator)"));
            continue;
        }
        let mut seen_non_phi = false;
        for (pos, &i) in b.insts.iter().enumerate() {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                continue;
            };
            let is_last = pos + 1 == b.insts.len();
            if inst.op.is_terminator() != is_last {
                if is_last {
                    complain(format!("b{bi} does not end with a terminator"));
                } else {
                    complain(format!("terminator {i:?} in the middle of b{bi}"));
                }
            }
            match &inst.op {
                Op::Phi(incs) => {
                    if seen_non_phi {
                        complain(format!("φ {i:?} after non-φ instructions in b{bi}"));
                    }
                    for &(p, _) in incs {
                        if p.0 as usize >= f.blocks.len() {
                            complain(format!("φ {i:?} names out-of-range block {p:?}"));
                        }
                    }
                }
                _ => seen_non_phi = true,
            }
            for t in inst.op.successors() {
                if t.0 as usize >= f.blocks.len() {
                    complain(format!("{i:?} jumps to out-of-range block {t:?}"));
                }
            }
            inst.op.visit(|v| {
                if !defined.contains(v) {
                    complain(format!("{i:?} in b{bi} uses undefined value {v:?}"));
                }
            });
        }
    }
}

/// Checks every function, returning all problems found.
pub fn verify_module(m: &Module) -> Vec<String> {
    let mut out = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        verify_function(Fun(fi as u32), f, &mut out);
    }
    out
}

/// Panics with a joined report if the module is malformed.
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    if !errs.is_empty() {
        panic!("lir verification failed:\n  {}", errs.join("\n  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Blk, Op};

    fn valid() -> Module {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let s = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(1)));
        f.push0(e, Op::Ret(vec![s]));
        let mut m = Module::default();
        m.add(f);
        m
    }

    #[test]
    fn valid_module_passes() {
        assert!(verify_module(&valid()).is_empty());
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut m = valid();
        let f = &mut m.funcs[0];
        let b = f.entry;
        let last = *f.blocks[b.0 as usize].insts.last().unwrap();
        f.remove(b, last);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.contains("terminator")), "{errs:?}");
    }

    #[test]
    fn undefined_use_is_reported() {
        let mut f = Function::new("f", 0, 1);
        let e = f.entry;
        f.push0(e, Op::Ret(vec![Val(42)]));
        let mut m = Module::default();
        m.add(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.contains("undefined value %42")),
            "{errs:?}"
        );
    }

    #[test]
    fn out_of_range_target_is_reported() {
        let mut f = Function::new("f", 0, 0);
        let e = f.entry;
        f.push0(e, Op::Jmp(Blk(7)));
        let mut m = Module::default();
        m.add(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.contains("out-of-range block b7")),
            "{errs:?}"
        );
    }
}
