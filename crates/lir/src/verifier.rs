//! Structural verifier for lir modules.
//!
//! lir is produced both by `memoir-lower` and by its own optimization
//! passes; this checker catches the invariant breaks a buggy pass is
//! most likely to introduce, so the pass manager can pinpoint the
//! offending pass between runs:
//!
//! * every block ends with exactly one terminator, and only its last
//!   instruction is one;
//! * branch/jump targets are in range;
//! * every used value is defined (a parameter or the result of an
//!   instruction that is still placed in some block);
//! * no value is defined by two placed instructions;
//! * φ nodes sit at the head of their block;
//! * every use in a reachable block is **dominated** by its definition
//!   (a φ's incoming value must dominate the end of the matching
//!   predecessor). Block layout order is no proxy for this: lowered
//!   modules routinely place dominators *after* the blocks they
//!   dominate, and a GVN miscompile that broke def-before-use used to
//!   slip past this verifier and only surface as an interpreter trap
//!   (found by `memoir-fuzz --lower`, crash-7-172).

use crate::dom::DomTree;
use crate::ir::{Blk, Fun, Function, Module, Op, Val};
use std::collections::{HashMap, HashSet};

/// Checks one function, computing the dominator tree fresh.
fn verify_function(fun: Fun, f: &Function, out: &mut Vec<String>) {
    verify_function_with(fun, f, &DomTree::compute(f), out)
}

/// Checks one function against a caller-provided dominator tree,
/// appending human-readable problems to `out`. `dom` must describe `f`'s
/// current CFG — the cached-analysis path
/// ([`verify_module_cached`]) guarantees this by invalidating mutated
/// functions before verification runs.
fn verify_function_with(fun: Fun, f: &Function, dom: &DomTree, out: &mut Vec<String>) {
    let name = &f.name;
    let mut defined: HashSet<Val> = (0..f.num_params).map(Val).collect();
    let mut complain = |msg: String| out.push(format!("{name} (f{}): {msg}", fun.0));

    // Definitions: placed instructions only, each value defined once.
    // Record each definition's position for the dominance check below.
    let mut def_at: HashMap<Val, (Blk, usize)> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (pos, &i) in b.insts.iter().enumerate() {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                complain(format!("b{bi} references out-of-range instruction {i:?}"));
                continue;
            };
            for &r in &inst.results {
                if !defined.insert(r) {
                    complain(format!("{r:?} defined more than once (in b{bi})"));
                }
                def_at.entry(r).or_insert((Blk(bi as u32), pos));
            }
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            complain(format!("b{bi} is empty (no terminator)"));
            continue;
        }
        let mut seen_non_phi = false;
        for (pos, &i) in b.insts.iter().enumerate() {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                continue;
            };
            let is_last = pos + 1 == b.insts.len();
            if inst.op.is_terminator() != is_last {
                if is_last {
                    complain(format!("b{bi} does not end with a terminator"));
                } else {
                    complain(format!("terminator {i:?} in the middle of b{bi}"));
                }
            }
            match &inst.op {
                Op::Phi(incs) => {
                    if seen_non_phi {
                        complain(format!("φ {i:?} after non-φ instructions in b{bi}"));
                    }
                    for &(p, _) in incs {
                        if p.0 as usize >= f.blocks.len() {
                            complain(format!("φ {i:?} names out-of-range block {p:?}"));
                        }
                    }
                }
                _ => seen_non_phi = true,
            }
            for t in inst.op.successors() {
                if t.0 as usize >= f.blocks.len() {
                    complain(format!("{i:?} jumps to out-of-range block {t:?}"));
                }
            }
            inst.op.visit(|v| {
                if !defined.contains(v) {
                    complain(format!("{i:?} in b{bi} uses undefined value {v:?}"));
                }
            });
        }
    }

    // Dominance: every use in a reachable block must be dominated by
    // its definition (parameters dominate everything). Unreachable
    // blocks are skipped — no dominance relation is defined there, and
    // dce is entitled to drop them wholesale.
    for (bi, b) in f.blocks.iter().enumerate() {
        let blk = Blk(bi as u32);
        if !dom.is_reachable(blk) {
            continue;
        }
        for (pos, &i) in b.insts.iter().enumerate() {
            let Some(inst) = f.insts.get(i.0 as usize) else {
                continue;
            };
            match &inst.op {
                Op::Phi(incs) => {
                    // An incoming value is used at the *end of the
                    // matching predecessor*, not at the φ itself.
                    for &(p, v) in incs {
                        let Some(&(db, _)) = def_at.get(&v) else {
                            continue;
                        };
                        if p.0 as usize >= f.blocks.len() || !dom.is_reachable(p) {
                            continue;
                        }
                        if !dom.dominates(db, p) {
                            complain(format!(
                                "φ {i:?} in b{bi}: incoming {v:?} (defined in b{}) \
                                 does not dominate predecessor b{}",
                                db.0, p.0
                            ));
                        }
                    }
                }
                op => {
                    op.visit(|v| {
                        // Parameters and undefined values (already
                        // reported above) have no entry here.
                        let Some(&(db, dk)) = def_at.get(v) else {
                            return;
                        };
                        let ok = (db == blk && dk < pos) || dom.strictly_dominates(db, blk);
                        if !ok {
                            complain(format!(
                                "{i:?} in b{bi} uses {v:?} before its definition \
                                 (in b{}) on some path",
                                db.0
                            ));
                        }
                    });
                }
            }
        }
    }
}

/// Checks every function, returning all problems found.
pub fn verify_module(m: &Module) -> Vec<String> {
    let mut out = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        verify_function(Fun(fi as u32), f, &mut out);
    }
    out
}

/// Checks every function, drawing each dominator tree from the analysis
/// cache ([`DomTreeAnalysis`](crate::dom::DomTreeAnalysis)) instead of
/// recomputing it — the inter-pass verification path installed by
/// [`pass_manager`](crate::passes::pass_manager). Functions no pass has
/// mutated since the last verification reuse their cached tree; mutated
/// functions were invalidated by the runner before verification, so the
/// `get` recomputes on the current (possibly broken) body, which
/// [`DomTree::compute`] tolerates.
pub fn verify_module_cached(m: &Module, am: &mut passman::AnalysisManager<Module>) -> Vec<String> {
    let mut out = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        let fun = Fun(fi as u32);
        let dom = am.get::<crate::dom::DomTreeAnalysis>(m, fun);
        verify_function_with(fun, f, &dom, &mut out);
    }
    out
}

/// Panics with a joined report if the module is malformed.
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    if !errs.is_empty() {
        panic!("lir verification failed:\n  {}", errs.join("\n  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Blk, CmpOp, Op};

    fn valid() -> Module {
        let mut f = Function::new("f", 2, 1);
        let e = f.entry;
        let s = f.push1(e, Op::Bin(BinOp::Add, f.param(0), f.param(1)));
        f.push0(e, Op::Ret(vec![s]));
        let mut m = Module::default();
        m.add(f);
        m
    }

    #[test]
    fn valid_module_passes() {
        assert!(verify_module(&valid()).is_empty());
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut m = valid();
        let f = &mut m.funcs[0];
        let b = f.entry;
        let last = *f.blocks[b.0 as usize].insts.last().unwrap();
        f.remove(b, last);
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.contains("terminator")), "{errs:?}");
    }

    #[test]
    fn undefined_use_is_reported() {
        let mut f = Function::new("f", 0, 1);
        let e = f.entry;
        f.push0(e, Op::Ret(vec![Val(42)]));
        let mut m = Module::default();
        m.add(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.contains("undefined value %42")),
            "{errs:?}"
        );
    }

    /// A use in a block its definition does not dominate — the exact
    /// module shape GVN's miscompile produced (crash-7-172): the value
    /// is *defined somewhere*, so the old structural check passed, but
    /// the defining block runs after the using one.
    #[test]
    fn non_dominating_def_is_reported() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let first = f.add_block(); // runs first, uses v
        let second = f.add_block(); // runs second, defines v
        f.push0(e, Op::Jmp(first));
        let one = f.push1(second, Op::Const(1));
        f.push0(second, Op::Ret(vec![one]));
        // `first` uses `one` before `second` has run.
        let u = f.push1(first, Op::Bin(BinOp::Add, one, one));
        f.push0(first, Op::Jmp(second));
        let _ = u;
        let mut m = Module::default();
        m.add(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.contains("before its definition")),
            "{errs:?}"
        );
    }

    /// A def in a block that dominates its (layout-earlier) use is fine:
    /// backward layout alone is not an error.
    #[test]
    fn backward_layout_with_dominance_is_valid() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let use_b = f.add_block(); // b1, laid out before…
        let def_b = f.add_block(); // …b2, its dominator
        f.push0(e, Op::Jmp(def_b));
        let v = f.push1(def_b, Op::Bin(BinOp::Add, f.param(0), f.param(0)));
        f.push0(def_b, Op::Jmp(use_b));
        f.push0(use_b, Op::Ret(vec![v]));
        let mut m = Module::default();
        m.add(f);
        assert!(verify_module(&m).is_empty());
    }

    /// A φ incoming value must dominate the matching predecessor's end,
    /// not the φ's own block.
    #[test]
    fn phi_incoming_must_dominate_predecessor() {
        let mut f = Function::new("f", 1, 1);
        let e = f.entry;
        let a = f.add_block();
        let b = f.add_block();
        let j = f.add_block();
        let c = f.push1(e, Op::Cmp(CmpOp::Gt, f.param(0), f.param(0)));
        f.push0(
            e,
            Op::Br {
                cond: c,
                then_b: a,
                else_b: b,
            },
        );
        // `va` is defined in arm `a` but named as the incoming for arm
        // `b`, which it does not dominate.
        let va = f.push1(a, Op::Const(1));
        f.push0(a, Op::Jmp(j));
        f.push0(b, Op::Jmp(j));
        let p = f.push1(j, Op::Phi(vec![(a, va), (b, va)]));
        f.push0(j, Op::Ret(vec![p]));
        let mut m = Module::default();
        m.add(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter()
                .any(|e| e.contains("does not dominate predecessor b2")),
            "{errs:?}"
        );
    }

    #[test]
    fn out_of_range_target_is_reported() {
        let mut f = Function::new("f", 0, 0);
        let e = f.entry;
        f.push0(e, Op::Jmp(Blk(7)));
        let mut m = Module::default();
        m.add(f);
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.contains("out-of-range block b7")),
            "{errs:?}"
        );
    }
}
