//! Differential tests: every low-level pass preserves the observable
//! behaviour of a representative function.

use lir::{BinOp, CmpOp, Function, LirMachine, Module, Op};

/// Builds `f(p, x)`: mixed scalar/memory code with a loop and a branch.
fn build() -> Module {
    let mut f = Function::new("f", 2, 1);
    let e = f.entry;
    let header = f.add_block();
    let body = f.add_block();
    let exit = f.add_block();

    // Entry: alloca scratch, store x*2+3, redundant adds (GVN fodder).
    let a = f.push1(e, Op::Alloca(1));
    let two = f.push1(e, Op::Const(2));
    let three = f.push1(e, Op::Const(3));
    let x2 = f.push1(e, Op::Bin(BinOp::Mul, f.param(1), two));
    let x2b = f.push1(e, Op::Bin(BinOp::Mul, f.param(1), two)); // redundant
    let t = f.push1(e, Op::Bin(BinOp::Add, x2, three));
    f.push0(e, Op::Store { addr: a, value: t });
    let five = f.push1(e, Op::Bin(BinOp::Add, two, three)); // folds to 5
    let zero = f.push1(e, Op::Const(0));
    f.push0(e, Op::Jmp(header));

    // Loop: acc += load(a) + x2b, i += 1 while i < p0.
    let i = f.push1(header, Op::Phi(vec![]));
    let acc = f.push1(header, Op::Phi(vec![]));
    let done = f.push1(header, Op::Cmp(CmpOp::Ge, i, f.param(0)));
    f.push0(
        header,
        Op::Br {
            cond: done,
            then_b: exit,
            else_b: body,
        },
    );
    let l = f.push1(body, Op::Load(a));
    let s1 = f.push1(body, Op::Bin(BinOp::Add, acc, l));
    let s2 = f.push1(body, Op::Bin(BinOp::Add, s1, x2b));
    let one = f.push1(body, Op::Const(1));
    let i2 = f.push1(body, Op::Bin(BinOp::Add, i, one));
    f.push0(body, Op::Jmp(header));

    let out = f.push1(exit, Op::Bin(BinOp::Add, acc, five));
    f.push0(exit, Op::Ret(vec![out]));

    // Patch φs.
    let mut patched = 0;
    for inst in &mut f.insts {
        if let Op::Phi(incs) = &mut inst.op {
            if patched == 0 {
                incs.push((e, zero));
                incs.push((body, i2));
            } else {
                incs.push((e, zero));
                incs.push((body, s2));
            }
            patched += 1;
        }
    }
    assert_eq!(patched, 2);
    let mut m = Module::default();
    m.add(f);
    m
}

fn run(m: &Module, p: i64, x: i64) -> i64 {
    let mut vm = LirMachine::new(m);
    vm.run_by_name("f", vec![p, x]).unwrap()[0]
}

#[test]
fn every_pass_preserves_behaviour() {
    let m0 = build();
    let cases = [(0i64, 0i64), (1, 5), (7, -3), (20, 11)];
    let expect: Vec<i64> = cases.iter().map(|&(p, x)| run(&m0, p, x)).collect();

    // Each pass alone.
    type PassFn = Box<dyn Fn(&mut Module)>;
    let passes: Vec<(&str, PassFn)> = vec![
        (
            "gvn",
            Box::new(|m| {
                lir::gvn(m);
            }),
        ),
        (
            "constfold",
            Box::new(|m| {
                lir::constfold(m);
            }),
        ),
        (
            "sink",
            Box::new(|m| {
                lir::sink(m);
            }),
        ),
        (
            "mem2reg",
            Box::new(|m| {
                lir::mem2reg(m);
            }),
        ),
        (
            "dce",
            Box::new(|m| {
                lir::dce(m);
            }),
        ),
    ];
    for (name, pass) in &passes {
        let mut m = m0.clone();
        pass(&mut m);
        for (k, &(p, x)) in cases.iter().enumerate() {
            assert_eq!(run(&m, p, x), expect[k], "{name} changed f({p},{x})");
        }
    }

    // The whole pipeline, twice.
    let mut m = m0.clone();
    for _ in 0..2 {
        lir::mem2reg(&mut m);
        lir::gvn(&mut m);
        lir::constfold(&mut m);
        lir::sink(&mut m);
        lir::dce(&mut m);
    }
    for (k, &(p, x)) in cases.iter().enumerate() {
        assert_eq!(run(&m, p, x), expect[k], "pipeline changed f({p},{x})");
    }
    // The pipeline did real work.
    assert!(m.inst_count() < m0.inst_count());
}

#[test]
fn gvn_counts_on_this_function() {
    let mut m = build();
    let stats = lir::gvn(&mut m);
    assert!(
        stats.replaced >= 1,
        "the duplicate multiply collapses: {stats:?}"
    );
    assert!(stats.memory_value_numbers >= 2, "{stats:?}");
}
