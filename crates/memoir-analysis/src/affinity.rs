//! Field affinity analysis: choosing field-elision candidates (§V).
//!
//! The paper selects fields for elision "via affinity analysis
//! [Chilimbi et al., Rubin et al.]": a field that is rarely accessed
//! together with its co-located fields wastes cache space and is a
//! candidate for migrating out of the object. This implementation computes
//! a static co-access affinity: for every pair of fields of an object type,
//! how often they are accessed in the same basic block, weighted by loop
//! depth (a static stand-in for the profile weights the cited work uses).

use memoir_ir::{Function, InstKind, Module, ObjTypeId};
use std::collections::{HashMap, HashSet};

/// Affinity statistics for one object type.
#[derive(Clone, Debug, Default)]
pub struct FieldAffinity {
    /// Weighted access count per field.
    pub access_weight: Vec<f64>,
    /// Weighted co-access count per field: accesses occurring in a block
    /// that also accesses *another* field of the same object type.
    pub co_access_weight: Vec<f64>,
}

impl FieldAffinity {
    /// Affinity of a field in `[0, 1]`: the fraction of its accesses that
    /// co-occur with accesses to sibling fields. Returns 1.0 for fields
    /// that are never accessed (they are dead-field, not elision,
    /// candidates).
    pub fn affinity(&self, field: usize) -> f64 {
        let a = self.access_weight.get(field).copied().unwrap_or(0.0);
        if a == 0.0 {
            return 1.0;
        }
        self.co_access_weight.get(field).copied().unwrap_or(0.0) / a
    }
}

/// Module-wide affinity analysis results.
#[derive(Clone, Debug, Default)]
pub struct Affinity {
    per_type: HashMap<ObjTypeId, FieldAffinity>,
}

impl Affinity {
    /// Computes affinities over all functions of a module.
    pub fn compute(m: &Module) -> Self {
        let mut per_type: HashMap<ObjTypeId, FieldAffinity> = HashMap::new();
        for (ty, obj) in m.types.objects() {
            per_type.insert(
                ty,
                FieldAffinity {
                    access_weight: vec![0.0; obj.fields.len()],
                    co_access_weight: vec![0.0; obj.fields.len()],
                },
            );
        }
        for (_, f) in m.funcs.iter() {
            accumulate(f, &mut per_type);
        }
        Affinity { per_type }
    }

    /// Affinity data for an object type.
    pub fn for_type(&self, ty: ObjTypeId) -> Option<&FieldAffinity> {
        self.per_type.get(&ty)
    }

    /// Fields of `ty` whose affinity is below `threshold`, which are
    /// accessed at least once, and which are *cold* relative to the
    /// type's hottest field — the elision candidates of §V (eliding a hot
    /// field would trade its inline locality for collection indirection
    /// on the hot path, the regression the paper observes for FE alone).
    pub fn elision_candidates(&self, ty: ObjTypeId, threshold: f64) -> Vec<u32> {
        const HOTNESS_CUTOFF: f64 = 0.5;
        let Some(fa) = self.per_type.get(&ty) else {
            return Vec::new();
        };
        let max_w = fa.access_weight.iter().copied().fold(0.0f64, f64::max);
        (0..fa.access_weight.len())
            .filter(|&i| {
                let w = fa.access_weight[i];
                w > 0.0 && fa.affinity(i) < threshold && w <= HOTNESS_CUTOFF * max_w
            })
            .map(|i| i as u32)
            .collect()
    }
}

fn accumulate(f: &Function, per_type: &mut HashMap<ObjTypeId, FieldAffinity>) {
    let depths = crate::dominators::natural_loop_depths(f);
    for (b, block) in f.blocks.iter() {
        let w = 10f64.powi(*depths.get(&b).unwrap_or(&0) as i32);
        // Collect the set of (type, field) accessed in this block.
        let mut accessed: HashMap<ObjTypeId, HashSet<u32>> = HashMap::new();
        let mut counts: HashMap<(ObjTypeId, u32), f64> = HashMap::new();
        for &i in &block.insts {
            if let InstKind::FieldRead { obj_ty, field, .. }
            | InstKind::FieldWrite { obj_ty, field, .. } = &f.insts[i].kind
            {
                accessed.entry(*obj_ty).or_default().insert(*field);
                *counts.entry((*obj_ty, *field)).or_insert(0.0) += w;
            }
        }
        for ((ty, field), c) in counts {
            if let Some(fa) = per_type.get_mut(&ty) {
                fa.access_weight[field as usize] += c;
                let siblings = &accessed[&ty];
                if siblings.len() > 1 {
                    fa.co_access_weight[field as usize] += c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{CmpOp, Field, Form, ModuleBuilder, Type};

    /// An object with a hot field `a` (accessed in a loop, alone) and a
    /// cold co-accessed pair `b`,`c`.
    fn build() -> (memoir_ir::Module, ObjTypeId) {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "node",
                vec![
                    Field {
                        name: "a".into(),
                        ty: i64t,
                    },
                    Field {
                        name: "b".into(),
                        ty: i64t,
                    },
                    Field {
                        name: "c".into(),
                        ty: i64t,
                    },
                ],
            )
            .unwrap();
        mb.func("f", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            // Cold block: b and c together.
            let vb = b.field_read(o, obj, 1);
            b.field_write(o, obj, 2, vb);
            // Hot loop: only a.
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, n);
            b.branch(done, exit, body);
            b.switch_to(body);
            let va = b.field_read(o, obj, 0);
            b.field_write(o, obj, 0, va);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            b.ret(vec![]);
        });
        (mb.finish(), obj)
    }

    #[test]
    fn lone_field_has_low_affinity() {
        let (m, obj) = build();
        let aff = Affinity::compute(&m);
        let fa = aff.for_type(obj).unwrap();
        // `a` is accessed alone: affinity 0.
        assert_eq!(fa.affinity(0), 0.0);
        // `b` and `c` are always co-accessed: affinity 1.
        assert_eq!(fa.affinity(1), 1.0);
        assert_eq!(fa.affinity(2), 1.0);
    }

    #[test]
    fn loop_weighting_dominates() {
        let (m, obj) = build();
        let aff = Affinity::compute(&m);
        let fa = aff.for_type(obj).unwrap();
        // Loop accesses weigh 10×: `a` outweighs `b`.
        assert!(fa.access_weight[0] > fa.access_weight[1]);
    }

    #[test]
    fn candidates_respect_threshold_and_hotness() {
        let (m, obj) = build();
        let aff = Affinity::compute(&m);
        // `a` is a loner (affinity 0) but the *hottest* field: eliding it
        // would put the hot path behind a collection — not a candidate.
        assert!(aff.elision_candidates(obj, 0.5).is_empty());
        // A cold loner qualifies: extend the module with one.
        let mut m2 = m.clone();
        let i64t = m2.types.intern(memoir_ir::Type::I64);
        m2.types
            .set_fields(obj, {
                let mut fs = m2.types.object(obj).fields.clone();
                fs.push(memoir_ir::Field {
                    name: "cold".into(),
                    ty: i64t,
                });
                fs
            })
            .unwrap();
        // Access `cold` once, alone, in its own (cold) block.
        let fid = m2.func_by_name("f").unwrap();
        let f = &mut m2.funcs[fid];
        // The object ref is the first instruction's result.
        let (_, first) = f.inst_ids_in_order()[0];
        let oref = f.insts[first].results[0];
        let cold_block = f.add_block("cold");
        f.append_inst(
            cold_block,
            memoir_ir::InstKind::FieldRead {
                obj: oref,
                obj_ty: obj,
                field: 3,
            },
            &[i64t],
        );
        f.append_inst(cold_block, memoir_ir::InstKind::Ret { values: vec![] }, &[]);
        let aff2 = Affinity::compute(&m2);
        assert_eq!(aff2.elision_candidates(obj, 0.5), vec![3]);
    }

    #[test]
    fn unaccessed_field_is_not_a_candidate() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t",
                vec![Field {
                    name: "dead".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        mb.func("f", Form::Mut, |b| b.ret(vec![]));
        let m = mb.finish();
        let aff = Affinity::compute(&m);
        assert!(aff.elision_candidates(obj, 0.9).is_empty());
        assert_eq!(aff.for_type(obj).unwrap().affinity(0), 1.0);
    }
}
