//! Adapters exposing this crate's analyses to the `passman`
//! [`AnalysisManager`](passman::AnalysisManager).
//!
//! Each marker type implements [`passman::Analysis`] (per-function) or
//! [`passman::ModuleAnalysis`] (module-wide), so passes request results
//! with `am.get::<CachedDomTree>(m, fid)` instead of recomputing them.
//! Results are cached until a pass declares it mutated the function —
//! "analyses as first-class cached artifacts shared across rewrites".

use crate::{Affinity, CallGraph, DefUse, DomTree, EscapeAnalysis, Liveness, Purity, TypeEscape};
use memoir_ir::{BlockId, FuncId, Module};
use passman::{Analysis, ModuleAnalysis};
use std::collections::HashMap;

/// Cached sparse def-use chains ([`DefUse`]).
#[derive(Debug)]
pub struct CachedDefUse;

impl Analysis<Module> for CachedDefUse {
    type Output = DefUse;
    const NAME: &'static str = "def-use";
    fn compute(m: &Module, f: FuncId) -> DefUse {
        DefUse::compute(&m.funcs[f])
    }
}

/// Cached dominator tree ([`DomTree`]).
#[derive(Debug)]
pub struct CachedDomTree;

impl Analysis<Module> for CachedDomTree {
    type Output = DomTree;
    const NAME: &'static str = "dom-tree";
    fn compute(m: &Module, f: FuncId) -> DomTree {
        DomTree::compute(&m.funcs[f])
    }
}

/// Cached natural-loop nesting depths per block
/// ([`natural_loop_depths`](crate::dominators::natural_loop_depths)).
#[derive(Debug)]
pub struct CachedLoopDepths;

impl Analysis<Module> for CachedLoopDepths {
    type Output = HashMap<BlockId, u32>;
    const NAME: &'static str = "loop-depths";
    fn compute(m: &Module, f: FuncId) -> HashMap<BlockId, u32> {
        crate::dominators::natural_loop_depths(&m.funcs[f])
    }
}

/// Cached scalar SSA liveness ([`Liveness`]).
#[derive(Debug)]
pub struct CachedLiveness;

impl Analysis<Module> for CachedLiveness {
    type Output = Liveness;
    const NAME: &'static str = "liveness";
    fn compute(m: &Module, f: FuncId) -> Liveness {
        Liveness::compute(&m.funcs[f])
    }
}

/// Cached allocation-site escape analysis ([`EscapeAnalysis`]).
#[derive(Debug)]
pub struct CachedEscape;

impl Analysis<Module> for CachedEscape {
    type Output = EscapeAnalysis;
    const NAME: &'static str = "escape";
    fn compute(m: &Module, f: FuncId) -> EscapeAnalysis {
        EscapeAnalysis::compute(m, &m.funcs[f])
    }
}

/// Cached module-wide field affinity ([`Affinity`]).
#[derive(Debug)]
pub struct CachedAffinity;

impl ModuleAnalysis<Module> for CachedAffinity {
    type Output = Affinity;
    const NAME: &'static str = "affinity";
    fn compute(m: &Module) -> Affinity {
        Affinity::compute(m)
    }
}

/// Cached module-wide call graph ([`CallGraph`]).
#[derive(Debug)]
pub struct CachedCallGraph;

impl ModuleAnalysis<Module> for CachedCallGraph {
    type Output = CallGraph;
    const NAME: &'static str = "call-graph";
    fn compute(m: &Module) -> CallGraph {
        CallGraph::compute(m)
    }
}

/// Cached module-wide purity / effect summaries ([`Purity`]).
#[derive(Debug)]
pub struct CachedPurity;

impl ModuleAnalysis<Module> for CachedPurity {
    type Output = Purity;
    const NAME: &'static str = "purity";
    fn compute(m: &Module) -> Purity {
        Purity::compute(m, &CallGraph::compute(m))
    }
}

/// Cached module-wide type escape ([`TypeEscape`]): which object types
/// reach unknown code and so must keep their layout.
#[derive(Debug)]
pub struct CachedTypeEscape;

impl ModuleAnalysis<Module> for CachedTypeEscape {
    type Output = TypeEscape;
    const NAME: &'static str = "type-escape";
    fn compute(m: &Module) -> TypeEscape {
        TypeEscape::compute(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};
    use passman::AnalysisManager;

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let y = b.add(x, x);
            b.returns(&[i64t]);
            b.ret(vec![y]);
        });
        mb.finish()
    }

    #[test]
    fn per_function_analyses_cache_and_invalidate() {
        let m = sample();
        let fid = m.func_by_name("f").unwrap();
        let mut am: AnalysisManager<Module> = AnalysisManager::new();

        let du1 = am.get::<CachedDefUse>(&m, fid);
        let du2 = am.get::<CachedDefUse>(&m, fid);
        assert!(
            std::rc::Rc::ptr_eq(&du1, &du2),
            "second request is the cached Rc"
        );
        let c = am.counter("def-use");
        assert_eq!((c.hits, c.misses), (1, 1));

        let _ = am.get::<CachedDomTree>(&m, fid);
        am.invalidate(fid);
        let _ = am.get::<CachedDomTree>(&m, fid);
        let c = am.counter("dom-tree");
        assert_eq!((c.hits, c.misses), (0, 2));
        assert_eq!(c.max_computes_between_invalidations, 1);
    }

    /// Pins the callgraph-edge audit gap: a `Mutation::Funcs`-scoped
    /// pass that edits a *callee* names only the callee in its mutation
    /// declaration, yet the *caller's* cached per-function analyses must
    /// drop too — the caller's fingerprint folds in the callee's, so the
    /// lazy refresh sees both change. Unrelated functions keep their
    /// entries (the retention the fingerprint layer exists for).
    #[test]
    fn callee_edit_invalidates_callers_cached_analyses() {
        use memoir_ir::{Callee, Constant, FunctionBuilder, ValueDef};

        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new(&mut m.types, "callee", Form::Ssa);
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        b.returns(&[i64t]);
        let c = b.i64(10);
        let s = b.add(x, c);
        b.ret(vec![s]);
        let callee = {
            let f = b.finish();
            m.add_func(f)
        };
        let mut b = FunctionBuilder::new(&mut m.types, "caller", Form::Ssa);
        let i64t = b.ty(Type::I64);
        let y = b.param("y", i64t);
        b.returns(&[i64t]);
        let rets = b.call(Callee::Func(callee), vec![y], &[i64t]);
        b.ret(vec![rets[0]]);
        let caller = {
            let f = b.finish();
            m.add_func(f)
        };
        let mut b = FunctionBuilder::new(&mut m.types, "leaf", Form::Ssa);
        let i64t = b.ty(Type::I64);
        let z = b.param("z", i64t);
        b.returns(&[i64t]);
        let c = b.i64(3);
        let s = b.add(z, c);
        b.ret(vec![s]);
        let leaf = {
            let f = b.finish();
            m.add_func(f)
        };

        let mut am: AnalysisManager<Module> = AnalysisManager::new();
        for fid in [callee, caller, leaf] {
            let _ = am.get::<CachedDefUse>(&m, fid);
        }
        assert_eq!(am.counter("def-use").misses, 3);

        // A Funcs-scoped pass edits the callee's body (bump a constant)
        // and declares only the callee mutated.
        let f = &mut m.funcs[callee];
        let vid = f
            .values
            .ids()
            .find(|&v| {
                matches!(
                    f.values[v].def,
                    ValueDef::Const(Constant::Int(Type::I64, _))
                )
            })
            .expect("callee has an i64 constant");
        f.values[vid].def = ValueDef::Const(Constant::Int(Type::I64, 11));
        am.note_mutation(&m, &passman::Mutation::Funcs(vec![callee]));

        // The unrelated leaf's entry survives the refresh …
        let _ = am.get::<CachedDefUse>(&m, leaf);
        let c = am.counter("def-use");
        assert_eq!((c.hits, c.misses), (1, 3), "leaf entry must be retained");
        // … while both the callee *and its caller* recompute.
        let _ = am.get::<CachedDefUse>(&m, callee);
        let _ = am.get::<CachedDefUse>(&m, caller);
        let c = am.counter("def-use");
        assert_eq!(
            (c.hits, c.misses),
            (1, 5),
            "callee edit must drop the caller's entry via fingerprint propagation"
        );
        let fps = am.fingerprint_stats();
        assert!(fps.retained >= 1, "{fps:?}");
        assert!(fps.dropped >= 2, "{fps:?}");
    }

    #[test]
    fn module_analyses_cache_until_any_invalidation() {
        let m = sample();
        let fid = m.func_by_name("f").unwrap();
        let mut am: AnalysisManager<Module> = AnalysisManager::new();
        let _ = am.get_module::<CachedAffinity>(&m);
        let _ = am.get_module::<CachedAffinity>(&m);
        assert_eq!(am.counter("affinity").hits, 1);
        am.invalidate(fid);
        let _ = am.get_module::<CachedAffinity>(&m);
        assert_eq!(am.counter("affinity").misses, 2);
    }
}
