//! Call graph construction and recursion groups.

use crate::scc::tarjan_scc;
use memoir_ir::{Callee, FuncId, InstId, InstKind, Module};
use std::collections::{HashMap, HashSet};

/// A call site: caller function and the call instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallSite {
    /// Calling function.
    pub caller: FuncId,
    /// The call instruction inside the caller.
    pub inst: InstId,
}

/// The module call graph.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Direct callees of each function (module functions only).
    pub callees: HashMap<FuncId, Vec<FuncId>>,
    /// Call sites targeting each function.
    pub callers: HashMap<FuncId, Vec<CallSite>>,
    /// Functions that call at least one extern with unknown effects.
    pub calls_opaque: HashSet<FuncId>,
    /// Strongly-connected components in reverse topological order
    /// (leaves first). Functions in a component of size > 1 (or with a
    /// self-edge) are (mutually) recursive.
    pub sccs: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of a module.
    pub fn compute(m: &Module) -> Self {
        let n = m.funcs.len();
        let mut callees: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
        let mut callers: HashMap<FuncId, Vec<CallSite>> = HashMap::new();
        let mut calls_opaque = HashSet::new();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];

        for (fid, f) in m.funcs.iter() {
            let entry = callees.entry(fid).or_default();
            for (_, i) in f.inst_ids_in_order() {
                if let InstKind::Call { callee, .. } = &f.insts[i].kind {
                    match callee {
                        Callee::Func(target) => {
                            entry.push(*target);
                            adj[fid.index()].push(target.index());
                            callers.entry(*target).or_default().push(CallSite {
                                caller: fid,
                                inst: i,
                            });
                        }
                        Callee::Extern(eid) => {
                            if m.externs[*eid].effects.opaque {
                                calls_opaque.insert(fid);
                            }
                        }
                    }
                }
            }
        }
        let sccs = tarjan_scc(&adj)
            .into_iter()
            .map(|comp| {
                comp.into_iter()
                    .map(|i| FuncId::from_raw(i as u32))
                    .collect()
            })
            .collect();
        CallGraph {
            callees,
            callers,
            calls_opaque,
            sccs,
        }
    }

    /// Whether a function is directly or mutually recursive.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        for comp in &self.sccs {
            if comp.contains(&f) {
                return comp.len() > 1 || self.callees.get(&f).is_some_and(|c| c.contains(&f));
            }
        }
        false
    }

    /// Call sites of a function.
    pub fn call_sites_of(&self, f: FuncId) -> &[CallSite] {
        self.callers.get(&f).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, Function, ModuleBuilder};

    fn call_module() -> memoir_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        // qsort (self-recursive), master calls qsort.
        let qsort_sig = Function::new("qsort", Form::Ssa);
        let qsort_id = mb.module.add_func(qsort_sig);
        {
            let f = &mut mb.module.funcs[qsort_id];
            let entry = f.entry;
            f.append_inst(
                entry,
                InstKind::Call {
                    callee: Callee::Func(qsort_id),
                    args: vec![],
                },
                &[],
            );
            f.append_inst(entry, InstKind::Ret { values: vec![] }, &[]);
        }
        mb.func("master", Form::Ssa, |b| {
            b.call(Callee::Func(qsort_id), vec![], &[]);
            b.ret(vec![]);
        });
        mb.finish()
    }

    #[test]
    fn recursion_detected() {
        let m = call_module();
        let cg = CallGraph::compute(&m);
        let qsort = m.func_by_name("qsort").unwrap();
        let master = m.func_by_name("master").unwrap();
        assert!(cg.is_recursive(qsort));
        assert!(!cg.is_recursive(master));
        assert_eq!(cg.call_sites_of(qsort).len(), 2); // self + master
    }

    #[test]
    fn scc_order_is_leaves_first() {
        let m = call_module();
        let cg = CallGraph::compute(&m);
        let qsort = m.func_by_name("qsort").unwrap();
        // qsort (leaf SCC) must come before master.
        assert!(cg.sccs[0].contains(&qsort));
    }
}
