//! Def-use chains over a function.
//!
//! MEMOIR's SSA form makes element-level data flow sparse: every collection
//! update defines a fresh value, so following the uses of a collection
//! variable enumerates exactly the operations that can observe it (§IV).

use memoir_ir::{Function, InstId, ValueId};
use std::collections::HashMap;

/// A single use of a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Use {
    /// The using instruction.
    pub inst: InstId,
    /// Position among the instruction's operands (in
    /// [`memoir_ir::InstKind::operands`] order).
    pub operand_index: usize,
}

/// Def-use chains for every value in a function.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    uses: HashMap<ValueId, Vec<Use>>,
}

impl DefUse {
    /// Computes def-use chains for all reachable instructions.
    pub fn compute(f: &Function) -> Self {
        let mut uses: HashMap<ValueId, Vec<Use>> = HashMap::new();
        for (_, inst) in f.inst_ids_in_order() {
            let mut idx = 0;
            f.insts[inst].kind.visit_operands(|&v| {
                uses.entry(v).or_default().push(Use {
                    inst,
                    operand_index: idx,
                });
                idx += 1;
            });
        }
        DefUse { uses }
    }

    /// Uses of a value (empty slice if unused).
    pub fn uses(&self, v: ValueId) -> &[Use] {
        self.uses.get(&v).map(|u| u.as_slice()).unwrap_or(&[])
    }

    /// Whether a value has no uses.
    pub fn is_unused(&self, v: ValueId) -> bool {
        self.uses(v).is_empty()
    }

    /// Number of uses of a value.
    pub fn use_count(&self, v: ValueId) -> usize {
        self.uses(v).len()
    }

    /// Iterates all `(value, uses)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &[Use])> {
        self.uses.iter().map(|(&v, u)| (v, u.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn counts_uses() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let y = b.add(x, x); // two uses of x
            let z = b.mul(y, x); // one more use of x, one of y
            probe = Some((x, y, z));
            b.returns(&[i64t]);
            b.ret(vec![z]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let du = DefUse::compute(f);
        let (x, y, z) = probe.unwrap();
        assert_eq!(du.use_count(x), 3);
        assert_eq!(du.use_count(y), 1);
        assert_eq!(du.use_count(z), 1); // the ret
        assert!(!du.is_unused(z));
    }

    #[test]
    fn collection_chain_is_sparse() {
        let mut mb = ModuleBuilder::new("m");
        let mut seqs = Vec::new();
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.index(1);
            let v = b.i64(7);
            let s1 = b.write(s0, zero, v);
            let s2 = b.write(s1, one, v);
            seqs.extend([s0, s1, s2]);
            let r = b.read(s2, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let du = DefUse::compute(f);
        // Each SSA collection version is used exactly once: the def-use
        // chain is a straight line (the paper's sparseness property).
        assert_eq!(du.use_count(seqs[0]), 1);
        assert_eq!(du.use_count(seqs[1]), 1);
        assert_eq!(du.use_count(seqs[2]), 1);
    }
}
