//! Dominator tree construction (Cooper–Harvey–Kennedy).
//!
//! The MEMOIR SSA construction (§VI) inserts φs on the dominance frontier
//! and renames along a depth-first traversal of the dominator tree, exactly
//! like scalar SSA construction.

use memoir_ir::{BlockId, Function};
use std::collections::HashMap;

/// A dominator tree over the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each reachable block (the entry maps to
    /// itself).
    pub idom: HashMap<BlockId, BlockId>,
    /// Children in the dominator tree.
    pub children: HashMap<BlockId, Vec<BlockId>>,
    /// Reverse post-order of reachable blocks.
    pub rpo: Vec<BlockId>,
    rpo_index: HashMap<BlockId, usize>,
}

impl DomTree {
    /// Computes the dominator tree of `f` using the Cooper–Harvey–Kennedy
    /// iterative algorithm over reverse post-order.
    pub fn compute(f: &Function) -> Self {
        let rpo = f.reverse_postorder();
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let preds = f.predecessors();

        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry, f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b] {
                    if !idom.contains_key(&p) {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, &d) in &idom {
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        for kids in children.values_mut() {
            kids.sort();
        }
        DomTree {
            idom,
            children,
            rpo,
            rpo_index,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether a block is reachable from entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom.contains_key(&b)
    }

    /// Pre-order depth-first traversal of the dominator tree.
    pub fn preorder(&self, entry: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            if let Some(kids) = self.children.get(&b) {
                for &k in kids.iter().rev() {
                    stack.push(k);
                }
            }
        }
        out
    }

    /// Computes dominance frontiers (Cytron et al.): `DF(b)` is the set of
    /// blocks where `b`'s dominance ends — the φ-insertion points.
    pub fn dominance_frontiers(&self, f: &Function) -> HashMap<BlockId, Vec<BlockId>> {
        let preds = f.predecessors();
        let mut df: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &self.rpo {
            if preds[b].len() >= 2 {
                for &p in &preds[b] {
                    if !self.is_reachable(p) {
                        continue;
                    }
                    let mut runner = p;
                    while runner != self.idom[&b] {
                        let entry = df.entry(runner).or_default();
                        if !entry.contains(&b) {
                            entry.push(b);
                        }
                        if runner == self.idom[&runner] {
                            break; // reached entry
                        }
                        runner = self.idom[&runner];
                    }
                }
            }
        }
        df
    }

    /// The reverse post-order index of a block (entry is 0).
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index.get(&b).copied()
    }
}

/// Natural-loop nesting depth per block: for every back edge `u → h`
/// (where `h` dominates `u`), the loop body is `h` plus every block that
/// reaches `u` over predecessors without passing through `h`; a block's
/// depth is the number of such loops containing it.
pub fn natural_loop_depths(f: &Function) -> HashMap<BlockId, u32> {
    let dt = DomTree::compute(f);
    let preds = f.predecessors();
    let mut depth: HashMap<BlockId, u32> = dt.rpo.iter().map(|&b| (b, 0)).collect();
    for &u in &dt.rpo {
        for h in f.successors(u) {
            if !dt.dominates(h, u) {
                continue; // not a back edge
            }
            // Collect the natural loop of (u → h).
            let mut body: Vec<BlockId> = vec![h];
            let mut stack = vec![u];
            while let Some(b) = stack.pop() {
                if body.contains(&b) {
                    continue;
                }
                body.push(b);
                for &p in &preds[b] {
                    stack.push(p);
                }
            }
            for b in body {
                *depth.entry(b).or_insert(0) += 1;
            }
        }
    }
    depth
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder};

    /// Diamond CFG: entry → {then, else} → join.
    fn diamond() -> (memoir_ir::Module, Vec<BlockId>) {
        let mut mb = ModuleBuilder::new("m");
        let mut ids = Vec::new();
        mb.func("f", Form::Ssa, |b| {
            let then_b = b.block("then");
            let else_b = b.block("else");
            let join = b.block("join");
            ids.extend([b.func.entry, then_b, else_b, join]);
            let c = b.bool(true);
            b.branch(c, then_b, else_b);
            b.switch_to(then_b);
            b.jump(join);
            b.switch_to(else_b);
            b.jump(join);
            b.switch_to(join);
            b.ret(vec![]);
        });
        (mb.finish(), ids)
    }

    #[test]
    fn diamond_idoms() {
        let (m, ids) = diamond();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let dt = DomTree::compute(f);
        let [entry, then_b, else_b, join] = [ids[0], ids[1], ids[2], ids[3]];
        assert_eq!(dt.idom[&then_b], entry);
        assert_eq!(dt.idom[&else_b], entry);
        assert_eq!(dt.idom[&join], entry);
        assert!(dt.dominates(entry, join));
        assert!(!dt.dominates(then_b, join));
        assert!(dt.dominates(join, join));
    }

    #[test]
    fn diamond_frontiers() {
        let (m, ids) = diamond();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let dt = DomTree::compute(f);
        let df = dt.dominance_frontiers(f);
        let [_, then_b, else_b, join] = [ids[0], ids[1], ids[2], ids[3]];
        assert_eq!(df[&then_b], vec![join]);
        assert_eq!(df[&else_b], vec![join]);
        assert!(!df.contains_key(&join));
    }

    #[test]
    fn loop_header_in_own_frontier() {
        let mut mb = ModuleBuilder::new("m");
        let mut blocks = Vec::new();
        mb.func("g", Form::Ssa, |b| {
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            blocks.extend([b.func.entry, header, body, exit]);
            b.jump(header);
            b.switch_to(header);
            let c = b.bool(true);
            b.branch(c, exit, body);
            b.switch_to(body);
            b.jump(header);
            b.switch_to(exit);
            b.ret(vec![]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("g").unwrap()];
        let dt = DomTree::compute(f);
        let df = dt.dominance_frontiers(f);
        let header = blocks[1];
        let body = blocks[2];
        // The loop body's frontier is the header (back edge).
        assert_eq!(df[&body], vec![header]);
        // The header is in its own frontier.
        assert!(df.get(&header).is_some_and(|v| v.contains(&header)));
    }

    #[test]
    fn preorder_covers_tree() {
        let (m, _) = diamond();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let dt = DomTree::compute(f);
        let pre = dt.preorder(f.entry);
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], f.entry);
    }
}
