//! Escape analysis for heap/stack selection (§VI, Collection Lowering).
//!
//! The paper: *"If an escape analysis computed on a `new` operator indicates
//! that the collection or object is dead at all exit points of its
//! containing function, it will be allocated on the stack; otherwise it is
//! allocated on the heap."*
//!
//! MEMOIR's value semantics make collection escape nearly syntactic: a
//! collection cannot be aliased, so it escapes only by being returned (or
//! spliced into a collection that is itself returned). Object references,
//! by contrast, are first-class and escape through field writes, element
//! stores, returns, and opaque calls.

use memoir_ir::{Callee, Function, InstId, InstKind, Module, ObjTypeId, Type, TypeId, ValueId};
use std::collections::{HashMap, HashSet};

/// Verdict for one allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The allocation is dead at every exit: stack storage is legal.
    Stack,
    /// The allocation may outlive the function: heap storage required.
    Heap,
}

/// Escape/placement verdicts for every allocation site of a function.
#[derive(Clone, Debug)]
pub struct EscapeAnalysis {
    /// Placement per allocating instruction (`new Seq`, `new Assoc`,
    /// `new T`, `copy`, `split`, `keys`).
    pub placements: HashMap<InstId, Placement>,
}

impl EscapeAnalysis {
    /// Analyzes one (mut-form or SSA-form) function.
    pub fn compute(m: &Module, f: &Function) -> Self {
        // escaped: set of values known to escape; grow to fixed point.
        let mut escaped: HashSet<ValueId> = HashSet::new();
        let insts = f.inst_ids_in_order();

        let mut changed = true;
        while changed {
            changed = false;
            for &(_, i) in &insts {
                let inst = &f.insts[i];
                let mark = |v: ValueId, escaped: &mut HashSet<ValueId>| escaped.insert(v);
                // SSA chains and copies propagate escape backwards: if the
                // result escapes, the source's storage may be reused by
                // destruction, so treat it as escaping too.
                if let InstKind::Write { c, .. }
                | InstKind::Rmw { c, .. }
                | InstKind::Insert { c, .. }
                | InstKind::Remove { c, .. }
                | InstKind::RemoveRange { c, .. }
                | InstKind::Swap { c, .. }
                | InstKind::UsePhi { c }
                | InstKind::InsertSeq { c, .. } = &inst.kind
                {
                    if inst.results.first().is_some_and(|r| escaped.contains(r))
                        && !escaped.contains(c)
                    {
                        escaped.insert(*c);
                        changed = true;
                    }
                }
                match &inst.kind {
                    // Returning a value escapes it.
                    InstKind::Ret { values } => {
                        for &v in values {
                            changed |= mark(v, &mut escaped);
                        }
                    }
                    // Storing an object reference anywhere escapes the
                    // object (references are first-class).
                    InstKind::FieldWrite { value, .. } => {
                        changed |= mark(*value, &mut escaped);
                    }
                    InstKind::Write { value, .. }
                    | InstKind::MutWrite { value, .. }
                    | InstKind::Rmw { value, .. }
                    | InstKind::MutRmw { value, .. } => {
                        changed |= mark(*value, &mut escaped);
                    }
                    InstKind::Insert { value: Some(v), .. }
                    | InstKind::MutInsert { value: Some(v), .. } => {
                        changed |= mark(*v, &mut escaped);
                    }
                    InstKind::Phi { incoming }
                        if inst.results.first().is_some_and(|r| escaped.contains(r)) =>
                    {
                        for (_, v) in incoming {
                            changed |= mark(*v, &mut escaped);
                        }
                    }
                    // Calls: by-ref args do not escape (value semantics);
                    // object references passed to opaque externs escape.
                    InstKind::Call { callee, args } => {
                        let opaque = match callee {
                            Callee::Extern(e) => m.externs[*e].effects.opaque,
                            Callee::Func(_) => false,
                        };
                        if opaque {
                            for &a in args {
                                changed |= mark(a, &mut escaped);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        let mut placements = HashMap::new();
        for (_, i) in &insts {
            let inst = &f.insts[*i];
            let is_alloc = matches!(
                inst.kind,
                InstKind::NewSeq { .. }
                    | InstKind::NewAssoc { .. }
                    | InstKind::NewObj { .. }
                    | InstKind::Copy { .. }
                    | InstKind::CopyRange { .. }
                    | InstKind::MutSplit { .. }
                    | InstKind::Keys { .. }
            );
            if is_alloc {
                let esc = inst.results.iter().any(|r| escaped.contains(r));
                placements.insert(
                    *i,
                    if esc {
                        Placement::Heap
                    } else {
                        Placement::Stack
                    },
                );
            }
        }
        EscapeAnalysis { placements }
    }

    /// Placement of one allocation site.
    pub fn placement(&self, i: InstId) -> Option<Placement> {
        self.placements.get(&i).copied()
    }

    /// Number of stack-eligible allocation sites.
    pub fn stack_count(&self) -> usize {
        self.placements
            .values()
            .filter(|p| **p == Placement::Stack)
            .count()
    }
}

/// Module-wide type escape: which object types have references that reach
/// *unknown* code (externs that read their arguments, or are opaque).
///
/// Under partial compilation, unknown code may read any field of such a
/// type, so layout transformations (dead-field elimination, field
/// elision) must leave it untouched. The set is closed over reachability:
/// passing `&T` to an extern taints `T` and every type reachable through
/// `T`'s fields, element types, and key/value types.
#[derive(Clone, Debug, Default)]
pub struct TypeEscape {
    /// Object types whose references reach unknown code.
    pub escaping: HashSet<ObjTypeId>,
}

impl TypeEscape {
    /// Scans every extern call site of the module.
    pub fn compute(m: &Module) -> Self {
        let mut escaping = HashSet::new();
        for (_, f) in m.funcs.iter() {
            for (_, i) in f.inst_ids_in_order() {
                if let InstKind::Call {
                    callee: Callee::Extern(e),
                    args,
                } = &f.insts[i].kind
                {
                    let eff = m.externs[*e].effects;
                    if eff.reads_args || eff.opaque {
                        for &a in args {
                            mark_reachable_types(m, f.value_ty(a), &mut escaping);
                        }
                    }
                }
            }
        }
        TypeEscape { escaping }
    }

    /// Whether layout transformations must leave `ty` alone.
    pub fn escapes(&self, ty: ObjTypeId) -> bool {
        self.escaping.contains(&ty)
    }
}

fn mark_reachable_types(m: &Module, ty: TypeId, out: &mut HashSet<ObjTypeId>) {
    match m.types.get(ty) {
        Type::Ref(o) | Type::Object(o) if out.insert(o) => {
            for field in m.types.object(o).fields.clone() {
                mark_reachable_types(m, field.ty, out);
            }
        }
        Type::Seq(e) => mark_reachable_types(m, e, out),
        Type::Assoc(k, v) => {
            mark_reachable_types(m, k, out);
            mark_reachable_types(m, v, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn local_scratch_is_stack() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(8);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(1);
            b.mut_write(s, zero, v);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let esc = EscapeAnalysis::compute(&m, f);
        assert_eq!(esc.stack_count(), 1);
    }

    #[test]
    fn returned_collection_is_heap() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let n = b.index(8);
            let s = b.new_seq(i64t, n);
            b.returns(&[seqt]);
            b.ret(vec![s]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let esc = EscapeAnalysis::compute(&m, f);
        assert_eq!(esc.stack_count(), 0);
        assert!(esc.placements.values().all(|p| *p == Placement::Heap));
    }

    #[test]
    fn ssa_chain_propagates_escape_backwards() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let n = b.index(8);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(1);
            let s1 = b.write(s0, zero, v);
            b.returns(&[seqt]);
            b.ret(vec![s1]); // s1 escapes ⇒ s0's storage escapes
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let esc = EscapeAnalysis::compute(&m, f);
        assert_eq!(esc.stack_count(), 0);
    }

    #[test]
    fn object_stored_into_collection_escapes() {
        let mut mb = ModuleBuilder::new("m");
        let obj = mb.module.types.define_object("t0", vec![]).unwrap();
        mb.func("f", Form::Mut, |b| {
            let rt = b.ty(Type::Ref(obj));
            let seqt = b.types.seq_of(rt);
            let n = b.index(1);
            let s = b.new_seq(rt, n);
            let o = b.new_obj(obj);
            let zero = b.index(0);
            b.mut_write(s, zero, o);
            b.returns(&[seqt]);
            b.ret(vec![s]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let esc = EscapeAnalysis::compute(&m, f);
        // Both the sequence (returned) and the object (stored) are heap.
        assert_eq!(esc.stack_count(), 0);
        assert_eq!(esc.placements.len(), 2);
    }
}
