//! Expression trees (paper Def. 1) in a canonical affine form.
//!
//! Ranges of sequences are described by expression trees over constants,
//! SSA values, and the symbolic `end` (the sequence size). To make the
//! lattice operations of Defs. 4–5 structurally idempotent, expressions are
//! kept canonical:
//!
//! * affine combinations (`c + Σ coeffᵢ·termᵢ`) are flattened into
//!   [`Affine`] with sorted terms;
//! * `min`/`max` nodes are n-ary, flattened, sorted, and deduplicated;
//! * `Unknown` (⊤ in the widening direction) absorbs.
//!
//! The partial order of Def. 1 (`t₁ ⊑ t₂` iff `t₂` contains `t₁` as a
//! subtree) is exposed as [`Expr::contains`].

use memoir_ir::ValueId;
use std::collections::BTreeMap;
use std::fmt;

/// An atomic symbolic term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An SSA value of `index` (or integer) type in the analyzed function.
    Value(ValueId),
    /// The size of the sequence the range refers to (`end`).
    End,
    /// The lower bound of the caller's live range (the `%a` parameter that
    /// Alg. 2 materializes at specialization time).
    CallerLo,
    /// The upper bound of the caller's live range (`%b`).
    CallerHi,
}

/// A canonical affine expression: `konst + Σ coeff·term`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Affine {
    /// Constant part.
    pub konst: i64,
    /// Symbolic terms with non-zero coefficients, sorted by term.
    pub terms: BTreeMap<Term, i64>,
}

impl Affine {
    /// The constant affine expression.
    pub fn constant(c: i64) -> Self {
        Affine {
            konst: c,
            terms: BTreeMap::new(),
        }
    }

    /// A single symbolic term.
    pub fn term(t: Term) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(t, 1);
        Affine { konst: 0, terms }
    }

    /// Whether this is a pure constant.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.konst)
    }

    /// Sum of two affine expressions.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.konst += other.konst;
        for (&t, &c) in &other.terms {
            let e = out.terms.entry(t).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(&t);
            }
        }
        out
    }

    /// Negation.
    pub fn neg(&self) -> Affine {
        Affine {
            konst: -self.konst,
            terms: self.terms.iter().map(|(&t, &c)| (t, -c)).collect(),
        }
    }

    /// Adds a constant.
    pub fn offset(&self, c: i64) -> Affine {
        let mut out = self.clone();
        out.konst += c;
        out
    }

    /// `self - other` when both have identical symbolic parts; the constant
    /// difference if comparable.
    pub fn const_difference(&self, other: &Affine) -> Option<i64> {
        (self.terms == other.terms).then(|| self.konst - other.konst)
    }
}

/// A canonical expression tree.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// An affine combination of terms.
    Affine(Affine),
    /// n-ary minimum (sorted, deduplicated, flattened).
    Min(Vec<Expr>),
    /// n-ary maximum (sorted, deduplicated, flattened).
    Max(Vec<Expr>),
    /// Unknown (widens: as a lower bound it means 0, as an upper bound it
    /// means `end`).
    Unknown,
}

impl Expr {
    /// Constant expression.
    pub fn constant(c: i64) -> Expr {
        Expr::Affine(Affine::constant(c))
    }

    /// Value term.
    pub fn value(v: ValueId) -> Expr {
        Expr::Affine(Affine::term(Term::Value(v)))
    }

    /// The symbolic `end`.
    pub fn end() -> Expr {
        Expr::Affine(Affine::term(Term::End))
    }

    /// The caller live-range bounds.
    pub fn caller_lo() -> Expr {
        Expr::Affine(Affine::term(Term::CallerLo))
    }

    /// See [`Expr::caller_lo`].
    pub fn caller_hi() -> Expr {
        Expr::Affine(Affine::term(Term::CallerHi))
    }

    /// Whether this is exactly the constant `c`.
    pub fn is_const(&self, c: i64) -> bool {
        matches!(self, Expr::Affine(a) if a.as_const() == Some(c))
    }

    /// The constant value, if this is a pure constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Affine(a) => a.as_const(),
            _ => None,
        }
    }

    /// Whether this is exactly the symbolic `end`.
    pub fn is_end(&self) -> bool {
        matches!(self, Expr::Affine(a) if a.konst == 0
            && a.terms.len() == 1
            && a.terms.get(&Term::End) == Some(&1))
    }

    /// Adds an affine delta to the expression (distributes over min/max).
    pub fn add(&self, delta: &Affine) -> Expr {
        match self {
            Expr::Affine(a) => Expr::Affine(a.add(delta)),
            Expr::Min(es) => Expr::min_of(es.iter().map(|e| e.add(delta)).collect()),
            Expr::Max(es) => Expr::max_of(es.iter().map(|e| e.add(delta)).collect()),
            Expr::Unknown => Expr::Unknown,
        }
    }

    /// Adds a constant offset.
    pub fn offset(&self, c: i64) -> Expr {
        self.add(&Affine::constant(c))
    }

    /// Canonical n-ary minimum.
    pub fn min_of(es: Vec<Expr>) -> Expr {
        Self::fold_minmax(es, true)
    }

    /// Canonical n-ary maximum.
    pub fn max_of(es: Vec<Expr>) -> Expr {
        Self::fold_minmax(es, false)
    }

    /// Binary minimum.
    pub fn min2(a: Expr, b: Expr) -> Expr {
        Expr::min_of(vec![a, b])
    }

    /// Binary maximum.
    pub fn max2(a: Expr, b: Expr) -> Expr {
        Expr::max_of(vec![a, b])
    }

    fn fold_minmax(es: Vec<Expr>, is_min: bool) -> Expr {
        // Fully flatten nested same-kind nodes first, so every member —
        // constants included — goes through one collapse pass.
        let mut flat: Vec<Expr> = Vec::new();
        let mut stack = es;
        while let Some(e) = stack.pop() {
            match e {
                Expr::Unknown => return Expr::Unknown,
                Expr::Min(inner) if is_min => stack.extend(inner),
                Expr::Max(inner) if !is_min => stack.extend(inner),
                other => flat.push(other),
            }
        }
        flat.sort();
        // Comparable affine pairs collapse (same terms ⇒ keep the better
        // constant); pure constants are affines with no terms and collapse
        // the same way.
        let mut kept: Vec<Expr> = Vec::new();
        'outer: for e in flat {
            if let Expr::Affine(a) = &e {
                for k in kept.iter_mut() {
                    if let Expr::Affine(b) = k {
                        if let Some(diff) = a.const_difference(b) {
                            let take_new = if is_min { diff < 0 } else { diff > 0 };
                            if take_new {
                                *k = e.clone();
                            }
                            continue 'outer;
                        }
                    }
                }
            }
            kept.push(e);
        }
        kept.sort();
        kept.dedup();
        match kept.len() {
            0 => Expr::Unknown,
            1 => kept.pop().unwrap(),
            _ => {
                if is_min {
                    Expr::Min(kept)
                } else {
                    Expr::Max(kept)
                }
            }
        }
    }

    /// Def. 1 partial order: whether `sub` occurs as a subtree of `self`.
    pub fn contains(&self, sub: &Expr) -> bool {
        if self == sub {
            return true;
        }
        match self {
            Expr::Min(es) | Expr::Max(es) => es.iter().any(|e| e.contains(sub)),
            _ => false,
        }
    }

    /// All SSA values referenced by the expression.
    pub fn values(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        self.collect_values(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_values(&self, out: &mut Vec<ValueId>) {
        match self {
            Expr::Affine(a) => {
                for t in a.terms.keys() {
                    if let Term::Value(v) = t {
                        out.push(*v);
                    }
                }
            }
            Expr::Min(es) | Expr::Max(es) => {
                for e in es {
                    e.collect_values(out);
                }
            }
            Expr::Unknown => {}
        }
    }

    /// Whether the expression mentions the caller-context bounds.
    pub fn mentions_caller(&self) -> bool {
        match self {
            Expr::Affine(a) => {
                a.terms.contains_key(&Term::CallerLo) || a.terms.contains_key(&Term::CallerHi)
            }
            Expr::Min(es) | Expr::Max(es) => es.iter().any(Expr::mentions_caller),
            Expr::Unknown => false,
        }
    }

    /// Substitutes terms via the provided map, leaving unmapped terms
    /// intact. Used when importing a callee summary into a caller (ARGφ)
    /// or materializing caller bounds (Alg. 2).
    pub fn substitute(&self, map: &dyn Fn(Term) -> Option<Expr>) -> Expr {
        match self {
            Expr::Affine(a) => {
                let mut acc = Expr::constant(a.konst);
                for (&t, &coeff) in &a.terms {
                    let sub = map(t);
                    match sub {
                        Some(e) => {
                            // Only coefficient ±1 substitution of non-affine
                            // expressions is exact; other coefficients over
                            // min/max widen.
                            match (&e, coeff) {
                                (Expr::Affine(ae), _) => {
                                    let mut scaled = Affine {
                                        konst: ae.konst * coeff,
                                        ..Default::default()
                                    };
                                    for (&tt, &cc) in &ae.terms {
                                        scaled.terms.insert(tt, cc * coeff);
                                    }
                                    acc = acc.add_expr(&Expr::Affine(scaled));
                                }
                                (_, 1) => acc = acc.add_expr(&e),
                                _ => return Expr::Unknown,
                            }
                        }
                        None => {
                            let mut one = Affine::default();
                            one.terms.insert(t, coeff);
                            acc = acc.add_expr(&Expr::Affine(one));
                        }
                    }
                }
                acc
            }
            Expr::Min(es) => Expr::min_of(es.iter().map(|e| e.substitute(map)).collect()),
            Expr::Max(es) => Expr::max_of(es.iter().map(|e| e.substitute(map)).collect()),
            Expr::Unknown => Expr::Unknown,
        }
    }

    /// Adds another expression (exact only when at least one side is
    /// affine; otherwise widens to [`Expr::Unknown`]).
    pub fn add_expr(&self, other: &Expr) -> Expr {
        match (self, other) {
            (Expr::Affine(a), e) | (e, Expr::Affine(a)) => e.add(a),
            _ => Expr::Unknown,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Affine(a) => {
                let mut first = true;
                if a.konst != 0 || a.terms.is_empty() {
                    write!(f, "{}", a.konst)?;
                    first = false;
                }
                for (t, c) in &a.terms {
                    if !first {
                        write!(f, "{}", if *c >= 0 { " + " } else { " - " })?;
                    } else if *c < 0 {
                        write!(f, "-")?;
                    }
                    first = false;
                    let mag = c.abs();
                    if mag != 1 {
                        write!(f, "{mag}*")?;
                    }
                    match t {
                        Term::Value(v) => write!(f, "{v}")?,
                        Term::End => write!(f, "end")?,
                        Term::CallerLo => write!(f, "%a")?,
                        Term::CallerHi => write!(f, "%b")?,
                    }
                }
                Ok(())
            }
            Expr::Min(es) => {
                write!(f, "min(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Max(es) => {
                write!(f, "max(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Unknown => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> ValueId {
        ValueId::from_raw(n)
    }

    #[test]
    fn affine_arithmetic() {
        let a = Affine::term(Term::Value(v(1))).offset(3);
        let b = Affine::term(Term::Value(v(1))).neg();
        let sum = a.add(&b);
        assert_eq!(sum.as_const(), Some(3));
        assert_eq!(
            a.const_difference(&Affine::term(Term::Value(v(1)))),
            Some(3)
        );
        assert_eq!(a.const_difference(&Affine::term(Term::End)), None);
    }

    #[test]
    fn min_folds_constants() {
        let e = Expr::min_of(vec![Expr::constant(3), Expr::constant(7)]);
        assert!(e.is_const(3));
        let e = Expr::max_of(vec![Expr::constant(3), Expr::constant(7)]);
        assert!(e.is_const(7));
    }

    #[test]
    fn min_is_idempotent_and_commutative() {
        let x = Expr::value(v(5));
        let y = Expr::end();
        assert_eq!(Expr::min2(x.clone(), x.clone()), x);
        assert_eq!(Expr::min2(x.clone(), y.clone()), Expr::min2(y, x));
    }

    #[test]
    fn min_flattens_nested() {
        let x = Expr::value(v(1));
        let y = Expr::value(v(2));
        let z = Expr::value(v(3));
        let nested = Expr::min2(x.clone(), Expr::min2(y.clone(), z.clone()));
        let flat = Expr::min_of(vec![x, y, z]);
        assert_eq!(nested, flat);
    }

    #[test]
    fn comparable_affines_collapse() {
        let x = Expr::value(v(1));
        let x3 = x.offset(3);
        assert_eq!(Expr::min2(x.clone(), x3.clone()), x);
        assert_eq!(Expr::max2(x, x3.clone()), x3);
    }

    #[test]
    fn unknown_absorbs() {
        let x = Expr::value(v(1));
        assert_eq!(Expr::min2(x.clone(), Expr::Unknown), Expr::Unknown);
        assert_eq!(Expr::max2(Expr::Unknown, x), Expr::Unknown);
    }

    #[test]
    fn contains_subtree_order() {
        let x = Expr::value(v(1));
        let y = Expr::end();
        let m = Expr::min2(x.clone(), y.clone());
        assert!(m.contains(&x));
        assert!(m.contains(&y));
        assert!(m.contains(&m));
        assert!(!x.contains(&m));
    }

    #[test]
    fn add_distributes_over_min() {
        let x = Expr::value(v(1));
        let y = Expr::value(v(2));
        let m = Expr::min2(x.clone(), y.clone()).offset(4);
        assert_eq!(m, Expr::min2(x.offset(4), y.offset(4)));
    }

    #[test]
    fn substitution_maps_terms() {
        let e = Expr::caller_lo().offset(2);
        let sub = e.substitute(&|t| match t {
            Term::CallerLo => Some(Expr::constant(10)),
            _ => None,
        });
        assert!(sub.is_const(12));
        // Unmapped terms survive.
        let e2 = Expr::end().substitute(&|_| None);
        assert!(e2.is_end());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::min2(Expr::end(), Expr::value(v(2)).offset(1));
        let s = e.to_string();
        assert!(s.contains("min("), "{s}");
        assert!(s.contains("end"), "{s}");
    }

    #[test]
    fn values_collected() {
        let e = Expr::min2(Expr::value(v(3)), Expr::value(v(1)).offset(2));
        assert_eq!(e.values(), vec![v(1), v(3)]);
        assert!(!e.mentions_caller());
        assert!(Expr::caller_hi().mentions_caller());
    }
}
