//! Intraprocedural symbolic range analysis for index variables — the
//! `R(i)` input of Alg. 1 (the paper cites the non-iterative symbolic range
//! analyses of Teixeira/Pereira and Paisante et al.).
//!
//! `R(i)` maps an index-typed SSA value to a symbolic range `[lo : hi)`
//! over-approximating the values it takes. The analysis is pattern-based:
//!
//! * constants and *anchored* values (values computed without passing
//!   through a φ) are exact singletons `[v : v+1)`;
//! * loop-induction φs (`i = φ(init, i+c)`) are bounded by the loop's
//!   continue condition (`i' < bound`, `i' <= bound`, conjunctions take the
//!   tightest bound);
//! * `min`/`max`/`select` combine operand ranges;
//! * anything else widens to `[Unknown : Unknown)` (⇒ `[0 : end)`).
//!
//! Anchoring matters for soundness: a symbolic bound that names a
//! loop-variant value would denote a different range per iteration, so
//! loop-variant values may only appear through the recognized induction
//! pattern whose bounds are themselves anchored.

use crate::exprtree::Expr;
use crate::range::Range;
use memoir_ir::{BinOp, BlockId, CmpOp, Constant, Function, InstKind, ValueDef, ValueId};
use std::collections::HashMap;

/// Computed index ranges for one function.
#[derive(Debug)]
pub struct IndexRanges<'f> {
    f: &'f Function,
    cache: std::cell::RefCell<HashMap<ValueId, Range>>,
    anchored: std::cell::RefCell<HashMap<ValueId, bool>>,
}

impl<'f> IndexRanges<'f> {
    /// Creates the analysis for a function.
    pub fn new(f: &'f Function) -> Self {
        IndexRanges {
            f,
            cache: Default::default(),
            anchored: Default::default(),
        }
    }

    /// The range of values `v` may take, as a symbolic `[lo : hi)`.
    pub fn range_of(&self, v: ValueId) -> Range {
        if let Some(r) = self.cache.borrow().get(&v) {
            return r.clone();
        }
        // Seed with unknown to cut cycles (φ through itself).
        self.cache
            .borrow_mut()
            .insert(v, Range::new(Expr::Unknown, Expr::Unknown));
        let r = self.compute(v);
        self.cache.borrow_mut().insert(v, r.clone());
        r
    }

    /// Whether `v` is *anchored*: computable without reading any φ, hence
    /// loop-invariant and safe to reference symbolically.
    pub fn is_anchored(&self, v: ValueId) -> bool {
        if let Some(&a) = self.anchored.borrow().get(&v) {
            return a;
        }
        self.anchored.borrow_mut().insert(v, false); // cycle-cut
        let result = match &self.f.values[v].def {
            ValueDef::Param(_) | ValueDef::Const(_) => true,
            ValueDef::Inst(inst, _) => {
                let kind = &self.f.insts[*inst].kind;
                if kind.is_phi() {
                    false
                } else {
                    match kind {
                        // Reads and sizes of anchored collections anchor.
                        InstKind::Bin { .. }
                        | InstKind::Cmp { .. }
                        | InstKind::Cast { .. }
                        | InstKind::Select { .. }
                        | InstKind::Size { .. }
                        | InstKind::Read { .. } => {
                            let mut ok = true;
                            kind.visit_operands(|&op| ok &= self.is_anchored_inner(op));
                            ok
                        }
                        _ => false,
                    }
                }
            }
        };
        self.anchored.borrow_mut().insert(v, result);
        result
    }

    fn is_anchored_inner(&self, v: ValueId) -> bool {
        self.is_anchored(v)
    }

    fn compute(&self, v: ValueId) -> Range {
        let f = self.f;
        if let Some(c) = f.value_const(v) {
            if let Some(x) = c.as_int() {
                return Range::constant(x, x + 1);
            }
            return Range::new(Expr::Unknown, Expr::Unknown);
        }
        if self.is_anchored(v) {
            return Range::singleton(Expr::value(v));
        }
        let ValueDef::Inst(inst, _) = f.values[v].def else {
            return Range::new(Expr::Unknown, Expr::Unknown);
        };
        match &f.insts[inst].kind {
            InstKind::Bin { op, lhs, rhs } => {
                let (a, b) = (*lhs, *rhs);
                match op {
                    BinOp::Add => {
                        if let Some(c) = f.value_const(b).and_then(Constant::as_int) {
                            return self.range_of(a).shift_const(c);
                        }
                        if let Some(c) = f.value_const(a).and_then(Constant::as_int) {
                            return self.range_of(b).shift_const(c);
                        }
                        Range::new(Expr::Unknown, Expr::Unknown)
                    }
                    BinOp::Sub => {
                        if let Some(c) = f.value_const(b).and_then(Constant::as_int) {
                            return self.range_of(a).shift_const(-c);
                        }
                        Range::new(Expr::Unknown, Expr::Unknown)
                    }
                    BinOp::Min => {
                        // min(x, y) ≤ both: for the upper bound an unknown
                        // side can be dropped (the other still bounds the
                        // result); the lower bound needs both.
                        let (ra, rb) = (self.range_of(a), self.range_of(b));
                        let hi = prefer_known_min(ra.hi, rb.hi);
                        Range::new(Expr::min2(ra.lo, rb.lo), hi)
                    }
                    BinOp::Max => {
                        // max(x, y) ≥ both: dual of min.
                        let (ra, rb) = (self.range_of(a), self.range_of(b));
                        let lo = prefer_known_max(ra.lo, rb.lo);
                        Range::new(lo, Expr::max2(ra.hi, rb.hi))
                    }
                    BinOp::And => {
                        // x & mask with a non-negative constant mask lands
                        // in [0 : mask] regardless of x (hash-style key
                        // wrapping: `h & (N-1)` proves a dense key space).
                        let mask = f
                            .value_const(b)
                            .and_then(Constant::as_int)
                            .or_else(|| f.value_const(a).and_then(Constant::as_int));
                        match mask {
                            Some(m) if m >= 0 => Range::constant(0, m + 1),
                            _ => Range::new(Expr::Unknown, Expr::Unknown),
                        }
                    }
                    _ => Range::new(Expr::Unknown, Expr::Unknown),
                }
            }
            InstKind::Cast { value, .. } => self.range_of(*value),
            InstKind::Select {
                then_value,
                else_value,
                ..
            } => self.range_of(*then_value).join(&self.range_of(*else_value)),
            InstKind::Phi { incoming } => self.induction_range(v, inst, incoming),
            _ => Range::new(Expr::Unknown, Expr::Unknown),
        }
    }

    /// Recognizes `i = φ(init, i ± c)` bounded by a continue condition.
    fn induction_range(
        &self,
        phi_val: ValueId,
        phi_inst: memoir_ir::InstId,
        incoming: &[(BlockId, ValueId)],
    ) -> Range {
        if incoming.len() != 2 {
            return Range::new(Expr::Unknown, Expr::Unknown);
        }
        // Identify the update operand: `phi ± const`.
        let mut init: Option<ValueId> = None;
        let mut step: Option<(ValueId, i64, BlockId)> = None; // (update val, step, src block)
        for &(b, val) in incoming {
            if let Some(c) = self.step_from(phi_val, val) {
                step = Some((val, c, b));
            } else {
                init = Some(val);
            }
        }
        let (Some(init), Some((update_val, step_c, back_block))) = (init, step) else {
            return Range::new(Expr::Unknown, Expr::Unknown);
        };
        if step_c == 0 {
            return Range::new(Expr::Unknown, Expr::Unknown);
        }
        let init_range = if self.is_anchored(init) {
            self.range_of(init)
        } else {
            Range::new(Expr::Unknown, Expr::Unknown)
        };

        // Find the continue condition. Two shapes:
        //  (a) bottom-tested: the back-edge source block ends in
        //      `br cond, header, exit` — cond bounds the *updated* value;
        //  (b) header-tested: the φ's block ends in `br cond, A, B` where
        //      one target reaches the back edge — cond bounds the φ value
        //      inside the body.
        let phi_block = self.block_of(phi_inst);
        let mut bound: Option<Expr> = None; // exclusive upper bound (ascending)
        let mut lo_bound: Option<Expr> = None; // inclusive lower bound (descending)
        let mut header_tested = false;

        // Shape (a).
        if let Some(t) = self.f.terminator(back_block) {
            if let InstKind::Branch {
                cond, then_target, ..
            } = &self.f.insts[t].kind
            {
                if *then_target == phi_block {
                    self.bound_from_cond(*cond, update_val, step_c > 0, &mut bound, &mut lo_bound);
                }
            }
        }
        // Shape (b).
        if bound.is_none() && lo_bound.is_none() {
            if let Some(t) = self.f.terminator(phi_block) {
                if let InstKind::Branch {
                    cond,
                    then_target,
                    else_target,
                } = &self.f.insts[t].kind
                {
                    // The branch target that stays in the loop is the one
                    // from which the back edge block is reachable; we use a
                    // cheap test: the back-edge source equals the target or
                    // the target is not the φ block itself.
                    let continue_on_true = self.reaches(*then_target, back_block, phi_block);
                    let continue_on_false = self.reaches(*else_target, back_block, phi_block);
                    if continue_on_true != continue_on_false {
                        // The condition (or its negation) bounds the φ value
                        // in the body.
                        header_tested = true;
                        self.bound_from_guard(
                            *cond,
                            phi_val,
                            continue_on_true,
                            step_c > 0,
                            &mut bound,
                            &mut lo_bound,
                        );
                    }
                }
            }
        }

        // The φ denotes *every* value the variable takes, including the
        // exit value and the untested init:
        //
        //  * header-tested: the last value to reach the φ stepped from a
        //    value that passed the test, so it may exceed the in-body
        //    bound by one step (`i = n` is observed at the failing test,
        //    and may flow to uses after the loop);
        //  * bottom-tested: the bound constrains the *updated* value, so
        //    back-edge values respect it — but `init` itself is never
        //    tested and may lie entirely outside the bound.
        //
        // Both shapes therefore fold the (anchored) init range in, and
        // the header shape widens the bound by the step. An unknown init
        // range absorbs — claiming the tested bound alone would be
        // unsound.
        if step_c > 0 {
            let hi = match bound {
                Some(e) => {
                    let e = if header_tested { e.offset(step_c) } else { e };
                    Expr::max2(e, init_range.hi.clone())
                }
                None => Expr::Unknown,
            };
            Range::new(init_range.lo, hi)
        } else {
            let lo = match lo_bound {
                Some(e) => {
                    let e = if header_tested { e.offset(step_c) } else { e };
                    Expr::min2(e, init_range.lo.clone())
                }
                None => Expr::Unknown,
            };
            Range::new(lo, init_range.hi)
        }
    }

    /// If `val == phi + c` (syntactically), returns `c`.
    fn step_from(&self, phi_val: ValueId, val: ValueId) -> Option<i64> {
        let ValueDef::Inst(inst, _) = self.f.values[val].def else {
            return None;
        };
        if let InstKind::Bin { op, lhs, rhs } = &self.f.insts[inst].kind {
            let c_of = |x: ValueId| self.f.value_const(x).and_then(Constant::as_int);
            match op {
                BinOp::Add => {
                    if *lhs == phi_val {
                        return c_of(*rhs);
                    }
                    if *rhs == phi_val {
                        return c_of(*lhs);
                    }
                }
                BinOp::Sub if *lhs == phi_val => {
                    return c_of(*rhs).map(|c| -c);
                }
                _ => {}
            }
        }
        None
    }

    /// Extracts an upper/lower bound for `subject` from a continue
    /// condition that is true when the loop continues. For a bottom-tested
    /// loop, `subject` is the updated value `i + c`; the bound on the φ
    /// itself follows because every φ value except `init` passed the test.
    fn bound_from_cond(
        &self,
        cond: ValueId,
        subject: ValueId,
        ascending: bool,
        hi: &mut Option<Expr>,
        lo: &mut Option<Expr>,
    ) {
        let ValueDef::Inst(inst, _) = self.f.values[cond].def else {
            return;
        };
        match &self.f.insts[inst].kind {
            InstKind::Bin {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                self.bound_from_cond(*lhs, subject, ascending, hi, lo);
                self.bound_from_cond(*rhs, subject, ascending, hi, lo);
            }
            InstKind::Cmp { op, lhs, rhs } => {
                let (op, a, b) = (*op, *lhs, *rhs);
                // Normalize to `subject OP other`.
                let (op, other) = if a == subject {
                    (op, b)
                } else if b == subject {
                    (op.swapped(), a)
                } else {
                    return;
                };
                if !self.is_anchored(other) {
                    return;
                }
                let other_e = self
                    .f
                    .value_const(other)
                    .and_then(Constant::as_int)
                    .map(Expr::constant)
                    .unwrap_or_else(|| Expr::value(other));
                match (op, ascending) {
                    // subject < other (continue) ⇒ φ values ≤ other − 1 ⇒
                    // exclusive bound `other`.
                    (CmpOp::Lt, true) => {
                        let e = other_e;
                        *hi = Some(match hi.take() {
                            None => e,
                            Some(prev) => Expr::min2(prev, e),
                        });
                    }
                    (CmpOp::Le, true) => {
                        let e = other_e.offset(1);
                        *hi = Some(match hi.take() {
                            None => e,
                            Some(prev) => Expr::min2(prev, e),
                        });
                    }
                    (CmpOp::Gt, false) => {
                        let e = other_e.offset(1);
                        *lo = Some(match lo.take() {
                            None => e,
                            Some(prev) => Expr::max2(prev, e),
                        });
                    }
                    (CmpOp::Ge, false) => {
                        *lo = Some(match lo.take() {
                            None => other_e,
                            Some(prev) => Expr::max2(prev, other_e),
                        });
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    /// Header-tested variant: the guard bounds the φ value itself inside
    /// the body. When the loop continues on the false edge, the negated
    /// condition applies.
    fn bound_from_guard(
        &self,
        cond: ValueId,
        phi_val: ValueId,
        continue_on_true: bool,
        ascending: bool,
        hi: &mut Option<Expr>,
        lo: &mut Option<Expr>,
    ) {
        if continue_on_true {
            self.bound_from_cond(cond, phi_val, ascending, hi, lo);
            // Also accept `phi + c` subjects (e.g. `i+1 < n` guards).
            self.bound_guard_shifted(cond, phi_val, ascending, hi, lo);
        } else {
            // continue when cond is false: cond = (i >= n) exits ⇒ body has
            // i < n. Normalize by negating the comparison.
            let ValueDef::Inst(inst, _) = self.f.values[cond].def else {
                return;
            };
            if let InstKind::Cmp { op, lhs, rhs } = self.f.insts[inst].kind {
                let neg = op.negated();
                self.bound_from_cmp(neg, lhs, rhs, phi_val, ascending, hi, lo);
            }
        }
    }

    fn bound_guard_shifted(
        &self,
        cond: ValueId,
        phi_val: ValueId,
        ascending: bool,
        hi: &mut Option<Expr>,
        lo: &mut Option<Expr>,
    ) {
        // `i + c OP bound` guards: find cmp whose lhs is an add of φ.
        let ValueDef::Inst(inst, _) = self.f.values[cond].def else {
            return;
        };
        match &self.f.insts[inst].kind {
            InstKind::Bin {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                self.bound_guard_shifted(*lhs, phi_val, ascending, hi, lo);
                self.bound_guard_shifted(*rhs, phi_val, ascending, hi, lo);
            }
            InstKind::Cmp { op, lhs, rhs } => {
                let (op, subj, other) = if self.shift_of(*lhs, phi_val).is_some() {
                    (*op, *lhs, *rhs)
                } else if self.shift_of(*rhs, phi_val).is_some() {
                    (op.swapped(), *rhs, *lhs)
                } else {
                    return;
                };
                let c = self.shift_of(subj, phi_val).unwrap();
                if !self.is_anchored(other) {
                    return;
                }
                let other_e = self
                    .f
                    .value_const(other)
                    .and_then(Constant::as_int)
                    .map(Expr::constant)
                    .unwrap_or_else(|| Expr::value(other));
                // (φ + c) < other ⇒ φ < other − c.
                match (op, ascending) {
                    (CmpOp::Lt, true) => {
                        let e = other_e.offset(-c);
                        *hi = Some(match hi.take() {
                            None => e,
                            Some(prev) => Expr::min2(prev, e),
                        });
                    }
                    (CmpOp::Le, true) => {
                        let e = other_e.offset(1 - c);
                        *hi = Some(match hi.take() {
                            None => e,
                            Some(prev) => Expr::min2(prev, e),
                        });
                    }
                    (CmpOp::Gt, false) => {
                        let e = other_e.offset(1 - c);
                        *lo = Some(match lo.take() {
                            None => e,
                            Some(prev) => Expr::max2(prev, e),
                        });
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn bound_from_cmp(
        &self,
        op: CmpOp,
        lhs: ValueId,
        rhs: ValueId,
        phi_val: ValueId,
        ascending: bool,
        hi: &mut Option<Expr>,
        lo: &mut Option<Expr>,
    ) {
        let (op, other) = if lhs == phi_val {
            (op, rhs)
        } else if rhs == phi_val {
            (op.swapped(), lhs)
        } else {
            return;
        };
        if !self.is_anchored(other) {
            return;
        }
        let other_e = self
            .f
            .value_const(other)
            .and_then(Constant::as_int)
            .map(Expr::constant)
            .unwrap_or_else(|| Expr::value(other));
        match (op, ascending) {
            (CmpOp::Lt, true) => *hi = Some(other_e),
            (CmpOp::Le, true) => *hi = Some(other_e.offset(1)),
            (CmpOp::Gt, false) => *lo = Some(other_e.offset(1)),
            (CmpOp::Ge, false) => *lo = Some(other_e),
            _ => {}
        }
    }

    /// If `val == phi + c`, returns `c` (including `c = 0` for φ itself).
    fn shift_of(&self, val: ValueId, phi_val: ValueId) -> Option<i64> {
        if val == phi_val {
            return Some(0);
        }
        self.step_from(phi_val, val)
    }

    fn block_of(&self, inst: memoir_ir::InstId) -> BlockId {
        for (b, block) in self.f.blocks.iter() {
            if block.insts.contains(&inst) {
                return b;
            }
        }
        panic!("instruction not placed in any block");
    }

    /// Cheap reachability from `from` to `target` avoiding `avoid` (the
    /// loop header), used to tell loop-continue from loop-exit edges.
    fn reaches(&self, from: BlockId, target: BlockId, avoid: BlockId) -> bool {
        if from == target {
            return true;
        }
        let mut seen = vec![false; self.f.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if b == target {
                return true;
            }
            if b == avoid || seen[b.index()] {
                continue;
            }
            seen[b.index()] = true;
            stack.extend(self.f.successors(b));
        }
        false
    }
}

/// `min2` that keeps the known side when the other is unknown — sound for
/// *upper* bounds of a `min` (the result is ≤ each operand).
fn prefer_known_min(a: Expr, b: Expr) -> Expr {
    match (a, b) {
        (Expr::Unknown, x) | (x, Expr::Unknown) => x,
        (x, y) => Expr::min2(x, y),
    }
}

/// Dual of [`prefer_known_min`] for *lower* bounds of a `max`.
fn prefer_known_max(a: Expr, b: Expr) -> Expr {
    match (a, b) {
        (Expr::Unknown, x) | (x, Expr::Unknown) => x,
        (x, y) => Expr::max2(x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn constants_are_singletons() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            probe = Some(b.index(5));
            b.ret(vec![]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        assert_eq!(ir.range_of(probe.unwrap()), Range::constant(5, 6));
    }

    #[test]
    fn anchored_param_is_symbolic_singleton() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let one = b.index(1);
            let n1 = b.add(n, one);
            probe = Some((n, n1));
            b.ret(vec![]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        let (n, n1) = probe.unwrap();
        assert!(ir.is_anchored(n));
        assert!(ir.is_anchored(n1));
        assert_eq!(ir.range_of(n), Range::singleton(Expr::value(n)));
    }

    /// Header-tested loop `for i in 0..n` — R(i) must be
    /// `[0 : max(1, n+1))`: the φ is assigned `n` at the failing exit
    /// test (and `0` when the loop never runs), so the in-body bound `n`
    /// alone would be unsound for uses after the loop.
    #[test]
    fn header_tested_induction() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(memoir_ir::CmpOp::Ge, i, n);
            b.branch(done, exit, body);
            b.switch_to(body);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            b.ret(vec![]);
            probe = Some((i, n));
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        let (i, n) = probe.unwrap();
        let r = ir.range_of(i);
        assert!(r.lo.is_const(0), "{r}");
        assert_eq!(
            r.hi,
            Expr::max2(Expr::constant(1), Expr::value(n).offset(1)),
            "{r}"
        );
    }

    /// Bottom-tested loop (Listing 2's filter shape):
    /// `do { .. i' = i+1 } while (i' < size && i' < B)` — R(i) =
    /// `[0 : max(1, min(size, B)))`: back-edge values passed the test,
    /// but the init `0` never did (the body runs once even when
    /// `size == 0`), so the bound is max'd with the init range.
    #[test]
    fn bottom_tested_conjunction_takes_min() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let size = b.param("size", t);
            let bigb = b.param("B", t);
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(body);
            b.switch_to(body);
            let i = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let next = b.add(i, one);
            let c1 = b.cmp(memoir_ir::CmpOp::Lt, next, size);
            let c2 = b.cmp(memoir_ir::CmpOp::Lt, next, bigb);
            let cond = b.bin(memoir_ir::BinOp::And, c1, c2);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.branch(cond, body, exit);
            b.switch_to(exit);
            b.ret(vec![]);
            probe = Some((i, size, bigb));
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        let (i, size, bigb) = probe.unwrap();
        let r = ir.range_of(i);
        assert!(r.lo.is_const(0), "{r}");
        assert_eq!(
            r.hi,
            Expr::max2(
                Expr::constant(1),
                Expr::min2(Expr::value(size), Expr::value(bigb))
            ),
            "{r}"
        );
    }

    /// Descending loop `for j in (lo..n).rev()`-style:
    /// `j = φ(n-1, j-1)` continuing while `j > lo` — R(j) =
    /// `[min(lo, n-1) : n)`: the exit value `lo` is observed at the
    /// failing header test, one step below the in-body bound `lo+1`.
    #[test]
    fn descending_induction_header_tested() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let lo = b.param("lo", t);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let one = b.index(1);
            let n1 = b.sub(n, one);
            b.jump(header);
            b.switch_to(header);
            let j = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(j, entry, n1);
            // Exit when j <= lo; continue (false edge) while j > lo.
            let done = b.cmp(memoir_ir::CmpOp::Le, j, lo);
            b.branch(done, exit, body);
            b.switch_to(body);
            let jn = b.sub(j, one);
            let bb = b.current_block();
            b.add_phi_incoming(j, bb, jn);
            b.jump(header);
            b.switch_to(exit);
            b.ret(vec![]);
            probe = Some((j, n1, lo));
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        let (j, n1, lo) = probe.unwrap();
        let r = ir.range_of(j);
        // Continue condition is ¬(j ≤ lo) = j > lo ⇒ body values ≥ lo+1,
        // but the exit value is lo and the init is n-1.
        assert_eq!(r.lo, Expr::min2(Expr::value(lo), Expr::value(n1)), "{r}");
        // Upper bound from the (anchored) init `n-1`: values ≤ init,
        // expressed over the init value itself.
        assert_eq!(r.hi, Expr::value(n1).offset(1), "{r}");
    }

    /// Bottom-tested descending loop: `do { j-- } while (j > lo)` —
    /// R(j) = `[min(lo+1, n) : n+1)`: the untested init `n` may already
    /// lie below the tested bound `lo+1`.
    #[test]
    fn descending_induction_bottom_tested() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let lo = b.param("lo", t);
            let body = b.block("body");
            let exit = b.block("exit");
            let one = b.index(1);
            b.jump(body);
            b.switch_to(body);
            let j = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(j, entry, n);
            let jn = b.sub(j, one);
            let cont = b.cmp(memoir_ir::CmpOp::Gt, jn, lo);
            let bb = b.current_block();
            b.add_phi_incoming(j, bb, jn);
            b.branch(cont, body, exit);
            b.switch_to(exit);
            b.ret(vec![]);
            probe = Some((j, n, lo));
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        let (j, n, lo) = probe.unwrap();
        let r = ir.range_of(j);
        assert_eq!(
            r.lo,
            Expr::min2(Expr::value(lo).offset(1), Expr::value(n)),
            "{r}"
        );
        assert_eq!(r.hi, Expr::value(n).offset(1), "{r}");
    }

    #[test]
    fn unrecognized_phi_widens() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let header = b.block("header");
            let exit = b.block("exit");
            let zero = b.index(0);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            // Non-affine update: i * 2.
            let two = b.index(2);
            let next = b.mul(i, two);
            let c = b.bool(true);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.branch(c, header, exit);
            b.switch_to(exit);
            b.ret(vec![]);
            probe = Some(i);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ir = IndexRanges::new(f);
        let r = ir.range_of(probe.unwrap());
        assert_eq!(r.widened(), Range::full());
    }
}
