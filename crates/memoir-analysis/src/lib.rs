//! # memoir-analysis
//!
//! Analyses over the MEMOIR IR (paper §V):
//!
//! * [`dominators`] — dominator trees and dominance frontiers (for SSA
//!   construction and the verifier);
//! * [`defuse`] — sparse def-use chains, the backbone of element-level
//!   analysis;
//! * [`liveness`] — scalar SSA liveness (consumed by SSA destruction);
//! * [`scc`] — Tarjan's SCC (constraint-graph and call-graph cycles);
//! * [`exprtree`] — expression trees (Def. 1) in canonical affine form;
//! * [`range`] — ranges and the range lattice (Defs. 2–5);
//! * [`idxrange`] — intraprocedural symbolic index ranges, the `R(i)`
//!   input of Alg. 1;
//! * [`liverange`] — live range analysis of sequence elements (Table I +
//!   Alg. 1), in sound and escape (paper-methodology) modes;
//! * [`escape`] — allocation-site escape analysis for heap/stack
//!   selection (§VI);
//! * [`affinity`] — field affinity analysis choosing field-elision
//!   candidates (§V);
//! * [`repr`] — adaptive representation selection (dense / inline
//!   layouts per allocation site, from escape + index-range facts);
//! * [`callgraph`] / [`purity`] — call graph and function effect
//!   summaries (dead-call elimination, sinking);
//! * [`cached`] — adapters exposing these analyses through the
//!   `passman` analysis manager so passes share cached results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
pub mod cached;
pub mod callgraph;
pub mod defuse;
pub mod dominators;
pub mod escape;
pub mod exprtree;
pub mod idxrange;
pub mod liveness;
pub mod liverange;
pub mod purity;
pub mod range;
pub mod repr;
pub mod scc;

pub use affinity::Affinity;
pub use callgraph::CallGraph;
pub use defuse::DefUse;
pub use dominators::DomTree;
pub use escape::{EscapeAnalysis, Placement, TypeEscape};
pub use exprtree::{Affine, Expr, Term};
pub use idxrange::IndexRanges;
pub use liveness::Liveness;
pub use liverange::{live_ranges, LiveRangeConfig, LiveRanges};
pub use purity::{EffectSummary, Purity};
pub use range::Range;
pub use repr::{choose_reprs, choose_reprs_with, ReprConfig};
