//! Scalar live-variable analysis over SSA values.
//!
//! Used by SSA destruction (Alg. 3) to decide whether an operand collection
//! is "dead after this use" — the condition under which the destructed
//! program may mutate it in place instead of copying.

use memoir_ir::{BlockId, Function, InstId, InstKind, ValueId};
use std::collections::{HashMap, HashSet};

/// Per-block live-in/live-out sets plus a per-instruction query.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Values live at entry of each block.
    pub live_in: HashMap<BlockId, HashSet<ValueId>>,
    /// Values live at exit of each block.
    pub live_out: HashMap<BlockId, HashSet<ValueId>>,
}

impl Liveness {
    /// Computes liveness with the classic backward data-flow over the CFG.
    /// φ-operands are treated as live-out of the corresponding predecessor
    /// (standard SSA liveness).
    pub fn compute(f: &Function) -> Self {
        let mut live_in: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();
        let mut live_out: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();
        for b in f.blocks.ids() {
            live_in.insert(b, HashSet::new());
            live_out.insert(b, HashSet::new());
        }

        // use[b]: values used in b before any (re)definition; φ uses are
        // attributed to predecessors instead.
        // def[b]: values defined in b.
        let mut uses: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();
        let mut defs: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();
        // φ uses per predecessor edge.
        let mut phi_uses: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();

        for (b, block) in f.blocks.iter() {
            let u = uses.entry(b).or_default();
            let d = defs.entry(b).or_default();
            for &i in &block.insts {
                let inst = &f.insts[i];
                match &inst.kind {
                    InstKind::Phi { incoming } => {
                        for (pred, v) in incoming {
                            if is_tracked(f, *v) {
                                phi_uses.entry(*pred).or_default().insert(*v);
                            }
                        }
                    }
                    kind => {
                        kind.visit_operands(|&v| {
                            if is_tracked(f, v) && !d.contains(&v) {
                                u.insert(v);
                            }
                        });
                    }
                }
                for &r in &inst.results {
                    d.insert(r);
                }
            }
        }

        // Iterate to fixpoint.
        let rpo = f.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().rev() {
                let mut out: HashSet<ValueId> = phi_uses.get(&b).cloned().unwrap_or_default();
                for s in f.successors(b) {
                    for &v in &live_in[&s] {
                        out.insert(v);
                    }
                }
                let mut inn: HashSet<ValueId> = uses.get(&b).cloned().unwrap_or_default();
                for &v in &out {
                    if !defs.get(&b).is_some_and(|d| d.contains(&v)) {
                        inn.insert(v);
                    }
                }
                if out != live_out[&b] {
                    live_out.insert(b, out);
                    changed = true;
                }
                if inn != live_in[&b] {
                    live_in.insert(b, inn);
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Whether `v` is live immediately *after* instruction `inst` in block
    /// `b` at position `pos` (i.e. some later instruction or a successor
    /// still reads it).
    pub fn live_after(&self, f: &Function, b: BlockId, pos: usize, v: ValueId) -> bool {
        let block = &f.blocks[b];
        for &i in &block.insts[pos + 1..] {
            let mut used = false;
            match &f.insts[i].kind {
                // φs later in this block can't use v from this position's
                // path (they are at block head anyway).
                InstKind::Phi { .. } => {}
                kind => kind.visit_operands(|&op| {
                    if op == v {
                        used = true;
                    }
                }),
            }
            if used {
                return true;
            }
        }
        self.live_out.get(&b).is_some_and(|s| s.contains(&v))
    }

    /// Position of an instruction within its block, if present.
    pub fn position(f: &Function, b: BlockId, inst: InstId) -> Option<usize> {
        f.blocks[b].insts.iter().position(|&i| i == inst)
    }
}

fn is_tracked(f: &Function, v: ValueId) -> bool {
    // Constants are always available; tracking them would only bloat sets.
    !matches!(f.values[v].def, memoir_ir::ValueDef::Const(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{CmpOp, Form, ModuleBuilder, Type};

    #[test]
    fn straightline_liveness() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::I64);
            let x = b.param("x", t);
            let y = b.add(x, x);
            let z = b.add(y, y);
            probe = Some((x, y, z));
            b.returns(&[t]);
            b.ret(vec![z]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let lv = Liveness::compute(f);
        let (x, y, _z) = probe.unwrap();
        // After the add defining y (pos 0), x is dead, y live.
        assert!(!lv.live_after(f, f.entry, 0, x));
        assert!(lv.live_after(f, f.entry, 0, y));
        // After z's def (pos 1), y is dead.
        assert!(!lv.live_after(f, f.entry, 1, y));
    }

    #[test]
    fn loop_carried_value_is_live_across_backedge() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        mb.func("g", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, n);
            b.branch(done, exit, body);
            b.switch_to(body);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            b.returns(&[t]);
            b.ret(vec![i]);
            probe = Some((header, body, i, next, n));
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("g").unwrap()];
        let lv = Liveness::compute(f);
        let (header, body, i, next, n) = probe.unwrap();
        // `next` is live-out of body (feeds the φ across the back edge).
        assert!(lv.live_out[&body].contains(&next));
        // `n` is live-in to the header every iteration.
        assert!(lv.live_in[&header].contains(&n));
        // `i` is live-out of the header (used in body and exit).
        assert!(lv.live_out[&header].contains(&i));
    }
}
