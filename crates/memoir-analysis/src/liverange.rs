//! Live range analysis for sequence elements (paper §V, Table I, Alg. 1).
//!
//! For every sequence-typed SSA variable the analysis computes a symbolic
//! range `[ℓ : u)` over-approximating the elements that may still be
//! observed after the variable's definition. Liveness propagates
//! *backwards* along def-use edges: a `READ(S, i)` makes `R(i)` live in
//! `S`; an SSA update `S₁ = op(S₀, …)` transfers `p(S₁)` onto `S₀` per the
//! Table I constraint for `op`; φs fan liveness out to every incoming.
//!
//! Cycles in the constraint graph (loop φs, recursion) are resolved as in
//! Alg. 1: iterate to a fixed point with a growth cap, widening to
//! `[0 : end)` when a bound keeps growing — the default Alg. 1 assigns to
//! unresolved context-insensitive SCC members.
//!
//! ## Modes
//!
//! Two configurations are provided (see DESIGN.md §6):
//!
//! * [`LiveRangeConfig::sound`] — the full Table I transfer functions,
//!   including element *relocation* through `insert`/`remove`/`swap` and
//!   `R(i)` contributions from every read. Safe for semantics-preserving
//!   dead element elimination.
//! * [`LiveRangeConfig::escape`] — the configuration that reproduces the
//!   paper's mcf methodology (Listing 4): liveness is seeded only at the
//!   function boundary (returned sequences are live in the caller's
//!   `[%a : %b)`, recursive calls inherit the same context), reads internal
//!   to the function are not counted, and swaps are treated as stationary.
//!   Dead element elimination guarded by this mode preserves the *live
//!   slice* of the result, which is the paper's correctness model for mcf.

use crate::exprtree::Expr;
use crate::idxrange::IndexRanges;
use crate::range::Range;
use memoir_ir::{Callee, FuncId, Function, InstKind, Module, Type, ValueId};
use std::collections::HashMap;

/// Configuration of the analysis (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveRangeConfig {
    /// Count `READ(S, i)` as making `R(i)` live.
    pub include_reads: bool,
    /// Apply the relocation components of the Table I transfers (shifted
    /// contributions through insert/remove/swap/copy-range).
    pub relocation_transfers: bool,
    /// Returned sequences are live in the symbolic caller context
    /// `[%a : %b)` rather than `[0 : end)`.
    pub ret_is_caller_context: bool,
    /// Sequence arguments of calls contribute liveness (`[0 : end)` for
    /// unknown callees). Disabled by the paper-methodology configuration,
    /// where callee reads are accounted by the specialization itself.
    pub calls_contribute: bool,
    /// Maximum bound-expression complexity before widening to full.
    pub max_complexity: usize,
    /// Maximum fixed-point iterations before widening the whole SCC.
    pub max_iterations: usize,
}

impl LiveRangeConfig {
    /// The fully sound configuration.
    pub fn sound() -> Self {
        LiveRangeConfig {
            include_reads: true,
            relocation_transfers: true,
            ret_is_caller_context: false,
            calls_contribute: true,
            max_complexity: 16,
            max_iterations: 32,
        }
    }

    /// The escape (callee-side paper-methodology) configuration.
    pub fn escape() -> Self {
        LiveRangeConfig {
            include_reads: false,
            relocation_transfers: false,
            ret_is_caller_context: true,
            calls_contribute: false,
            max_complexity: 16,
            max_iterations: 32,
        }
    }

    /// The caller-side paper-methodology configuration (§VII-C: the mcf
    /// transformation was applied manually following §V's algorithms).
    /// Reads count, but element relocation and callee reads do not — the
    /// specialization threads the live slice into the callee instead. Use
    /// only under the live-slice correctness model (DESIGN.md §6).
    pub fn paper() -> Self {
        LiveRangeConfig {
            include_reads: true,
            relocation_transfers: false,
            ret_is_caller_context: false,
            calls_contribute: false,
            max_complexity: 16,
            max_iterations: 32,
        }
    }
}

/// Result of the analysis for one function.
#[derive(Clone, Debug)]
pub struct LiveRanges {
    ranges: HashMap<ValueId, Range>,
}

impl LiveRanges {
    /// The live range of a sequence variable; empty if nothing observes it.
    pub fn range(&self, v: ValueId) -> Range {
        self.ranges.get(&v).cloned().unwrap_or_else(Range::empty)
    }

    /// Iterates all computed (variable, range) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &Range)> {
        self.ranges.iter().map(|(&v, r)| (v, r))
    }
}

/// Runs the analysis on one function of a module.
///
/// ```
/// use memoir_analysis::{live_ranges, LiveRangeConfig};
/// use memoir_ir::{Form, ModuleBuilder, Type};
///
/// // A sequence written at many indices but read only at [0:2).
/// let mut mb = ModuleBuilder::new("m");
/// let mut result = None;
/// let fid = mb.func("f", Form::Ssa, |b| {
///     let i64t = b.ty(Type::I64);
///     let n = b.index(8);
///     let s0 = b.new_seq(i64t, n);
///     let (i0, i1, v) = (b.index(0), b.index(1), b.i64(7));
///     let s1 = b.write(s0, i0, v);
///     let s2 = b.write(s1, i1, v);
///     let a = b.read(s2, i0);
///     let c = b.read(s2, i1);
///     let sum = b.add(a, c);
///     result = Some(s2);
///     b.returns(&[i64t]);
///     b.ret(vec![sum]);
/// });
/// let m = mb.finish();
/// let lr = live_ranges(&m, fid, &LiveRangeConfig::sound());
/// assert_eq!(lr.range(result.unwrap()).to_string(), "[0 : 2)");
/// ```
pub fn live_ranges(m: &Module, fid: FuncId, cfg: &LiveRangeConfig) -> LiveRanges {
    let f = &m.funcs[fid];
    let idx = IndexRanges::new(f);
    let mut p: HashMap<ValueId, Range> = HashMap::new();
    let insts = f.inst_ids_in_order();

    let is_seq = |v: ValueId| matches!(m.types.get(f.value_ty(v)), Type::Seq(_));

    let mut iter = 0usize;
    loop {
        iter += 1;
        let mut changed = false;
        // Reverse order helps convergence (liveness flows backwards).
        for &(_, i) in insts.iter().rev() {
            let inst = &f.insts[i];
            let contributions = transfer(m, f, fid, inst, &p, &idx, cfg, is_seq);
            for (target, contrib) in contributions {
                // Unknown bounds mean "cannot be bounded", not "empty":
                // widen so they do not collapse under min/max absorption.
                let contrib = contrib.widened();
                if contrib.is_empty_const() {
                    continue;
                }
                let entry = p.entry(target).or_insert_with(Range::empty);
                let joined = entry.join(&contrib);
                let joined = if joined.complexity() > cfg.max_complexity {
                    Range::full()
                } else {
                    joined
                };
                if *entry != joined {
                    *entry = joined;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if iter >= cfg.max_iterations {
            // Alg. 1's default for unresolved cycles.
            for r in p.values_mut() {
                *r = Range::full();
            }
            break;
        }
    }
    // Widen Unknown bounds into their [0:end) meaning.
    for r in p.values_mut() {
        *r = r.widened();
    }
    LiveRanges { ranges: p }
}

/// Computes the liveness contributions of one instruction: pairs of
/// (sequence operand, range that becomes live in it).
#[allow(clippy::too_many_arguments)]
fn transfer(
    m: &Module,
    f: &Function,
    fid: FuncId,
    inst: &memoir_ir::Inst,
    p: &HashMap<ValueId, Range>,
    idx: &IndexRanges<'_>,
    cfg: &LiveRangeConfig,
    is_seq: impl Fn(ValueId) -> bool,
) -> Vec<(ValueId, Range)> {
    let result_range = |ri: usize| -> Range {
        inst.results
            .get(ri)
            .and_then(|r| p.get(r))
            .cloned()
            .unwrap_or_else(Range::empty)
    };
    let mut out = Vec::new();
    match &inst.kind {
        InstKind::Read { c, idx: i } if is_seq(*c) && cfg.include_reads => {
            out.push((*c, idx.range_of(*i).widened()));
        }
        InstKind::UsePhi { c } | InstKind::Copy { c } if is_seq(*c) => {
            out.push((*c, result_range(0)));
        }
        InstKind::CopyRange { c, from, to } if is_seq(*c) => {
            let pr = result_range(0);
            let r = if cfg.relocation_transfers {
                // Table I: S1 + i ⊑ S0 — but p(S1)'s `end` is the copy's
                // width, not S0's size.
                if range_mentions_end_sym(&pr) {
                    match width_expr(f, idx, *from, *to) {
                        Some(w) => {
                            let p1 = subst_end_with(&pr, &w);
                            shift_by_value(&p1, f, idx, *from, 1)
                        }
                        None => Range::full(),
                    }
                } else {
                    shift_by_value(&pr, f, idx, *from, 1)
                }
            } else {
                pr
            };
            out.push((*c, r));
        }
        InstKind::Write { c, .. } if is_seq(*c) => {
            // Table I: S1 ⊑ S0 (no kill — conservative).
            out.push((*c, result_range(0)));
        }
        InstKind::Rmw { c, idx: i, .. } if is_seq(*c) => {
            // Fused read+write: the write half transfers like `write`
            // (S1 ⊑ S0, no kill) and the read half makes the indexed
            // element live exactly like `read`.
            out.push((*c, result_range(0)));
            if cfg.include_reads {
                out.push((*c, idx.range_of(*i).widened()));
            }
        }
        InstKind::Insert { c, idx: i, .. } if is_seq(*c) => {
            let pr = result_range(0);
            let r = if cfg.relocation_transfers {
                // Table I: S1 ∧ [0:i] ⊑ S0 ; (S1 ∧ [i+1:end]) − 1 ⊑ S0.
                // The symbolic `end` in p(S1) denotes S1's size, which is
                // S0's size + 1: rebind it before shifting (dropping the
                // rebinding was an under-approximation caught by the
                // differential fuzzer).
                let p1 = subst_end(&pr, 1);
                let shifted = p1.shift_const(-1);
                match bound_expr(f, idx, *i) {
                    Some(ie) => {
                        let below = p1.meet(&Range::new(Expr::constant(0), ie.clone()));
                        let above = shifted.meet(&Range::new(ie, Expr::end()));
                        below.join(&above)
                    }
                    // Unknown insertion point: both images joined.
                    None => p1.join(&shifted),
                }
            } else {
                pr
            };
            out.push((*c, r));
        }
        InstKind::InsertSeq { c, src, .. } => {
            let pr = result_range(0);
            if is_seq(*c) {
                // Splice relocation needs |src| which is not an SSA value
                // here; widen under relocation, identity otherwise.
                let r = if cfg.relocation_transfers {
                    Range::full()
                } else {
                    pr.clone()
                };
                out.push((*c, r));
            }
            if is_seq(*src) {
                let r = if cfg.relocation_transfers {
                    Range::full()
                } else {
                    pr
                };
                out.push((*src, r));
            }
        }
        InstKind::Remove { c, idx: i } if is_seq(*c) => {
            let pr = result_range(0);
            let r = if cfg.relocation_transfers {
                let p1 = subst_end(&pr, -1);
                let shifted = p1.shift_const(1);
                match bound_expr(f, idx, *i) {
                    Some(ie) => {
                        let below = p1.meet(&Range::new(Expr::constant(0), ie.clone()));
                        let above = shifted.meet(&Range::new(ie.offset(1), Expr::end()));
                        below.join(&above)
                    }
                    None => p1.join(&shifted),
                }
            } else {
                pr
            };
            out.push((*c, r));
        }
        InstKind::RemoveRange { c, from, to } if is_seq(*c) => {
            let pr = result_range(0);
            let r = if cfg.relocation_transfers {
                match width_expr(f, idx, *from, *to) {
                    Some(w) => {
                        // p(S1) in S0 coordinates: end shrinks by w.
                        let p1 = subst_end_expr(&pr, &w, true);
                        let shifted = Range::new(p1.lo.add_expr(&w), p1.hi.add_expr(&w));
                        match bound_expr(f, idx, *from) {
                            Some(fe) => {
                                let below = p1.meet(&Range::new(Expr::constant(0), fe));
                                below.join(&shifted)
                            }
                            None => p1.join(&shifted),
                        }
                    }
                    None => Range::full(),
                }
            } else {
                pr
            };
            out.push((*c, r));
        }
        InstKind::Swap { c, .. } if is_seq(*c) => {
            let pr = result_range(0);
            let r = if cfg.relocation_transfers {
                // Identity ∨ cross-shifts; the cross-shifts involve
                // loop-variant offsets in practice, so they widen unless
                // anchored. Conservative: join with full when offsets are
                // not anchored, else apply the shifts.
                cross_swap(f, idx, &inst.kind, &pr)
            } else {
                pr
            };
            out.push((*c, r));
        }
        InstKind::Swap2 { a, b, .. } => {
            let (pa, pb) = (result_range(0), result_range(1));
            if cfg.relocation_transfers {
                // Sound over-approximation for the two-sequence swap.
                if is_seq(*a) {
                    out.push((*a, pa.join(&pb)));
                }
                if is_seq(*b) {
                    out.push((*b, pa.join(&pb)));
                }
            } else {
                if is_seq(*a) {
                    out.push((*a, pa));
                }
                if is_seq(*b) {
                    out.push((*b, pb));
                }
            }
        }
        InstKind::Phi { incoming } if inst.results.first().is_some_and(|r| is_seq(*r)) => {
            let pr = result_range(0);
            for (_, v) in incoming {
                if is_seq(*v) {
                    out.push((*v, pr.clone()));
                }
            }
        }
        InstKind::Select {
            then_value,
            else_value,
            ..
        } if inst.results.first().is_some_and(|r| is_seq(*r)) => {
            let pr = result_range(0);
            out.push((*then_value, pr.clone()));
            out.push((*else_value, pr));
        }
        InstKind::Ret { values } => {
            for &v in values {
                if is_seq(v) {
                    let r = if cfg.ret_is_caller_context {
                        Range::caller_context()
                    } else {
                        Range::full()
                    };
                    out.push((v, r));
                }
            }
        }
        InstKind::Call { callee, args } => {
            for &a in args {
                if is_seq(a) {
                    let r = match callee {
                        // Recursive self-calls inherit the caller context
                        // (the specialized clone threads %a/%b through,
                        // Listing 4).
                        Callee::Func(target) if *target == fid && cfg.ret_is_caller_context => {
                            Range::caller_context()
                        }
                        Callee::Extern(e)
                            if !m.externs[*e].effects.reads_args
                                && !m.externs[*e].effects.opaque =>
                        {
                            Range::empty()
                        }
                        _ if !cfg.calls_contribute => Range::empty(),
                        _ => Range::full(),
                    };
                    out.push((a, r));
                }
            }
        }
        // Element stores of sequences into other collections: the stored
        // sequence escapes wholesale.
        InstKind::MutWrite { value, .. }
        | InstKind::MutRmw { value, .. }
        | InstKind::FieldWrite { value, .. }
            if is_seq(*value) =>
        {
            out.push((*value, Range::full()));
        }
        InstKind::Write { value, .. } | InstKind::Rmw { value, .. } if is_seq(*value) => {
            out.push((*value, Range::full()));
        }
        InstKind::Insert { value: Some(v), .. } | InstKind::MutInsert { value: Some(v), .. }
            if is_seq(*v) =>
        {
            out.push((*v, Range::full()));
        }
        _ => {}
    }
    out
}

/// Rebinds the symbolic `end` of a range by a constant delta (moving a
/// range between the coordinate frames of collections whose sizes differ
/// by `delta`).
fn subst_end(r: &Range, delta: i64) -> Range {
    r.substitute(&|t| {
        if t == crate::exprtree::Term::End {
            Some(Expr::end().offset(delta))
        } else {
            None
        }
    })
}

/// Rebinds `end` by an affine expression delta: `end ↦ end − w` when
/// `negate`, else `end ↦ end + w`.
fn subst_end_expr(r: &Range, w: &Expr, negate: bool) -> Range {
    r.substitute(&|t| {
        if t == crate::exprtree::Term::End {
            let base = Expr::end();
            Some(if negate {
                match w {
                    Expr::Affine(a) => base.add(&a.neg()),
                    _ => Expr::Unknown,
                }
            } else {
                base.add_expr(w)
            })
        } else {
            None
        }
    })
}

/// Replaces `end` outright with `w` (the copied width).
fn subst_end_with(r: &Range, w: &Expr) -> Range {
    r.substitute(&|t| {
        if t == crate::exprtree::Term::End {
            Some(w.clone())
        } else {
            None
        }
    })
}

fn range_mentions_end_sym(r: &Range) -> bool {
    fn mentions(e: &Expr) -> bool {
        match e {
            Expr::Affine(a) => a.terms.contains_key(&crate::exprtree::Term::End),
            Expr::Min(es) | Expr::Max(es) => es.iter().any(mentions),
            Expr::Unknown => false,
        }
    }
    mentions(&r.lo) || mentions(&r.hi)
}

/// An anchored expression for an index value, if available.
fn bound_expr(f: &Function, idx: &IndexRanges<'_>, i: ValueId) -> Option<Expr> {
    if let Some(c) = f.value_const(i).and_then(memoir_ir::Constant::as_int) {
        return Some(Expr::constant(c));
    }
    idx.is_anchored(i).then(|| Expr::value(i))
}

/// Shifts a range by `sign * i` where `i` is an index value; widens when
/// `i` is not anchored.
fn shift_by_value(r: &Range, f: &Function, idx: &IndexRanges<'_>, i: ValueId, sign: i64) -> Range {
    match bound_expr(f, idx, i) {
        Some(e) => {
            let delta = match &e {
                Expr::Affine(a) => {
                    if sign >= 0 {
                        a.clone()
                    } else {
                        a.neg()
                    }
                }
                _ => return Range::full(),
            };
            r.shift(&delta)
        }
        None => Range::full(),
    }
}

fn width_expr(f: &Function, idx: &IndexRanges<'_>, from: ValueId, to: ValueId) -> Option<Expr> {
    let fe = bound_expr(f, idx, from)?;
    let te = bound_expr(f, idx, to)?;
    match (fe, te) {
        (Expr::Affine(a), Expr::Affine(b)) => Some(Expr::Affine(b.add(&a.neg()))),
        _ => None,
    }
}

fn cross_swap(f: &Function, idx: &IndexRanges<'_>, kind: &InstKind, pr: &Range) -> Range {
    let InstKind::Swap { from, to, at, .. } = kind else {
        return Range::full();
    };
    let (Some(fe), Some(te), Some(ae)) = (
        bound_expr(f, idx, *from),
        bound_expr(f, idx, *to),
        bound_expr(f, idx, *at),
    ) else {
        // Offsets are loop-variant: the relocated contribution cannot be
        // expressed; widen (Alg. 1's default).
        return Range::full();
    };
    let (Expr::Affine(fa), Expr::Affine(_ta), Expr::Affine(aa)) = (&fe, &te, &ae) else {
        return Range::full();
    };
    // Identity ∨ (p ∧ [from:to]) − from + at ∨ (p ∧ [at:at+to−from]) − at + from.
    let first = pr
        .meet(&Range::new(fe.clone(), te.clone()))
        .shift(&fa.neg().add(aa));
    let width = match (&te, &fe) {
        (Expr::Affine(t), Expr::Affine(fr)) => t.add(&fr.neg()),
        _ => return Range::full(),
    };
    let second_mask = Range::new(ae.clone(), ae.add_expr(&Expr::Affine(width.clone())));
    let second = pr.meet(&second_mask).shift(&aa.neg().add(fa));
    pr.join(&first).join(&second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder};

    /// Writes indices 0..8 into a sequence, then reads only [0:3).
    /// Sound mode must report exactly `[0 : 3)` live for the final value.
    #[test]
    fn partial_read_bounds_liveness() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        let fid = mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(memoir_ir::Type::I64);
            let n = b.index(8);
            let s0 = b.new_seq(i64t, n);
            let v = b.i64(1);
            let mut s = s0;
            for k in 0..8 {
                let ik = b.index(k);
                s = b.write(s, ik, v);
            }
            let i0 = b.index(0);
            let i2 = b.index(2);
            let a = b.read(s, i0);
            let c = b.read(s, i2);
            let sum = b.add(a, c);
            probe = Some((s0, s));
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let m = mb.finish();
        let lr = live_ranges(&m, fid, &LiveRangeConfig::sound());
        let (s0, s_final) = probe.unwrap();
        let r = lr.range(s_final);
        assert_eq!(r, Range::constant(0, 3), "final: {r}");
        // The liveness propagates through the whole write chain.
        let r0 = lr.range(s0);
        assert_eq!(r0, Range::constant(0, 3), "origin: {r0}");
    }

    /// A sequence returned from the function is fully live in sound mode
    /// and caller-context live in escape mode.
    #[test]
    fn returned_sequence_modes() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        let fid = mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(memoir_ir::Type::I64);
            let seqt = b.types.seq_of(i64t);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            probe = Some(s);
            b.returns(&[seqt]);
            b.ret(vec![s]);
        });
        let m = mb.finish();
        let s = probe.unwrap();
        let sound = live_ranges(&m, fid, &LiveRangeConfig::sound());
        assert!(sound.range(s).is_full());
        let escape = live_ranges(&m, fid, &LiveRangeConfig::escape());
        assert!(escape.range(s).mentions_caller());
    }

    /// Liveness flows through φs in a loop without widening when the
    /// transfer is the identity (escape mode).
    #[test]
    fn phi_cycle_converges_in_escape_mode() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        let fid = mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(memoir_ir::Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s_in = b.param("s", seqt);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            b.jump(header);
            b.switch_to(header);
            let s_phi = b.phi_placeholder(seqt);
            let entry = b.func.entry;
            b.add_phi_incoming(s_phi, entry, s_in);
            let c = b.bool(true);
            b.branch(c, exit, body);
            b.switch_to(body);
            let zero = b.index(0);
            let v = b.i64(1);
            let s2 = b.write(s_phi, zero, v);
            let bb = b.current_block();
            b.add_phi_incoming(s_phi, bb, s2);
            b.jump(header);
            b.switch_to(exit);
            b.returns(&[seqt]);
            b.ret(vec![s_phi]);
            probe = Some((s_in, s_phi, s2));
        });
        let m = mb.finish();
        let lr = live_ranges(&m, fid, &LiveRangeConfig::escape());
        let (s_in, s_phi, s2) = probe.unwrap();
        for v in [s_in, s_phi, s2] {
            let r = lr.range(v);
            assert!(r.mentions_caller(), "{v}: {r}");
            assert!(!r.is_full(), "{v} must not widen: {r}");
        }
    }

    /// Swap relocation under the sound config: reading `[0:2)` of the
    /// swapped result makes the *source* range `[4:6)` live in the
    /// operand (elements travel through the swap), alongside the identity
    /// image.
    #[test]
    fn swap_relocates_liveness() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        let fid = mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(memoir_ir::Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s0 = b.param("s", seqt);
            let zero = b.index(0);
            let two = b.index(2);
            let four = b.index(4);
            let one = b.index(1);
            // s1 = swap(s0, [0:2) ↔ [4:6)).
            let s1 = b.swap(s0, zero, two, four);
            let a = b.read(s1, zero);
            let c = b.read(s1, one);
            let sum = b.add(a, c);
            probe = Some(s0);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let m = mb.finish();
        let lr = live_ranges(&m, fid, &LiveRangeConfig::sound());
        let s0 = probe.unwrap();
        let r = lr.range(s0);
        // The join of the identity image [0:2) and the relocated [4:6)
        // must cover both: lo = 0, hi ≥ 6.
        assert!(r.lo.is_const(0), "{r}");
        let covers_source = match r.hi.as_const() {
            Some(h) => h >= 6,
            None => true, // symbolic/widened: over-approximates; fine
        };
        assert!(covers_source, "swap source must stay live: {r}");
        assert!(!r.is_full() || r.hi.as_const().is_none(), "{r}");
    }

    /// Escape mode treats the same swap as stationary (the Listing 4
    /// model): no relocation, identity only.
    #[test]
    fn escape_mode_swap_is_stationary() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        let fid = mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(memoir_ir::Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s0 = b.param("s", seqt);
            let zero = b.index(0);
            let two = b.index(2);
            let four = b.index(4);
            let s1 = b.swap(s0, zero, two, four);
            probe = Some((s0, s1));
            b.returns(&[seqt]);
            b.ret(vec![s1]);
        });
        let m = mb.finish();
        let lr = live_ranges(&m, fid, &LiveRangeConfig::escape());
        let (s0, s1) = probe.unwrap();
        assert_eq!(lr.range(s0), lr.range(s1), "identity transfer");
        assert!(lr.range(s0).mentions_caller());
    }

    /// Loop-bounded reads: reading `s[i]` for `i in 0..k` yields
    /// `[0 : max(1, k+1))` — the index-range lattice is flow-insensitive,
    /// so the φ range conservatively includes the exit value `k` even
    /// though the read itself is guarded by `i < k`.
    #[test]
    fn loop_read_uses_index_range() {
        let mut mb = ModuleBuilder::new("m");
        let mut probe = None;
        let fid = mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(memoir_ir::Type::I64);
            let idxt = b.ty(memoir_ir::Type::Index);
            let seqt = b.types.seq_of(i64t);
            let s = b.param("s", seqt);
            let k = b.param("k", idxt);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(memoir_ir::CmpOp::Ge, i, k);
            b.branch(done, exit, body);
            b.switch_to(body);
            let _v = b.read(s, i);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            b.ret(vec![]);
            probe = Some((s, k));
        });
        let m = mb.finish();
        let lr = live_ranges(&m, fid, &LiveRangeConfig::sound());
        let (s, k) = probe.unwrap();
        let r = lr.range(s);
        assert!(r.lo.is_const(0), "{r}");
        assert_eq!(
            r.hi,
            Expr::max2(Expr::constant(1), Expr::value(k).offset(1)),
            "{r}"
        );
    }
}
