//! Function effect summaries (purity analysis).
//!
//! Computed bottom-up over call-graph SCCs. MEMOIR's value semantics make
//! this unusually precise: collections cannot be aliased, so the only ways
//! a function can affect its caller are (a) mutating a by-reference
//! collection parameter (mut form), (b) writing object fields through the
//! heap-form field arrays, (c) returning values, and (d) calling opaque
//! externs. Dead-call elimination (the DEE follow-up, DESIGN.md §6) and
//! the sink pass consume these summaries.

use crate::callgraph::CallGraph;
use memoir_ir::{Callee, FuncId, InstKind, Module};
use std::collections::{HashMap, HashSet};

/// The effect summary of one function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Indices of by-reference collection parameters the function (or its
    /// callees through argument threading) may mutate.
    pub writes_params: HashSet<usize>,
    /// Object fields `(type, field)` that may be written.
    pub writes_fields: HashSet<(memoir_ir::ObjTypeId, u32)>,
    /// May allocate or delete objects (observable through reference
    /// identity and the heap model).
    pub allocates_objects: bool,
    /// Calls an extern with unknown effects.
    pub opaque: bool,
}

impl EffectSummary {
    /// A function with this summary has no effects observable by the
    /// caller besides its return values.
    pub fn is_pure(&self) -> bool {
        self.writes_params.is_empty()
            && self.writes_fields.is_empty()
            && !self.allocates_objects
            && !self.opaque
    }
}

/// Effect summaries for every function of a module.
#[derive(Clone, Debug)]
pub struct Purity {
    summaries: HashMap<FuncId, EffectSummary>,
}

impl Purity {
    /// Computes summaries bottom-up over the call graph (iterating each
    /// recursive SCC to a fixed point).
    pub fn compute(m: &Module, cg: &CallGraph) -> Self {
        let mut summaries: HashMap<FuncId, EffectSummary> = HashMap::new();
        for comp in &cg.sccs {
            // Start every member of the component at ⊥ (no effects) so the
            // fixed-point iteration is monotone from the bottom; callees in
            // other components were already finalized (SCCs arrive in
            // reverse topological order).
            for &fid in comp {
                summaries.entry(fid).or_default();
            }
            let mut changed = true;
            while changed {
                changed = false;
                for &fid in comp {
                    let s = summarize(m, fid, &summaries);
                    if summaries.get(&fid) != Some(&s) {
                        summaries.insert(fid, s);
                        changed = true;
                    }
                }
            }
        }
        // Functions unreachable in SCC enumeration (none today) default to
        // opaque-free empty summaries on query.
        Purity { summaries }
    }

    /// The summary for a function.
    pub fn summary(&self, f: FuncId) -> &EffectSummary {
        static EMPTY: std::sync::OnceLock<EffectSummary> = std::sync::OnceLock::new();
        self.summaries
            .get(&f)
            .unwrap_or_else(|| EMPTY.get_or_init(EffectSummary::default))
    }
}

fn summarize(m: &Module, fid: FuncId, partial: &HashMap<FuncId, EffectSummary>) -> EffectSummary {
    let f = &m.funcs[fid];
    let mut s = EffectSummary::default();
    // Map from parameter value → parameter index for by-ref params.
    let param_index: HashMap<memoir_ir::ValueId, usize> = f
        .param_values
        .iter()
        .enumerate()
        .filter(|(i, _)| f.params[*i].by_ref)
        .map(|(i, &v)| (v, i))
        .collect();

    for (_, i) in f.inst_ids_in_order() {
        let kind = &f.insts[i].kind;
        for c in kind.mutated_collections() {
            if let Some(&pi) = param_index.get(&c) {
                s.writes_params.insert(pi);
            }
        }
        match kind {
            InstKind::FieldWrite { obj_ty, field, .. } => {
                s.writes_fields.insert((*obj_ty, *field));
            }
            InstKind::NewObj { .. } | InstKind::DeleteObj { .. } => {
                s.allocates_objects = true;
            }
            InstKind::Call { callee, args } => match callee {
                Callee::Func(target) => {
                    if let Some(cs) = partial.get(target) {
                        s.writes_fields.extend(cs.writes_fields.iter().copied());
                        s.allocates_objects |= cs.allocates_objects;
                        s.opaque |= cs.opaque;
                        // Thread by-ref mutation back to our own params.
                        for &callee_param in &cs.writes_params {
                            if let Some(&arg) = args.get(callee_param) {
                                if let Some(&pi) = param_index.get(&arg) {
                                    s.writes_params.insert(pi);
                                }
                            }
                        }
                    } else {
                        // Not yet summarized outside this SCC pass: assume
                        // worst within the component; fixed-point iteration
                        // refines it.
                        s.opaque = true;
                    }
                }
                Callee::Extern(eid) => {
                    let e = &m.externs[*eid];
                    if e.effects.opaque {
                        s.opaque = true;
                    }
                    if e.effects.writes_args {
                        for &arg in args {
                            if let Some(&pi) = param_index.get(&arg) {
                                s.writes_params.insert(pi);
                            }
                        }
                    }
                }
            },
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn pure_function_summarized() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("pure_fn", Form::Mut, |b| {
            let t = b.ty(Type::I64);
            let x = b.param("x", t);
            let y = b.add(x, x);
            b.returns(&[t]);
            b.ret(vec![y]);
        });
        let m = mb.finish();
        let cg = CallGraph::compute(&m);
        let p = Purity::compute(&m, &cg);
        assert!(p.summary(m.func_by_name("pure_fn").unwrap()).is_pure());
    }

    #[test]
    fn byref_mutation_threads_through_calls() {
        let mut mb = ModuleBuilder::new("m");
        let inner_fn = {
            let mut fb = memoir_ir::FunctionBuilder::new(&mut mb.module.types, "inner", Form::Mut);
            let i64t = fb.ty(Type::I64);
            let seqt = fb.types.seq_of(i64t);
            let s = fb.param_ref("s", seqt);
            let zero = fb.index(0);
            let v = fb.i64(1);
            fb.mut_write(s, zero, v);
            fb.ret(vec![]);
            fb.finish()
        };
        let inner = mb.module.add_func(inner_fn);
        mb.func("outer", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s = b.param_ref("s", seqt);
            b.call(memoir_ir::Callee::Func(inner), vec![s], &[]);
            b.ret(vec![]);
        });
        let m = mb.finish();
        let cg = CallGraph::compute(&m);
        let p = Purity::compute(&m, &cg);
        let outer = m.func_by_name("outer").unwrap();
        assert!(p.summary(outer).writes_params.contains(&0));
        assert!(!p.summary(outer).is_pure());
    }

    #[test]
    fn field_write_recorded() {
        let mut mb = ModuleBuilder::new("m");
        let i32t = mb.module.types.intern(Type::I32);
        let obj = mb
            .module
            .types
            .define_object(
                "t0",
                vec![memoir_ir::Field {
                    name: "a".into(),
                    ty: i32t,
                }],
            )
            .unwrap();
        mb.func("writer", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let v = b.i32(1);
            b.field_write(o, obj, 0, v);
            b.ret(vec![]);
        });
        let m = mb.finish();
        let cg = CallGraph::compute(&m);
        let p = Purity::compute(&m, &cg);
        let w = m.func_by_name("writer").unwrap();
        assert!(p.summary(w).writes_fields.contains(&(obj, 0)));
        assert!(p.summary(w).allocates_objects);
    }

    #[test]
    fn recursion_reaches_fixed_point() {
        // Self-recursive function mutating its by-ref param.
        let mut mb = ModuleBuilder::new("m");
        let fid = mb
            .module
            .add_func(memoir_ir::Function::new("rec", Form::Mut));
        {
            let i64t = mb.module.types.intern(Type::I64);
            let seqt = mb.module.types.seq_of(i64t);
            let indext = mb.module.types.intern(Type::Index);
            let f = &mut mb.module.funcs[fid];
            let s = f.add_param("s", seqt, true);
            let zero = f.constant(memoir_ir::Constant::index(0), indext);
            let v = f.constant(memoir_ir::Constant::i64(1), i64t);
            let entry = f.entry;
            f.append_inst(
                entry,
                InstKind::MutWrite {
                    c: s,
                    idx: zero,
                    value: v,
                },
                &[],
            );
            f.append_inst(
                entry,
                InstKind::Call {
                    callee: memoir_ir::Callee::Func(fid),
                    args: vec![s],
                },
                &[],
            );
            f.append_inst(entry, InstKind::Ret { values: vec![] }, &[]);
        }
        let m = mb.finish();
        let cg = CallGraph::compute(&m);
        let p = Purity::compute(&m, &cg);
        let s = p.summary(fid);
        assert!(s.writes_params.contains(&0));
        assert!(
            !s.opaque,
            "fixed point must clear the provisional opaque bit: {s:?}"
        );
    }
}
