//! Ranges and the range lattice (paper Defs. 2–5).
//!
//! A [`Range`] is a contiguous subspace `[lo : hi)` of a sequence's index
//! space, with bounds given by expression trees. Lattice points merge
//! disjunctively (Def. 4: `∨` unions, `[min(l) : max(u)]`) or conjunctively
//! (Def. 5: `∧` intersects, `[max(l) : min(u)]`).

use crate::exprtree::{Affine, Expr};

/// A contiguous index-space range `[lo : hi)` with symbolic bounds.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
}

impl Range {
    /// Creates a range from bounds.
    pub fn new(lo: Expr, hi: Expr) -> Self {
        Range { lo, hi }
    }

    /// The empty range `[0 : 0)`.
    pub fn empty() -> Self {
        Range {
            lo: Expr::constant(0),
            hi: Expr::constant(0),
        }
    }

    /// The full range `[0 : end)` — the default Alg. 1 assigns to
    /// unresolved cycle members.
    pub fn full() -> Self {
        Range {
            lo: Expr::constant(0),
            hi: Expr::end(),
        }
    }

    /// The caller-context range `[%a : %b)` used at ARGφ/RETφ boundaries.
    pub fn caller_context() -> Self {
        Range {
            lo: Expr::caller_lo(),
            hi: Expr::caller_hi(),
        }
    }

    /// A singleton range `[e : e+1)`.
    pub fn singleton(e: Expr) -> Self {
        let hi = e.offset(1);
        Range { lo: e, hi }
    }

    /// A constant range.
    pub fn constant(lo: i64, hi: i64) -> Self {
        Range {
            lo: Expr::constant(lo),
            hi: Expr::constant(hi),
        }
    }

    /// Whether this is syntactically the empty constant range. Unknown
    /// bounds are never empty — `[? : ?)` widens to `[0 : end)`, the
    /// opposite of empty.
    pub fn is_empty_const(&self) -> bool {
        match (self.lo.as_const(), self.hi.as_const()) {
            (Some(l), Some(h)) => l >= h,
            _ => {
                // [e : e) for identical symbolic bounds.
                self.lo == self.hi && self.lo != Expr::Unknown
            }
        }
    }

    /// Whether this is syntactically the full range `[0 : end)`.
    pub fn is_full(&self) -> bool {
        (self.lo.is_const(0) || self.lo == Expr::Unknown)
            && (self.hi.is_end() || self.hi == Expr::Unknown)
    }

    /// Disjunctive merge (Def. 4): `[min(l₁,l₂) : max(u₁,u₂))`. Empty
    /// ranges are the identity (and two empties merge to the canonical
    /// empty), keeping the operation commutative and associative.
    pub fn join(&self, other: &Range) -> Range {
        match (self.is_empty_const(), other.is_empty_const()) {
            (true, true) => Range::empty(),
            (true, false) => other.clone(),
            (false, true) => self.clone(),
            (false, false) => Range {
                lo: Expr::min2(self.lo.clone(), other.lo.clone()),
                hi: Expr::max2(self.hi.clone(), other.hi.clone()),
            },
        }
    }

    /// Conjunctive merge (Def. 5): `[max(l₁,l₂) : min(u₁,u₂))`.
    pub fn meet(&self, other: &Range) -> Range {
        Range {
            lo: Expr::max2(self.lo.clone(), other.lo.clone()),
            hi: Expr::min2(self.hi.clone(), other.hi.clone()),
        }
    }

    /// Shifts both bounds by an affine delta (Table I's `± i` transfers).
    pub fn shift(&self, delta: &Affine) -> Range {
        Range {
            lo: self.lo.add(delta),
            hi: self.hi.add(delta),
        }
    }

    /// Shifts by a constant.
    pub fn shift_const(&self, c: i64) -> Range {
        self.shift(&Affine::constant(c))
    }

    /// Clamps the lower bound at zero: index spaces are non-negative, so
    /// `[-1 : u)` denotes the same live elements as `[0 : u)`. Needed
    /// before materializing bounds as (unsigned) `index` values.
    pub fn clamp_lo_zero(&self) -> Range {
        let lo = match self.lo.as_const() {
            Some(c) if c < 0 => Expr::constant(0),
            Some(_) => self.lo.clone(),
            None => Expr::max2(Expr::constant(0), self.lo.clone()),
        };
        Range {
            lo,
            hi: self.hi.clone(),
        }
    }

    /// Replaces `Unknown` bounds with their widened meaning
    /// (`lo → 0`, `hi → end`).
    pub fn widened(&self) -> Range {
        Range {
            lo: if self.lo == Expr::Unknown {
                Expr::constant(0)
            } else {
                self.lo.clone()
            },
            hi: if self.hi == Expr::Unknown {
                Expr::end()
            } else {
                self.hi.clone()
            },
        }
    }

    /// Applies a substitution to both bounds.
    pub fn substitute(&self, map: &dyn Fn(crate::exprtree::Term) -> Option<Expr>) -> Range {
        Range {
            lo: self.lo.substitute(map),
            hi: self.hi.substitute(map),
        }
    }

    /// Whether either bound mentions the caller-context terms.
    pub fn mentions_caller(&self) -> bool {
        self.lo.mentions_caller() || self.hi.mentions_caller()
    }

    /// Structural size of the bound expressions — used for widening
    /// heuristics in the cycle resolver.
    pub fn complexity(&self) -> usize {
        fn size(e: &Expr) -> usize {
            match e {
                Expr::Affine(a) => 1 + a.terms.len(),
                Expr::Min(es) | Expr::Max(es) => 1 + es.iter().map(size).sum::<usize>(),
                Expr::Unknown => 1,
            }
        }
        size(&self.lo) + size(&self.hi)
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} : {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_unions() {
        let a = Range::constant(2, 5);
        let b = Range::constant(4, 9);
        let j = a.join(&b);
        assert_eq!(j, Range::constant(2, 9));
    }

    #[test]
    fn meet_intersects() {
        let a = Range::constant(2, 5);
        let b = Range::constant(4, 9);
        let m = a.meet(&b);
        assert_eq!(m, Range::constant(4, 5));
    }

    #[test]
    fn join_with_empty_is_identity() {
        let a = Range::constant(2, 5);
        assert_eq!(a.join(&Range::empty()), a);
        assert_eq!(Range::empty().join(&a), a);
    }

    #[test]
    fn full_detection() {
        assert!(Range::full().is_full());
        assert!(!Range::constant(0, 5).is_full());
        let widened = Range::new(Expr::Unknown, Expr::Unknown).widened();
        assert!(widened.is_full());
    }

    #[test]
    fn shift_moves_both_bounds() {
        let a = Range::constant(2, 5).shift_const(3);
        assert_eq!(a, Range::constant(5, 8));
    }

    #[test]
    fn symbolic_join_builds_minmax() {
        let a = Range::new(
            Expr::constant(0),
            Expr::value(memoir_ir::ValueId::from_raw(7)),
        );
        let b = Range::constant(0, 1);
        let j = a.join(&b);
        assert!(j.lo.is_const(0));
        assert!(matches!(j.hi, Expr::Max(_)));
    }

    #[test]
    fn lattice_laws_on_constants() {
        let a = Range::constant(1, 4);
        let b = Range::constant(2, 6);
        let c = Range::constant(0, 3);
        // Commutativity.
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.meet(&b), b.meet(&a));
        // Associativity.
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        // Idempotence.
        assert_eq!(a.join(&a), a);
        assert_eq!(a.meet(&a), a);
    }

    #[test]
    fn caller_context_range() {
        let r = Range::caller_context();
        assert!(r.mentions_caller());
        let sub = r.substitute(&|t| match t {
            crate::exprtree::Term::CallerLo => Some(Expr::constant(0)),
            crate::exprtree::Term::CallerHi => Some(Expr::constant(8)),
            _ => None,
        });
        assert_eq!(sub, Range::constant(0, 8));
    }
}
