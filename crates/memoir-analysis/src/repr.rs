//! Adaptive representation selection: chooses a cheaper storage layout
//! per collection *allocation site* when the analyses can prove it safe.
//!
//! The default lowering gives every associative array an opaque host
//! table and every sequence a heap buffer. Two cheaper layouts exist
//! (see [`memoir_ir::Repr`]):
//!
//! * **Dense** — an associative array whose keys are provably integral,
//!   non-negative, and bounded lowers to a direct-indexed array
//!   (present-bitmap + value slots). Legality: every key ever used with
//!   any version of the collection has a constant element-level range
//!   `[lo : hi)` with `0 ≤ lo` and `hi ≤` the configured cap limit (the
//!   [`IndexRanges`] lattice, including the `x & mask` wrapping rule);
//!   no `keys` op observes insertion order; and the collection never
//!   escapes the function (per [`EscapeAnalysis`]) nor flows through a
//!   call or φ/select whose other inputs are unknown.
//! * **Inline** — a sequence with a small constant length that never
//!   grows, shrinks, or escapes lowers to an inline (stack) buffer.
//!
//! Anything unproven falls back to [`Repr::Default`] — selection is
//! purely an optimization and must never change observable behaviour.
//!
//! Versions of a collection are grouped with a union-find over the SSA
//! chain ops (`write`/`rmw`/`insert`/`remove`/`swap`/`copy`/`use-phi`/φ)
//! plus the mut-form ops (which reuse one SSA value), so a constraint
//! discovered on any version (an unbounded key, a `keys` op, an escape)
//! disqualifies every allocation site feeding that group.

use crate::escape::{EscapeAnalysis, Placement};
use crate::idxrange::IndexRanges;
use memoir_ir::{
    BinOp, Constant, Function, InstId, InstKind, Module, Repr, ReprChoices, Type, ValueDef, ValueId,
};
use std::collections::HashMap;

/// Limits on how large a chosen representation may get.
#[derive(Clone, Copy, Debug)]
pub struct ReprConfig {
    /// Largest key-space bound eligible for [`Repr::Dense`] (slots are
    /// reserved eagerly, so this caps wasted space).
    pub dense_cap_limit: u64,
    /// Largest constant sequence length eligible for [`Repr::Inline`].
    pub inline_cap_limit: u64,
}

impl Default for ReprConfig {
    fn default() -> Self {
        ReprConfig {
            dense_cap_limit: 1 << 16,
            inline_cap_limit: 8,
        }
    }
}

/// Chooses representations for every eligible allocation site of the
/// module with the default [`ReprConfig`].
pub fn choose_reprs(m: &Module) -> ReprChoices {
    choose_reprs_with(m, &ReprConfig::default())
}

/// Chooses representations for every eligible allocation site of the
/// module.
pub fn choose_reprs_with(m: &Module, cfg: &ReprConfig) -> ReprChoices {
    let mut out = ReprChoices::new();
    for (fid, f) in m.funcs.iter() {
        choose_function(m, cfg, fid, f, &mut out);
    }
    out
}

/// Union-find over values.
struct Uf {
    parent: HashMap<ValueId, ValueId>,
}

impl Uf {
    fn new() -> Self {
        Uf {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, v: ValueId) -> ValueId {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: ValueId, b: ValueId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Per-group constraints accumulated over every version of a collection.
#[derive(Clone, Debug, Default)]
struct GroupFacts {
    /// Allocation sites (`new_seq`/`new_assoc`) defining versions of the
    /// group.
    alloc_sites: Vec<InstId>,
    /// A version is a parameter: contents and key space are unknown.
    has_param: bool,
    /// A version flows through a call or is returned (by-value copies
    /// put versions beyond this function's proof).
    crosses_call: bool,
    /// `keys` observes insertion order somewhere.
    keys_observed: bool,
    /// The group's index space changes shape through seq-only resizing
    /// ops (insert/remove/splice/split/append) — disqualifies Inline.
    resized: bool,
    /// Largest exclusive key bound seen, if every key so far is bounded.
    key_hi: Option<u64>,
    /// Every key seen so far has a provably non-negative constant range.
    keys_bounded: bool,
    /// A version came from an op that does not preserve eligibility
    /// (e.g. `keys` result, `copy.range` of something else): neutral for
    /// the sources, but the group gains no allocation site from it.
    _reserved: (),
}

fn choose_function(
    m: &Module,
    cfg: &ReprConfig,
    fid: memoir_ir::FuncId,
    f: &Function,
    out: &mut ReprChoices,
) {
    let is_coll = |v: ValueId| {
        matches!(
            m.types.get(f.value_ty(v)),
            Type::Seq(_) | Type::Assoc { .. }
        )
    };
    let order = f.inst_ids_in_order();

    // ---- 1. group versions --------------------------------------------
    let mut uf = Uf::new();
    for &(_, iid) in &order {
        match &f.insts[iid].kind {
            // SSA chain ops: result is a new version of `c`.
            InstKind::Write { c, .. }
            | InstKind::Rmw { c, .. }
            | InstKind::Insert { c, .. }
            | InstKind::InsertSeq { c, .. }
            | InstKind::Remove { c, .. }
            | InstKind::RemoveRange { c, .. }
            | InstKind::Swap { c, .. }
            | InstKind::UsePhi { c }
            | InstKind::Copy { c } => {
                if let Some(&r) = f.insts[iid].results.first() {
                    uf.union(*c, r);
                }
            }
            InstKind::Swap2 { a, b, .. } => {
                for (i, src) in [*a, *b].into_iter().enumerate() {
                    if let Some(&r) = f.insts[iid].results.get(i) {
                        uf.union(src, r);
                    }
                }
            }
            InstKind::Phi { incoming } => {
                if let Some(&r) = f.insts[iid].results.first() {
                    if is_coll(r) {
                        for (_, v) in incoming {
                            uf.union(*v, r);
                        }
                    }
                }
            }
            InstKind::Select {
                then_value,
                else_value,
                ..
            } => {
                if let Some(&r) = f.insts[iid].results.first() {
                    if is_coll(r) {
                        uf.union(*then_value, r);
                        uf.union(*else_value, r);
                    }
                }
            }
            _ => {}
        }
    }

    // ---- 2. collect constraints per group ------------------------------
    let esc = EscapeAnalysis::compute(m, f);
    let idx = IndexRanges::new(f);
    let mut facts: HashMap<ValueId, GroupFacts> = HashMap::new();

    // Parameters that are collections taint their groups.
    for (vi, val) in f.values.iter() {
        if matches!(val.def, ValueDef::Param(_)) && is_coll(vi) {
            let root = uf.find(vi);
            facts.entry(root).or_default().has_param = true;
        }
    }

    let note_key =
        |facts: &mut HashMap<ValueId, GroupFacts>, uf: &mut Uf, c: ValueId, k: ValueId| {
            let root = uf.find(c);
            let g = facts.entry(root).or_default();
            match key_bound(f, &idx, k) {
                Some((lo, hi)) if lo >= 0 && (hi as u64) <= cfg.dense_cap_limit && hi > 0 => {
                    let hi = hi as u64;
                    g.key_hi = Some(g.key_hi.map_or(hi, |h| h.max(hi)));
                }
                _ => g.keys_bounded = false,
            }
        };

    for &(_, iid) in &order {
        let inst = &f.insts[iid];
        match &inst.kind {
            InstKind::NewSeq { .. } | InstKind::NewAssoc { .. } => {
                let r = inst.results[0];
                let root = uf.find(r);
                let g = facts.entry(root).or_default();
                g.alloc_sites.push(iid);
                if g.key_hi.is_none() {
                    // first sighting: keys start out bounded-vacuously
                    g.keys_bounded = true;
                }
            }
            _ => {}
        }
    }
    // Re-walk for uses now that groups exist (order independent).
    for &(_, iid) in &order {
        let inst = &f.insts[iid];
        match &inst.kind {
            InstKind::Read { c, idx: k }
            | InstKind::Write { c, idx: k, .. }
            | InstKind::Rmw { c, idx: k, .. }
            | InstKind::Has { c, key: k }
            | InstKind::Remove { c, idx: k }
            | InstKind::MutWrite { c, idx: k, .. }
            | InstKind::MutRmw { c, idx: k, .. }
            | InstKind::MutRemove { c, idx: k } => {
                note_key(&mut facts, &mut uf, *c, *k);
            }
            InstKind::Insert { c, idx: k, .. } | InstKind::MutInsert { c, idx: k, .. } => {
                note_key(&mut facts, &mut uf, *c, *k);
                let root = uf.find(*c);
                facts.entry(root).or_default().resized = true;
            }
            InstKind::InsertSeq { c, src, .. } | InstKind::MutInsertSeq { c, src, .. } => {
                for v in [*c, *src] {
                    let root = uf.find(v);
                    facts.entry(root).or_default().resized = true;
                }
            }
            InstKind::RemoveRange { c, .. }
            | InstKind::MutRemoveRange { c, .. }
            | InstKind::MutSplit { c, .. } => {
                let root = uf.find(*c);
                facts.entry(root).or_default().resized = true;
            }
            InstKind::MutAppend { c, src } => {
                for v in [*c, *src] {
                    let root = uf.find(v);
                    facts.entry(root).or_default().resized = true;
                }
            }
            InstKind::Keys { c } => {
                let root = uf.find(*c);
                facts.entry(root).or_default().keys_observed = true;
            }
            InstKind::Call { args, .. } => {
                for &a in args {
                    if is_coll(a) {
                        let root = uf.find(a);
                        facts.entry(root).or_default().crosses_call = true;
                    }
                }
            }
            InstKind::Ret { values } => {
                for &v in values {
                    if is_coll(v) {
                        let root = uf.find(v);
                        facts.entry(root).or_default().crosses_call = true;
                    }
                }
            }
            _ => {}
        }
    }

    // ---- 3. decide per allocation site ---------------------------------
    for &(_, iid) in &order {
        let inst = &f.insts[iid];
        let (is_assoc_site, seq_len) = match &inst.kind {
            InstKind::NewAssoc { key, .. } => {
                if !m.types.get(*key).is_integer() {
                    continue;
                }
                (true, None)
            }
            InstKind::NewSeq { len, .. } => (false, f.value_const(*len).and_then(Constant::as_int)),
            _ => continue,
        };
        let r = inst.results[0];
        let root = uf.find(r);
        let Some(g) = facts.get(&root) else { continue };
        if g.has_param || g.crosses_call || g.keys_observed {
            continue;
        }
        if esc.placement(iid) != Some(Placement::Stack) {
            continue;
        }
        if is_assoc_site {
            if g.keys_bounded {
                if let Some(hi) = g.key_hi {
                    out.insert((fid, iid), Repr::Dense { cap: hi });
                }
            }
        } else if let Some(n) = seq_len {
            if !g.resized && n >= 0 && (n as u64) <= cfg.inline_cap_limit {
                out.insert((fid, iid), Repr::Inline { cap: n as u64 });
            }
        }
    }
}

/// A constant `[lo : hi)` bound for a key value: its element-level range
/// lattice when constant, else the `x & mask` wrapping pattern (which
/// bounds the result even when `x` is loop-invariant and the lattice
/// keeps it symbolic).
fn key_bound(f: &Function, idx: &IndexRanges<'_>, k: ValueId) -> Option<(i64, i64)> {
    let r = idx.range_of(k);
    if let (Some(lo), Some(hi)) = (r.lo.as_const(), r.hi.as_const()) {
        return Some((lo, hi));
    }
    if let ValueDef::Inst(iid, _) = f.values[k].def {
        if let InstKind::Bin {
            op: BinOp::And,
            lhs,
            rhs,
        } = f.insts[iid].kind
        {
            let mask = f
                .value_const(rhs)
                .and_then(Constant::as_int)
                .or_else(|| f.value_const(lhs).and_then(Constant::as_int));
            if let Some(m) = mask {
                if m >= 0 {
                    return Some((0, m + 1));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder};

    fn choices_of(m: &Module) -> Vec<Repr> {
        let mut v: Vec<Repr> = choose_reprs(m).into_values().collect();
        v.sort_by_key(|r| format!("{r:?}"));
        v
    }

    #[test]
    fn masked_keys_select_dense() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let a0 = b.new_assoc(i64t, i64t);
            let h = b.param("h", i64t);
            let mask = b.i64(255);
            let k = b.bin(BinOp::And, h, mask);
            let one = b.i64(1);
            let a1 = b.write(a0, k, one);
            let v = b.read(a1, k);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
        let m = mb.finish();
        assert_eq!(choices_of(&m), vec![Repr::Dense { cap: 256 }]);
    }

    #[test]
    fn unbounded_keys_fall_back_to_default() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let a0 = b.new_assoc(i64t, i64t);
            let k = b.param("k", i64t); // unbounded key space
            let one = b.i64(1);
            let a1 = b.write(a0, k, one);
            let v = b.read(a1, k);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
        let m = mb.finish();
        assert!(choices_of(&m).is_empty());
    }

    #[test]
    fn keys_op_disqualifies_dense() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let a0 = b.new_assoc(i64t, i64t);
            let k = b.i64(3);
            let one = b.i64(1);
            let a1 = b.write(a0, k, one);
            let ks = b.keys(a1);
            let n = b.size(ks);
            b.returns(&[idxt]);
            b.ret(vec![n]);
        });
        let m = mb.finish();
        assert!(choices_of(&m).is_empty());
    }

    #[test]
    fn escaping_assoc_falls_back() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let assoc_ty = b.types.assoc_of(i64t, i64t);
            let a0 = b.new_assoc(i64t, i64t);
            let k = b.i64(3);
            let one = b.i64(1);
            let a1 = b.write(a0, k, one);
            b.returns(&[assoc_ty]);
            b.ret(vec![a1]); // escapes
        });
        let m = mb.finish();
        assert!(choices_of(&m).is_empty());
    }

    #[test]
    fn small_const_seq_selects_inline() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.i64(1);
            let s1 = b.write(s0, zero, one);
            let v = b.read(s1, zero);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
        let m = mb.finish();
        assert_eq!(choices_of(&m), vec![Repr::Inline { cap: 4 }]);
    }

    #[test]
    fn growing_seq_is_not_inline() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(2);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.i64(1);
            let s1 = b.insert(s0, zero, Some(one)); // grows
            let v = b.read(s1, zero);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
        let m = mb.finish();
        assert!(choices_of(&m).is_empty());
    }

    #[test]
    fn mut_form_dense_selection_works() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let a = b.new_assoc(i64t, i64t);
            let k = b.i64(7);
            let one = b.i64(1);
            b.mut_insert(a, k, Some(one));
            b.mut_rmw(a, k, BinOp::Add, one);
            let v = b.read(a, k);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
        let m = mb.finish();
        assert_eq!(choices_of(&m), vec![Repr::Dense { cap: 8 }]);
    }
}
