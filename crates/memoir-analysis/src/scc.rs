//! Tarjan's strongly-connected components over a generic indexed graph.
//!
//! Used by the live range analysis (Alg. 1) to resolve cycles in the
//! constraint graph, and by the call graph for recursion groups.

/// Computes the strongly-connected components of a directed graph given as
/// an adjacency list. Returns the components in **reverse topological
/// order** (callees/leaves first): every edge `u → v` with `u` and `v` in
/// different components has `component(v)` appearing before
/// `component(u)`.
pub fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan to avoid recursion limits on big graphs.
    enum Frame {
        Enter(usize),
        Continue(usize, usize),
    }
    let mut work: Vec<Frame> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        work.push(Frame::Enter(start));
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, mut ei) => {
                    let mut descended = false;
                    while ei < adj[v].len() {
                        let w = adj[v][ei];
                        ei += 1;
                        if index[w] == usize::MAX {
                            work.push(Frame::Continue(v, ei));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All edges done: close the component if v is a root.
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                    // Propagate low to the parent Continue frame.
                    if let Some(Frame::Continue(p, _)) = work.last() {
                        let p = *p;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_graph_is_all_singletons() {
        // 0 → 1 → 2
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 3);
        // Reverse topological: 2 first, 0 last.
        assert_eq!(comps[0], vec![2]);
        assert_eq!(comps[2], vec![0]);
    }

    #[test]
    fn cycle_is_one_component() {
        // 0 → 1 → 2 → 0, 2 → 3
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let mut comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![3]);
        comps[1].sort();
        assert_eq!(comps[1], vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_detected() {
        let adj = vec![vec![0], vec![]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn two_cycles_ordered() {
        // comp A {0,1} → comp B {2,3}
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 2);
        let mut first = comps[0].clone();
        first.sort();
        assert_eq!(first, vec![2, 3]); // callee/leaf first
    }

    #[test]
    fn disconnected_nodes_covered() {
        let adj = vec![vec![], vec![], vec![]];
        let comps = tarjan_scc(&adj);
        assert_eq!(comps.len(), 3);
        let all: Vec<usize> = comps.into_iter().flatten().collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
