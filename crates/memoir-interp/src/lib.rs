//! # memoir-interp
//!
//! An interpreter for the MEMOIR IR (both the mut form and the SSA form)
//! with:
//!
//! * **undefined-behaviour trapping** — reading uninitialized elements,
//!   absent keys, or out-of-range indices traps (§IV-B makes these UB; the
//!   interpreter acts as a sanitizer), which makes differential testing of
//!   transformations strict;
//! * **copy accounting** — the `collection_copies` counter demonstrates
//!   Table III's claim that SSA construction + destruction introduces no
//!   spurious copies;
//! * **a deterministic cost model** — an execution-"time" proxy under
//!   which the paper's complexity-level effects reproduce without
//!   hardware (see [`stats`]).
//!
//! Memory (max RSS) is measured by the runtime-library twin
//! (`memoir-runtime`), not here — see DESIGN.md §2.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod machine;
pub mod stats;
mod value;

pub use machine::{const_value, ExternFn, Interp, Trap};
pub use stats::ExecStats;
pub use value::{CollId, Collection, Key, ObjId, Object, Store, Value};
