//! The execution engine.
//!
//! Executes MEMOIR functions in either program form:
//!
//! * **mut form** — `mut.*` instructions update collection storage in
//!   place; collections passed by value are deep-copied at the call (the
//!   MUT library's value semantics), by-reference parameters alias the
//!   caller's storage.
//! * **SSA form** — every collection update allocates a fresh collection
//!   (the naïve but faithful semantics of immutable collection values).
//!   SSA destruction exists precisely to remove these copies; the
//!   interpreter's copy counter demonstrates it.
//!
//! Undefined behaviour per the paper (§IV-B) — reading uninitialized
//! elements, absent keys, or out-of-range indices — raises a [`Trap`]
//! instead of producing garbage, which makes differential testing strict.

use crate::stats::ExecStats;
use crate::value::{CollId, Collection, Key, Store, Value};
use memoir_ir::{
    BinOp, BlockId, Callee, CmpOp, Constant, FuncId, Function, InstKind, Module, Repr, ReprChoices,
    Type, ValueDef, ValueId,
};
use std::collections::HashMap;
use std::fmt;

/// An execution failure.
#[derive(Clone, Debug, PartialEq)]
pub enum Trap {
    /// Read of an uninitialized element (undefined behaviour, §IV-B).
    ReadUninit,
    /// Sequence index out of range.
    OutOfRange {
        /// The offending index.
        index: u64,
        /// The sequence length.
        len: u64,
    },
    /// Associative access with an absent key.
    MissingKey,
    /// Integer division/remainder by zero.
    DivByZero,
    /// `unreachable` executed.
    Unreachable,
    /// Access through a deleted or null object reference.
    BadReference,
    /// Execution exceeded the fuel limit.
    OutOfFuel,
    /// Call of an unregistered extern.
    UnknownExtern(String),
    /// Internal type confusion (verifier should have rejected the module).
    TypeConfusion(&'static str),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::ReadUninit => write!(f, "read of uninitialized element"),
            Trap::OutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            Trap::MissingKey => write!(f, "key not present in associative array"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::Unreachable => write!(f, "reached `unreachable`"),
            Trap::BadReference => write!(f, "null or deleted object reference"),
            Trap::OutOfFuel => write!(f, "execution exceeded fuel limit"),
            Trap::UnknownExtern(n) => write!(f, "unknown extern `{n}`"),
            Trap::TypeConfusion(m) => write!(f, "type confusion: {m}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Host implementation of an extern function.
pub type ExternFn = Box<dyn FnMut(&mut Store, &[Value]) -> Result<Vec<Value>, Trap>>;

/// The interpreter.
pub struct Interp<'m> {
    module: &'m Module,
    /// The heap.
    pub store: Store,
    externs: HashMap<String, ExternFn>,
    /// Accumulated statistics.
    pub stats: ExecStats,
    fuel: u64,
    /// Adaptive representation choices per allocation site (opt-in via
    /// [`Interp::with_repr_choices`]; affects cost accounting only).
    repr_choices: ReprChoices,
}

impl fmt::Debug for Interp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("module", &self.module.name)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'m> Interp<'m> {
    /// Creates an interpreter over a module with the default fuel budget
    /// (100 million instructions).
    pub fn new(module: &'m Module) -> Self {
        Interp {
            module,
            store: Store::default(),
            externs: HashMap::new(),
            stats: ExecStats::default(),
            fuel: 100_000_000,
            repr_choices: ReprChoices::default(),
        }
    }

    /// Overrides the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Enables adaptive-representation cost accounting: collections
    /// allocated at the given sites are tagged with their chosen
    /// representation and charge that representation's (cheaper) per-op
    /// costs. Semantics are unchanged — only `stats.cost` differs — so
    /// observable outputs are byte-identical to a run without choices.
    pub fn with_repr_choices(mut self, choices: ReprChoices) -> Self {
        self.repr_choices = choices;
        self
    }

    /// Registers a host implementation for an extern.
    pub fn register_extern(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Store, &[Value]) -> Result<Vec<Value>, Trap> + 'static,
    ) {
        self.externs.insert(name.into(), Box::new(f));
    }

    /// Convenience: allocates a sequence in the store from values.
    pub fn alloc_seq(&mut self, elems: Vec<Value>) -> Value {
        let id = self.store.alloc_coll(Collection::Seq(elems));
        Value::Coll(id)
    }

    /// Reads out a sequence as a vector of values.
    pub fn seq_values(&self, v: &Value) -> Option<Vec<Value>> {
        match self.store.coll(v.as_coll()?) {
            Collection::Seq(e) => Some(e.clone()),
            _ => None,
        }
    }

    /// Runs a function by id with the given arguments.
    pub fn run(&mut self, fid: FuncId, args: Vec<Value>) -> Result<Vec<Value>, Trap> {
        self.call_function(fid, args)
    }

    /// Runs a function by name.
    pub fn run_by_name(&mut self, name: &str, args: Vec<Value>) -> Result<Vec<Value>, Trap> {
        let fid = self
            .module
            .func_by_name(name)
            .unwrap_or_else(|| panic!("no function named `{name}`"));
        self.run(fid, args)
    }

    fn call_function(&mut self, fid: FuncId, mut args: Vec<Value>) -> Result<Vec<Value>, Trap> {
        let f = &self.module.funcs[fid];
        self.stats.call();
        // Value semantics: by-value collection arguments are deep copies in
        // mut form (the MUT library mirrors C++). SSA-form functions never
        // mutate their inputs, so the copy is skipped (and ARGφ/RETφ flow
        // returns updated collections explicitly).
        if f.form == memoir_ir::Form::Mut {
            for (i, a) in args.iter_mut().enumerate() {
                if let (Some(p), Value::Coll(c)) = (f.params.get(i), a.clone()) {
                    if !p.by_ref {
                        let (copy, n) = self.store.clone_coll(c);
                        self.stats.copy(n as u64);
                        self.charge_alloc_bytes(copy);
                        *a = Value::Coll(copy);
                    }
                }
            }
        }

        let mut env: HashMap<ValueId, Value> = HashMap::new();
        for (i, &pv) in f.param_values.iter().enumerate() {
            env.insert(
                pv,
                args.get(i)
                    .cloned()
                    .ok_or(Trap::TypeConfusion("missing argument"))?,
            );
        }

        let mut block = f.entry;
        let mut prev: Option<BlockId> = None;
        loop {
            // Evaluate φs as a parallel copy using the incoming edge.
            let insts = f.blocks[block].insts.clone();
            let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
            let mut idx = 0;
            while idx < insts.len() {
                let inst = &f.insts[insts[idx]];
                if let InstKind::Phi { incoming } = &inst.kind {
                    let pred = prev.ok_or(Trap::TypeConfusion("phi in entry block"))?;
                    let (_, v) = incoming
                        .iter()
                        .find(|(b, _)| *b == pred)
                        .ok_or(Trap::TypeConfusion("phi missing incoming"))?;
                    let val = self.eval(f, &env, *v)?;
                    self.stats.scalar();
                    phi_updates.push((inst.results[0], val));
                    idx += 1;
                } else {
                    break;
                }
            }
            for (r, v) in phi_updates {
                env.insert(r, v);
            }

            // Execute the rest of the block.
            let mut next: Option<BlockId> = None;
            for &iid in &insts[idx..] {
                if self.stats.insts >= self.fuel {
                    return Err(Trap::OutOfFuel);
                }
                let inst = f.insts[iid].clone();
                match self.exec(f, &mut env, &inst.kind)? {
                    Control::Next(values) => {
                        // Tag collections allocated at sites with an
                        // adaptive representation choice.
                        if !self.repr_choices.is_empty()
                            && matches!(
                                inst.kind,
                                InstKind::NewSeq { .. } | InstKind::NewAssoc { .. }
                            )
                        {
                            if let Some(r) = self.repr_choices.get(&(fid, iid)).copied() {
                                if let Some(Value::Coll(id)) = values.first() {
                                    self.store.reprs.insert(*id, r);
                                }
                            }
                        }
                        for (r, v) in inst.results.iter().zip(values) {
                            env.insert(*r, v);
                        }
                    }
                    Control::Jump(b) => {
                        next = Some(b);
                        break;
                    }
                    Control::Return(vals) => return Ok(vals),
                }
            }
            match next {
                Some(b) => {
                    prev = Some(block);
                    block = b;
                }
                None => return Err(Trap::TypeConfusion("block fell through")),
            }
        }
    }

    fn eval(&self, f: &Function, env: &HashMap<ValueId, Value>, v: ValueId) -> Result<Value, Trap> {
        match &f.values[v].def {
            ValueDef::Const(c) => Ok(const_value(*c)),
            _ => env
                .get(&v)
                .cloned()
                .ok_or(Trap::TypeConfusion("unbound value")),
        }
    }

    fn coll_arg(
        &self,
        f: &Function,
        env: &HashMap<ValueId, Value>,
        v: ValueId,
    ) -> Result<CollId, Trap> {
        self.eval(f, env, v)?
            .as_coll()
            .ok_or(Trap::TypeConfusion("expected collection"))
    }

    fn index_arg(
        &self,
        f: &Function,
        env: &HashMap<ValueId, Value>,
        v: ValueId,
    ) -> Result<u64, Trap> {
        self.eval(f, env, v)?
            .as_index()
            .ok_or(Trap::TypeConfusion("expected index"))
    }

    fn charge_alloc_bytes(&mut self, id: CollId) {
        let bytes = match self.store.coll(id) {
            Collection::Seq(v) => 32 + 8 * v.len() as u64,
            Collection::Assoc { map, .. } => 48 + 24 * map.len() as u64,
        };
        self.stats.alloc(self.store.coll(id).len() as u64, bytes);
    }

    fn exec(
        &mut self,
        f: &Function,
        env: &mut HashMap<ValueId, Value>,
        kind: &InstKind,
    ) -> Result<Control, Trap> {
        use InstKind::*;
        Ok(match kind {
            Bin { op, lhs, rhs } => {
                self.stats.scalar();
                let a = self.eval(f, env, *lhs)?;
                let b = self.eval(f, env, *rhs)?;
                Control::Next(vec![exec_bin(*op, &a, &b)?])
            }
            Cmp { op, lhs, rhs } => {
                self.stats.scalar();
                let a = self.eval(f, env, *lhs)?;
                let b = self.eval(f, env, *rhs)?;
                Control::Next(vec![Value::Bool(exec_cmp(*op, &a, &b)?)])
            }
            Cast { to, value } => {
                self.stats.scalar();
                let v = self.eval(f, env, *value)?;
                Control::Next(vec![exec_cast(self.module.types.get(*to), &v)?])
            }
            Select {
                cond,
                then_value,
                else_value,
            } => {
                self.stats.scalar();
                let c = self
                    .eval(f, env, *cond)?
                    .as_bool()
                    .ok_or(Trap::TypeConfusion("select"))?;
                let v = if c {
                    self.eval(f, env, *then_value)?
                } else {
                    self.eval(f, env, *else_value)?
                };
                Control::Next(vec![v])
            }
            Phi { .. } => return Err(Trap::TypeConfusion("phi outside block head")),
            Call { callee, args } => {
                let argv: Vec<Value> = args
                    .iter()
                    .map(|&a| self.eval(f, env, a))
                    .collect::<Result<_, _>>()?;
                match callee {
                    Callee::Func(fid) => {
                        let rets = self.call_function(*fid, argv)?;
                        Control::Next(rets)
                    }
                    Callee::Extern(eid) => {
                        self.stats.call();
                        let name = self.module.externs[*eid].name.clone();
                        let mut host = self
                            .externs
                            .remove(&name)
                            .ok_or_else(|| Trap::UnknownExtern(name.clone()))?;
                        let result = host(&mut self.store, &argv);
                        self.externs.insert(name, host);
                        Control::Next(result?)
                    }
                }
            }
            Jump { target } => {
                self.stats.scalar();
                Control::Jump(*target)
            }
            Branch {
                cond,
                then_target,
                else_target,
            } => {
                self.stats.scalar();
                let c = self
                    .eval(f, env, *cond)?
                    .as_bool()
                    .ok_or(Trap::TypeConfusion("branch"))?;
                Control::Jump(if c { *then_target } else { *else_target })
            }
            Ret { values } => {
                let vals: Vec<Value> = values
                    .iter()
                    .map(|&v| self.eval(f, env, v))
                    .collect::<Result<_, _>>()?;
                Control::Return(vals)
            }
            Unreachable => return Err(Trap::Unreachable),

            NewSeq { len, .. } => {
                let n = self.index_arg(f, env, *len)?;
                let id = self
                    .store
                    .alloc_coll(Collection::Seq(vec![Value::Uninit; n as usize]));
                self.charge_alloc_bytes(id);
                Control::Next(vec![Value::Coll(id)])
            }
            NewAssoc { .. } => {
                let id = self.store.alloc_coll(Collection::new_assoc());
                self.charge_alloc_bytes(id);
                Control::Next(vec![Value::Coll(id)])
            }
            NewObj { obj } => {
                let nfields = self.module.types.object(*obj).fields.len();
                let bytes = self.module.types.object_layout(*obj).size + 16;
                self.stats.alloc(0, bytes);
                let id = self.store.alloc_obj(*obj, nfields);
                Control::Next(vec![Value::Ref(*obj, Some(id))])
            }
            DeleteObj { obj } => {
                self.stats.scalar();
                let v = self.eval(f, env, *obj)?;
                match v {
                    Value::Ref(_, Some(id)) => {
                        self.store.objects[id.0 as usize].fields = None;
                        Control::Next(vec![])
                    }
                    _ => return Err(Trap::BadReference),
                }
            }

            Read { c, idx } => {
                let cid = self.coll_arg(f, env, *c)?;
                let iv = self.eval(f, env, *idx)?;
                let v = self.read_element(cid, &iv)?;
                Control::Next(vec![v])
            }
            Write { c, idx, value } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let iv = self.eval(f, env, *idx)?;
                let vv = self.eval(f, env, *value)?;
                self.write_element(copy, &iv, vv)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutWrite { c, idx, value } => {
                let cid = self.coll_arg(f, env, *c)?;
                let iv = self.eval(f, env, *idx)?;
                let vv = self.eval(f, env, *value)?;
                self.write_element(cid, &iv, vv)?;
                Control::Next(vec![])
            }
            Rmw { c, idx, op, value } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let iv = self.eval(f, env, *idx)?;
                let vv = self.eval(f, env, *value)?;
                self.rmw_element(copy, &iv, *op, &vv)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutRmw { c, idx, op, value } => {
                let cid = self.coll_arg(f, env, *c)?;
                let iv = self.eval(f, env, *idx)?;
                let vv = self.eval(f, env, *value)?;
                self.rmw_element(cid, &iv, *op, &vv)?;
                Control::Next(vec![])
            }
            Insert { c, idx, value } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let iv = self.eval(f, env, *idx)?;
                let vv = match value {
                    Some(v) => Some(self.eval(f, env, *v)?),
                    None => None,
                };
                self.insert_element(copy, &iv, vv)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutInsert { c, idx, value } => {
                let cid = self.coll_arg(f, env, *c)?;
                let iv = self.eval(f, env, *idx)?;
                let vv = match value {
                    Some(v) => Some(self.eval(f, env, *v)?),
                    None => None,
                };
                self.insert_element(cid, &iv, vv)?;
                Control::Next(vec![])
            }
            InsertSeq { c, idx, src } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let i = self.index_arg(f, env, *idx)?;
                let sid = self.coll_arg(f, env, *src)?;
                self.splice(copy, i, sid)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutInsertSeq { c, idx, src } => {
                let cid = self.coll_arg(f, env, *c)?;
                let i = self.index_arg(f, env, *idx)?;
                let sid = self.coll_arg(f, env, *src)?;
                self.splice(cid, i, sid)?;
                Control::Next(vec![])
            }
            MutAppend { c, src } => {
                let cid = self.coll_arg(f, env, *c)?;
                let at = self.store.coll(cid).len() as u64;
                let sid = self.coll_arg(f, env, *src)?;
                self.splice(cid, at, sid)?;
                Control::Next(vec![])
            }
            Remove { c, idx } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let iv = self.eval(f, env, *idx)?;
                self.remove_element(copy, &iv)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutRemove { c, idx } => {
                let cid = self.coll_arg(f, env, *c)?;
                let iv = self.eval(f, env, *idx)?;
                self.remove_element(cid, &iv)?;
                Control::Next(vec![])
            }
            RemoveRange { c, from, to } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let (a, b) = (self.index_arg(f, env, *from)?, self.index_arg(f, env, *to)?);
                self.remove_range(copy, a, b)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutRemoveRange { c, from, to } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (a, b) = (self.index_arg(f, env, *from)?, self.index_arg(f, env, *to)?);
                self.remove_range(cid, a, b)?;
                Control::Next(vec![])
            }
            Copy { c } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                Control::Next(vec![Value::Coll(copy)])
            }
            CopyRange { c, from, to } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (a, b) = (self.index_arg(f, env, *from)?, self.index_arg(f, env, *to)?);
                let Collection::Seq(elems) = self.store.coll(cid) else {
                    return Err(Trap::TypeConfusion("copy.range on assoc"));
                };
                let len = elems.len() as u64;
                if a > b || b > len {
                    return Err(Trap::OutOfRange { index: b, len });
                }
                let slice = elems[a as usize..b as usize].to_vec();
                let n = slice.len() as u64;
                let id = self.store.alloc_coll(Collection::Seq(slice));
                self.stats.copy(n);
                self.charge_alloc_bytes(id);
                Control::Next(vec![Value::Coll(id)])
            }
            MutSplit { c, from, to } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (a, b) = (self.index_arg(f, env, *from)?, self.index_arg(f, env, *to)?);
                let Collection::Seq(elems) = self.store.coll_mut(cid) else {
                    return Err(Trap::TypeConfusion("split on assoc"));
                };
                let len = elems.len() as u64;
                if a > b || b > len {
                    return Err(Trap::OutOfRange { index: b, len });
                }
                let split: Vec<Value> = elems.drain(a as usize..b as usize).collect();
                let n = split.len() as u64;
                let id = self.store.alloc_coll(Collection::Seq(split));
                self.stats.copy(n);
                self.stats.moved(len - b);
                self.charge_alloc_bytes(id);
                Control::Next(vec![Value::Coll(id)])
            }
            Swap { c, from, to, at } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (copy, n) = self.store.clone_coll(cid);
                self.stats.copy(n as u64);
                self.charge_alloc_bytes(copy);
                let (a, b, k) = (
                    self.index_arg(f, env, *from)?,
                    self.index_arg(f, env, *to)?,
                    self.index_arg(f, env, *at)?,
                );
                self.swap_ranges(copy, a, b, k)?;
                Control::Next(vec![Value::Coll(copy)])
            }
            MutSwap { c, from, to, at } => {
                let cid = self.coll_arg(f, env, *c)?;
                let (a, b, k) = (
                    self.index_arg(f, env, *from)?,
                    self.index_arg(f, env, *to)?,
                    self.index_arg(f, env, *at)?,
                );
                self.swap_ranges(cid, a, b, k)?;
                Control::Next(vec![])
            }
            Swap2 { a, from, to, b, at } => {
                let aid = self.coll_arg(f, env, *a)?;
                let bid = self.coll_arg(f, env, *b)?;
                let (ca, na) = self.store.clone_coll(aid);
                let (cb, nb) = self.store.clone_coll(bid);
                self.stats.copy(na as u64);
                self.stats.copy(nb as u64);
                self.charge_alloc_bytes(ca);
                self.charge_alloc_bytes(cb);
                let (x, y, k) = (
                    self.index_arg(f, env, *from)?,
                    self.index_arg(f, env, *to)?,
                    self.index_arg(f, env, *at)?,
                );
                self.swap_across(ca, cb, x, y, k)?;
                Control::Next(vec![Value::Coll(ca), Value::Coll(cb)])
            }
            MutSwap2 { a, from, to, b, at } => {
                let aid = self.coll_arg(f, env, *a)?;
                let bid = self.coll_arg(f, env, *b)?;
                let (x, y, k) = (
                    self.index_arg(f, env, *from)?,
                    self.index_arg(f, env, *to)?,
                    self.index_arg(f, env, *at)?,
                );
                self.swap_across(aid, bid, x, y, k)?;
                Control::Next(vec![])
            }
            Size { c } => {
                self.stats.scalar();
                let cid = self.coll_arg(f, env, *c)?;
                Control::Next(vec![Value::Int(
                    Type::Index,
                    self.store.coll(cid).len() as i64,
                )])
            }
            Has { c, key } => {
                let cid = self.coll_arg(f, env, *c)?;
                if matches!(self.store.repr_of(cid), Repr::Dense { .. }) {
                    self.stats.dense_access(false);
                } else {
                    self.stats.assoc_op(false);
                }
                let kv = self.eval(f, env, *key)?;
                let k = Key::from_value(&kv).ok_or(Trap::TypeConfusion("bad key"))?;
                let Collection::Assoc { map, .. } = self.store.coll(cid) else {
                    return Err(Trap::TypeConfusion("has on sequence"));
                };
                Control::Next(vec![Value::Bool(map.contains_key(&k))])
            }
            Keys { c } => {
                let cid = self.coll_arg(f, env, *c)?;
                let key_ty = match self.module.types.get(f.value_ty(*c)) {
                    Type::Assoc(k, _) => self.module.types.get(k),
                    _ => return Err(Trap::TypeConfusion("keys on sequence")),
                };
                let Collection::Assoc { order, map } = self.store.coll(cid) else {
                    return Err(Trap::TypeConfusion("keys on sequence"));
                };
                let elems: Vec<Value> = order
                    .iter()
                    .filter(|k| map.contains_key(k))
                    .map(|k| k.to_value(key_ty))
                    .collect();
                let n = elems.len() as u64;
                let id = self.store.alloc_coll(Collection::Seq(elems));
                self.stats.copy(n);
                self.charge_alloc_bytes(id);
                Control::Next(vec![Value::Coll(id)])
            }
            UsePhi { c } => {
                self.stats.scalar();
                let v = self.eval(f, env, *c)?;
                Control::Next(vec![v])
            }
            FieldRead { obj, obj_ty, field } => {
                let bytes = self.module.types.object_layout(*obj_ty).size;
                self.stats.field_op(bytes);
                let v = self.eval(f, env, *obj)?;
                let Value::Ref(_, Some(id)) = v else {
                    return Err(Trap::BadReference);
                };
                let fields = self.store.objects[id.0 as usize]
                    .fields
                    .as_ref()
                    .ok_or(Trap::BadReference)?;
                let fv = fields[*field as usize].clone();
                if fv == Value::Uninit {
                    return Err(Trap::ReadUninit);
                }
                Control::Next(vec![fv])
            }
            FieldWrite {
                obj,
                obj_ty,
                field,
                value,
            } => {
                let bytes = self.module.types.object_layout(*obj_ty).size;
                self.stats.field_op(bytes);
                let v = self.eval(f, env, *obj)?;
                let fv = self.eval(f, env, *value)?;
                let Value::Ref(_, Some(id)) = v else {
                    return Err(Trap::BadReference);
                };
                let fields = self.store.objects[id.0 as usize]
                    .fields
                    .as_mut()
                    .ok_or(Trap::BadReference)?;
                fields[*field as usize] = fv;
                Control::Next(vec![])
            }
        })
    }

    /// Fused read-modify-write of one element: reads (with `read`'s trap
    /// behaviour — the element must be present and initialized), combines
    /// via `op`, and writes back, charging a single fused storage cost.
    fn rmw_element(&mut self, cid: CollId, idx: &Value, op: BinOp, v: &Value) -> Result<(), Trap> {
        let repr = self.store.repr_of(cid);
        match self.store.coll_mut(cid) {
            Collection::Seq(elems) => {
                let i = idx.as_index().ok_or(Trap::TypeConfusion("seq index"))?;
                let len = elems.len() as u64;
                let slot = elems
                    .get_mut(i as usize)
                    .ok_or(Trap::OutOfRange { index: i, len })?;
                if *slot == Value::Uninit {
                    return Err(Trap::ReadUninit);
                }
                *slot = exec_bin(op, slot, v)?;
                self.stats.seq_rmw();
                Ok(())
            }
            Collection::Assoc { map, .. } => {
                let k = Key::from_value(idx).ok_or(Trap::TypeConfusion("bad key"))?;
                let slot = map.get_mut(&k).ok_or(Trap::MissingKey)?;
                if *slot == Value::Uninit {
                    return Err(Trap::ReadUninit);
                }
                *slot = exec_bin(op, slot, v)?;
                if matches!(repr, Repr::Dense { .. }) {
                    self.stats.dense_rmw();
                } else {
                    self.stats.assoc_rmw();
                }
                Ok(())
            }
        }
    }

    fn read_element(&mut self, cid: CollId, idx: &Value) -> Result<Value, Trap> {
        let repr = self.store.repr_of(cid);
        match self.store.coll(cid) {
            Collection::Seq(elems) => {
                if matches!(repr, Repr::Inline { .. }) {
                    self.stats.inline_access(false);
                } else {
                    self.stats.seq_access(false);
                }
                let i = idx.as_index().ok_or(Trap::TypeConfusion("seq index"))?;
                let len = elems.len() as u64;
                let v = elems
                    .get(i as usize)
                    .cloned()
                    .ok_or(Trap::OutOfRange { index: i, len })?;
                if v == Value::Uninit {
                    return Err(Trap::ReadUninit);
                }
                Ok(v)
            }
            Collection::Assoc { map, .. } => {
                if matches!(repr, Repr::Dense { .. }) {
                    self.stats.dense_access(false);
                } else {
                    self.stats.assoc_op(false);
                }
                let k = Key::from_value(idx).ok_or(Trap::TypeConfusion("bad key"))?;
                let v = map.get(&k).cloned().ok_or(Trap::MissingKey)?;
                if v == Value::Uninit {
                    return Err(Trap::ReadUninit);
                }
                Ok(v)
            }
        }
    }

    fn write_element(&mut self, cid: CollId, idx: &Value, v: Value) -> Result<(), Trap> {
        let repr = self.store.repr_of(cid);
        match self.store.coll_mut(cid) {
            Collection::Seq(elems) => {
                let i = idx.as_index().ok_or(Trap::TypeConfusion("seq index"))?;
                let len = elems.len() as u64;
                let slot = elems
                    .get_mut(i as usize)
                    .ok_or(Trap::OutOfRange { index: i, len })?;
                *slot = v;
                if matches!(repr, Repr::Inline { .. }) {
                    self.stats.inline_access(true);
                } else {
                    self.stats.seq_access(true);
                }
                Ok(())
            }
            Collection::Assoc { map, order } => {
                let k = Key::from_value(idx).ok_or(Trap::TypeConfusion("bad key"))?;
                if !map.contains_key(&k) {
                    order.push(k.clone());
                }
                map.insert(k, v);
                if matches!(repr, Repr::Dense { .. }) {
                    self.stats.dense_access(true);
                } else {
                    self.stats.assoc_op(true);
                }
                Ok(())
            }
        }
    }

    fn insert_element(&mut self, cid: CollId, idx: &Value, v: Option<Value>) -> Result<(), Trap> {
        let repr = self.store.repr_of(cid);
        match self.store.coll_mut(cid) {
            Collection::Seq(elems) => {
                let i = idx.as_index().ok_or(Trap::TypeConfusion("seq index"))?;
                let len = elems.len() as u64;
                if i > len {
                    return Err(Trap::OutOfRange { index: i, len });
                }
                elems.insert(i as usize, v.unwrap_or(Value::Uninit));
                let moved = len - i;
                self.stats.seq_access(true);
                self.stats.moved(moved);
                Ok(())
            }
            Collection::Assoc { map, order } => {
                let k = Key::from_value(idx).ok_or(Trap::TypeConfusion("bad key"))?;
                if !map.contains_key(&k) {
                    order.push(k.clone());
                }
                map.insert(k, v.unwrap_or(Value::Uninit));
                if matches!(repr, Repr::Dense { .. }) {
                    self.stats.dense_access(true);
                } else {
                    self.stats.assoc_op(true);
                }
                Ok(())
            }
        }
    }

    fn remove_element(&mut self, cid: CollId, idx: &Value) -> Result<(), Trap> {
        let repr = self.store.repr_of(cid);
        match self.store.coll_mut(cid) {
            Collection::Seq(elems) => {
                let i = idx.as_index().ok_or(Trap::TypeConfusion("seq index"))?;
                let len = elems.len() as u64;
                if i >= len {
                    return Err(Trap::OutOfRange { index: i, len });
                }
                elems.remove(i as usize);
                self.stats.seq_access(true);
                self.stats.moved(len - i - 1);
                Ok(())
            }
            Collection::Assoc { map, order } => {
                let k = Key::from_value(idx).ok_or(Trap::TypeConfusion("bad key"))?;
                if map.remove(&k).is_none() {
                    return Err(Trap::MissingKey);
                }
                order.retain(|x| x != &k);
                if matches!(repr, Repr::Dense { .. }) {
                    self.stats.dense_access(true);
                } else {
                    self.stats.assoc_op(false);
                }
                Ok(())
            }
        }
    }

    fn remove_range(&mut self, cid: CollId, from: u64, to: u64) -> Result<(), Trap> {
        let Collection::Seq(elems) = self.store.coll_mut(cid) else {
            return Err(Trap::TypeConfusion("remove.range on assoc"));
        };
        let len = elems.len() as u64;
        if from > to || to > len {
            return Err(Trap::OutOfRange { index: to, len });
        }
        elems.drain(from as usize..to as usize);
        self.stats.moved(len - to);
        Ok(())
    }

    fn splice(&mut self, dst: CollId, at: u64, src: CollId) -> Result<(), Trap> {
        let src_elems = match self.store.coll(src) {
            Collection::Seq(e) => e.clone(),
            _ => return Err(Trap::TypeConfusion("splice from assoc")),
        };
        let Collection::Seq(elems) = self.store.coll_mut(dst) else {
            return Err(Trap::TypeConfusion("splice into assoc"));
        };
        let len = elems.len() as u64;
        if at > len {
            return Err(Trap::OutOfRange { index: at, len });
        }
        let n = src_elems.len() as u64;
        let tail = len - at;
        elems.splice(at as usize..at as usize, src_elems);
        self.stats.moved(n + tail);
        Ok(())
    }

    fn swap_ranges(&mut self, cid: CollId, from: u64, to: u64, at: u64) -> Result<(), Trap> {
        let Collection::Seq(elems) = self.store.coll_mut(cid) else {
            return Err(Trap::TypeConfusion("swap on assoc"));
        };
        let len = elems.len() as u64;
        let width = to
            .checked_sub(from)
            .ok_or(Trap::OutOfRange { index: from, len })?;
        if to > len || at + width > len {
            return Err(Trap::OutOfRange {
                index: at + width,
                len,
            });
        }
        for k in 0..width {
            elems.swap((from + k) as usize, (at + k) as usize);
        }
        self.stats.moved(2 * width);
        Ok(())
    }

    fn swap_across(
        &mut self,
        a: CollId,
        b: CollId,
        from: u64,
        to: u64,
        at: u64,
    ) -> Result<(), Trap> {
        if a == b {
            return self.swap_ranges(a, from, to, at);
        }
        let width = to.checked_sub(from).ok_or(Trap::OutOfRange {
            index: from,
            len: 0,
        })?;
        // Split-borrow the two collections.
        let (x, y) = {
            let (lo, hi) = if a.0 < b.0 { (a, b) } else { (b, a) };
            let (first, second) = self.store.collections.split_at_mut(hi.0 as usize);
            let xa = &mut first[lo.0 as usize];
            let xb = &mut second[0];
            if a.0 < b.0 {
                (xa, xb)
            } else {
                (xb, xa)
            }
        };
        let (Collection::Seq(ea), Collection::Seq(eb)) = (x, y) else {
            return Err(Trap::TypeConfusion("swap2 on assoc"));
        };
        if to > ea.len() as u64 || at + width > eb.len() as u64 {
            return Err(Trap::OutOfRange {
                index: at + width,
                len: eb.len() as u64,
            });
        }
        for k in 0..width {
            std::mem::swap(&mut ea[(from + k) as usize], &mut eb[(at + k) as usize]);
        }
        self.stats.moved(2 * width);
        Ok(())
    }
}

enum Control {
    Next(Vec<Value>),
    Jump(BlockId),
    Return(Vec<Value>),
}

/// Materializes a constant.
pub fn const_value(c: Constant) -> Value {
    match c {
        Constant::Int(ty, v) => Value::Int(ty, v),
        Constant::Float(ty, bits) => Value::Float(ty, f64::from_bits(bits)),
        Constant::Bool(b) => Value::Bool(b),
        Constant::Null(obj) => Value::Ref(obj, None),
    }
}

fn exec_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value, Trap> {
    match (a, b) {
        (Value::Int(ta, x), Value::Int(_, y)) => {
            let (x, y) = (*x, *y);
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(Trap::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(Trap::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32),
                BinOp::Shr => x.wrapping_shr(y as u32),
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            };
            Ok(Value::Int(*ta, truncate(*ta, v)))
        }
        (Value::Float(ta, x), Value::Float(_, y)) => {
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(*y),
                BinOp::Max => x.max(*y),
                _ => return Err(Trap::TypeConfusion("bitwise op on float")),
            };
            Ok(Value::Float(*ta, v))
        }
        (Value::Bool(x), Value::Bool(y)) => {
            let v = match op {
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                _ => return Err(Trap::TypeConfusion("arith on bool")),
            };
            Ok(Value::Bool(v))
        }
        _ => Err(Trap::TypeConfusion("bin operand types")),
    }
}

fn exec_cmp(op: CmpOp, a: &Value, b: &Value) -> Result<bool, Trap> {
    let ord = match (a, b) {
        (Value::Int(ta, x), Value::Int(_, y)) => {
            if is_unsigned(*ta) {
                (*x as u64).cmp(&(*y as u64))
            } else {
                x.cmp(y)
            }
        }
        (Value::Float(_, x), Value::Float(_, y)) => {
            return Ok(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            })
        }
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Ref(_, x), Value::Ref(_, y)) => x.cmp(y),
        (Value::Ptr(x), Value::Ptr(y)) => x.cmp(y),
        _ => return Err(Trap::TypeConfusion("cmp operand types")),
    };
    Ok(match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    })
}

fn exec_cast(to: Type, v: &Value) -> Result<Value, Trap> {
    Ok(match (to, v) {
        (t, Value::Int(_, x)) if t.is_integer() => Value::Int(t, truncate(t, *x)),
        (t, Value::Int(_, x)) if t.is_float() => Value::Float(t, *x as f64),
        (t, Value::Float(_, x)) if t.is_integer() => Value::Int(t, truncate(t, *x as i64)),
        (t, Value::Float(_, x)) if t.is_float() => Value::Float(t, *x),
        (t, Value::Bool(b)) if t.is_integer() => Value::Int(t, *b as i64),
        (Type::Bool, Value::Int(_, x)) => Value::Bool(*x != 0),
        _ => return Err(Trap::TypeConfusion("cast")),
    })
}

fn is_unsigned(t: Type) -> bool {
    matches!(
        t,
        Type::U64 | Type::U32 | Type::U16 | Type::U8 | Type::Index
    )
}

fn truncate(t: Type, v: i64) -> i64 {
    match t {
        Type::I8 => v as i8 as i64,
        Type::U8 => v as u8 as i64,
        Type::I16 => v as i16 as i64,
        Type::U16 => v as u16 as i64,
        Type::I32 => v as i32 as i64,
        Type::U32 => v as u32 as i64,
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder};

    fn run_main(m: &Module, args: Vec<Value>) -> Result<(Vec<Value>, ExecStats), Trap> {
        let mut interp = Interp::new(m);
        let r = interp.run_by_name("main", args)?;
        Ok((r, interp.stats))
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 0..n
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(t);
            let acc = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(acc, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, n);
            b.branch(done, exit, body);
            b.switch_to(body);
            let acc2 = b.add(acc, i);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.add_phi_incoming(acc, bb, acc2);
            b.jump(header);
            b.switch_to(exit);
            b.returns(&[t]);
            b.ret(vec![acc]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, stats) = run_main(&m, vec![Value::Int(Type::Index, 10)]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::Index, 45)]);
        assert!(stats.insts > 30);
    }

    #[test]
    fn ssa_collection_ops_are_functional() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(2);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v1 = b.i64(10);
            let v2 = b.i64(20);
            let s1 = b.write(s0, zero, v1);
            let s2 = b.write(s1, zero, v2);
            let a = b.read(s1, zero); // must still see 10
            let c = b.read(s2, zero); // sees 20
            let sum = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, stats) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 30)]);
        // Two functional writes ⇒ two collection copies.
        assert_eq!(stats.collection_copies, 2);
    }

    #[test]
    fn mut_ops_update_in_place_without_copies() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(2);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.index(1);
            let v1 = b.i64(10);
            let v2 = b.i64(20);
            b.mut_write(s, zero, v1);
            b.mut_write(s, one, v2);
            let a = b.read(s, zero);
            let c = b.read(s, one);
            let sum = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, stats) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 30)]);
        assert_eq!(stats.collection_copies, 0);
    }

    #[test]
    fn uninitialized_read_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let r = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        let err = run_main(&m, vec![]).unwrap_err();
        assert_eq!(err, Trap::ReadUninit);
    }

    #[test]
    fn assoc_insert_read_has_keys() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i32t = b.ty(Type::I32);
            let i64t = b.ty(Type::I64);
            let a = b.new_assoc(i32t, i64t);
            let k0 = b.i32(42);
            let k1 = b.i32(7);
            let v0 = b.i64(100);
            let v1 = b.i64(200);
            b.mut_write(a, k0, v0);
            b.mut_write(a, k1, v1);
            let ks = b.keys(a);
            let nkeys = b.size(ks);
            let h = b.has(a, k0);
            let hv = b.cast(Type::Index, h);
            let r0 = b.read(a, k0);
            let r0i = b.cast(Type::Index, r0);
            let s1 = b.add(nkeys, hv);
            let s2 = b.add(s1, r0i);
            let idxt = b.ty(Type::Index);
            b.returns(&[idxt]);
            b.ret(vec![s2]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, _) = run_main(&m, vec![]).unwrap();
        // 2 keys + has(1) + value(100) = 103
        assert_eq!(r, vec![Value::Int(Type::Index, 103)]);
    }

    #[test]
    fn missing_key_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i32t = b.ty(Type::I32);
            let i64t = b.ty(Type::I64);
            let a = b.new_assoc(i32t, i64t);
            let k = b.i32(1);
            let r = b.read(a, k);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        assert_eq!(run_main(&m, vec![]).unwrap_err(), Trap::MissingKey);
    }

    #[test]
    fn swap_ranges_in_place() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            for k in 0..4 {
                let ik = b.index(k);
                let vk = b.i64(k as i64);
                b.mut_write(s, ik, vk);
            }
            // swap [0:2) with [2:4) → [2,3,0,1]
            let zero = b.index(0);
            let two = b.index(2);
            b.mut_swap(s, zero, two, two);
            let r0 = b.read(s, zero);
            b.returns(&[i64t]);
            b.ret(vec![r0]);
        });
        let m = mb.finish();
        let (r, _) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 2)]);
    }

    #[test]
    fn by_value_call_copies_by_ref_does_not() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let byval = mb.func("byval", Form::Mut, |b| {
            let s = b.param("s", seqt);
            let zero = b.index(0);
            let v = b.i64(99);
            b.mut_write(s, zero, v);
            b.ret(vec![]);
        });
        let byref = mb.func("byref", Form::Mut, |b| {
            let s = b.param_ref("s", seqt);
            let zero = b.index(0);
            let v = b.i64(77);
            b.mut_write(s, zero, v);
            b.ret(vec![]);
        });
        mb.func("main", Form::Mut, |b| {
            let n = b.index(1);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(1);
            b.mut_write(s, zero, v);
            b.call(Callee::Func(byval), vec![s], &[]); // callee mutates a copy
            let after_byval = b.read(s, zero);
            b.call(Callee::Func(byref), vec![s], &[]); // callee mutates ours
            let after_byref = b.read(s, zero);
            let sum = b.add(after_byval, after_byref);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, stats) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 1 + 77)]);
        assert_eq!(stats.collection_copies, 1, "only the by-value call copies");
    }

    #[test]
    fn extern_host_function() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let ext = mb.module.add_extern(memoir_ir::ExternDecl {
            name: "double_it".into(),
            params: vec![i64t],
            ret_tys: vec![i64t],
            effects: memoir_ir::ExternEffects::pure_reader(),
        });
        mb.func("main", Form::Mut, |b| {
            let x = b.i64(21);
            let r = b.call(Callee::Extern(ext), vec![x], &[i64t]);
            b.returns(&[i64t]);
            b.ret(vec![r[0]]);
        });
        let m = mb.finish();
        let mut interp = Interp::new(&m);
        interp.register_extern("double_it", |_store, args| {
            let x = args[0].as_int().unwrap();
            Ok(vec![Value::Int(Type::I64, x * 2)])
        });
        let r = interp.run_by_name("main", vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 42)]);
    }

    #[test]
    fn object_field_round_trip_and_delete() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t0",
                vec![memoir_ir::Field {
                    name: "cost".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        mb.func("main", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let v = b.i64(5);
            b.field_write(o, obj, 0, v);
            let r = b.field_read(o, obj, 0);
            b.delete_obj(o);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        let (r, _) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 5)]);
    }

    #[test]
    fn deleted_object_access_traps() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t0",
                vec![memoir_ir::Field {
                    name: "x".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        mb.func("main", Form::Mut, |b| {
            let o = b.new_obj(obj);
            b.delete_obj(o);
            let r = b.field_read(o, obj, 0);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        assert_eq!(run_main(&m, vec![]).unwrap_err(), Trap::BadReference);
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let spin = b.block("spin");
            b.jump(spin);
            b.switch_to(spin);
            b.jump(spin);
        });
        let m = mb.finish();
        let mut interp = Interp::new(&m).with_fuel(1000);
        assert_eq!(
            interp.run_by_name("main", vec![]).unwrap_err(),
            Trap::OutOfFuel
        );
    }

    #[test]
    fn two_sequence_swap_both_forms() {
        // SSA form: both results are fresh; originals unchanged.
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(2);
            let s0 = b.new_seq(i64t, n);
            let s1 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.index(1);
            let two = b.index(2);
            let v1 = b.i64(1);
            let v2 = b.i64(2);
            let a0 = b.write(s0, zero, v1);
            let a1 = b.write(a0, one, v1);
            let b0 = b.write(s1, zero, v2);
            let b1 = b.write(b0, one, v2);
            // Swap the whole [0:2) between them.
            let (na, nb) = b.swap2(a1, zero, two, b1, zero);
            let x = b.read(na, zero); // 2 (from b)
            let y = b.read(nb, one); // 1 (from a)
            let old = b.read(a1, zero); // original untouched: 1
            let s = b.add(x, y);
            let s2 = b.add(s, old);
            b.returns(&[i64t]);
            b.ret(vec![s2]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, _) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 2 + 1 + 1)]);
    }

    #[test]
    fn mut_swap2_in_place() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(3);
            let s0 = b.new_seq(i64t, n);
            let s1 = b.new_seq(i64t, n);
            for k in 0..3 {
                let ik = b.index(k);
                let va = b.i64(10 + k as i64);
                let vb = b.i64(20 + k as i64);
                b.mut_write(s0, ik, va);
                b.mut_write(s1, ik, vb);
            }
            // Swap s0[1:3) with s1[0:2).
            let one = b.index(1);
            let three = b.index(3);
            let zero = b.index(0);
            b.mut_swap2(s0, one, three, s1, zero);
            let a = b.read(s0, one); // 20
            let c = b.read(s1, zero); // 11
            let s = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![s]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, stats) = run_main(&m, vec![]).unwrap();
        assert_eq!(r, vec![Value::Int(Type::I64, 31)]);
        assert_eq!(stats.collection_copies, 0);
    }

    #[test]
    fn copy_range_and_remove_range() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(5);
            let s0 = b.new_seq(i64t, n);
            let mut s = s0;
            for k in 0..5 {
                let ik = b.index(k);
                let vk = b.i64(k as i64);
                s = b.write(s, ik, vk);
            }
            let one = b.index(1);
            let four = b.index(4);
            let mid = b.copy_range(s, one, four); // [1,2,3]
            let trimmed = b.remove_range(s, one, four); // [0,4]
            let zero = b.index(0);
            let a = b.read(mid, zero); // 1
            let c = b.read(trimmed, one); // 4
            let msz = b.size(mid);
            let tsz = b.size(trimmed);
            let acc1 = b.add(a, c);
            let mszi = b.cast(Type::I64, msz);
            let tszi = b.cast(Type::I64, tsz);
            let acc2 = b.add(acc1, mszi);
            let acc3 = b.add(acc2, tszi);
            b.returns(&[i64t]);
            b.ret(vec![acc3]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let (r, _) = run_main(&m, vec![]).unwrap();
        // 1 + 4 + 3 + 2 = 10
        assert_eq!(r, vec![Value::Int(Type::I64, 10)]);
    }

    #[test]
    fn out_of_range_swap_traps() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let three = b.index(3);
            b.mut_swap(s, zero, three, three); // [3:6) out of range
            b.ret(vec![]);
        });
        let m = mb.finish();
        assert!(matches!(
            run_main(&m, vec![]).unwrap_err(),
            Trap::OutOfRange { .. }
        ));
    }

    #[test]
    fn split_and_append() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            for k in 0..4 {
                let ik = b.index(k);
                let vk = b.i64(k as i64 + 1);
                b.mut_write(s, ik, vk);
            }
            // split [1:3) out → s=[1,4], s2=[2,3]; then append s2 → [1,4,2,3]
            let one = b.index(1);
            let three = b.index(3);
            let s2 = b.mut_split(s, one, three);
            b.mut_append(s, s2);
            let sz = b.size(s);
            let idx3 = b.index(3);
            let last = b.read(s, idx3);
            let lasti = b.cast(Type::Index, last);
            let out = b.add(sz, lasti);
            let idxt = b.ty(Type::Index);
            b.returns(&[idxt]);
            b.ret(vec![out]);
        });
        let m = mb.finish();
        let (r, _) = run_main(&m, vec![]).unwrap();
        // size 4 + last element 3 = 7
        assert_eq!(r, vec![Value::Int(Type::Index, 7)]);
    }
}
