//! Execution accounting: instruction counts, copies, and the deterministic
//! cost model.
//!
//! The cost model assigns a deterministic "time" to an execution so that
//! complexity-level effects (e.g. dead element elimination turning mcf's
//! sort from `O(n log n)` into `O(n + B log B)`, §VII-C) reproduce without
//! real hardware. Costs are in abstract cycles:
//!
//! | operation | cost |
//! |---|---|
//! | scalar ALU / compare / φ / branch | 1 |
//! | sequence read/write | 2 |
//! | associative read/write/has (hash + probe) | 8 |
//! | associative insert (amortized growth) | 12 |
//! | field read/write | 1 + ⌈object bytes ⁄ 64⌉ (cache-line factor) |
//! | per element moved (insert/remove/swap/copy/splice) | 1 |
//! | call/return | 6 |
//! | collection allocation | 12 (+1 per reserved element) |
//!
//! ## Fused operations
//!
//! `rmw` (fused read-modify-write, produced by the fusion pass) touches
//! storage once where the unfused `read; bin; write` sequence touches it
//! twice plus an ALU op:
//!
//! | operation | fused cost | unfused equivalent |
//! |---|---|---|
//! | sequence `rmw` | 3 | 2 (read) + 1 (bin) + 2 (write) = 5 |
//! | associative `rmw` (one hash + probe) | 9 | 8 + 1 + 8 = 17 |
//! | dense-repr `rmw` | 3 | 2 + 1 + 2 = 5 |
//!
//! ## Per-representation costs (adaptive representation selection)
//!
//! When the interpreter is given a `ReprChoices` map
//! (opt-in; default off so baselines stay comparable), collections tagged
//! with a non-default representation charge cheaper per-op costs — the
//! semantics are unchanged, only the cost accounting reflects the layout
//! the lowering would pick:
//!
//! | representation | read/write/has | insert | size |
//! |---|---|---|---|
//! | assoc table (default) | 8 | 12 | 1 |
//! | dense array (bounded integral keys, no `keys`, no escape) | 2 | 2 | 1 |
//! | inline buffer (small const-len non-escaping seq) | 1 | — | 1 |
//! | seq (default) | 2 | 2 + shift | 1 |
//!
//! Allocation charges are identical across representations, so a
//! repr-tagged run's cost is always ≤ the default-layout run of the same
//! program (checked by proptest).

/// Counters accumulated during execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Instructions executed.
    pub insts: u64,
    /// Sequence element reads.
    pub seq_reads: u64,
    /// Sequence element writes.
    pub seq_writes: u64,
    /// Associative operations (read/write/has/insert/remove).
    pub assoc_ops: u64,
    /// Field array reads/writes.
    pub field_ops: u64,
    /// Elements moved by bulk operations (shift, swap, splice, copy).
    pub elements_moved: u64,
    /// Whole-collection copies performed (value-semantics copies plus SSA
    /// functional updates). Table III's "no spurious copies" claim is
    /// checked against this counter.
    pub collection_copies: u64,
    /// Collections allocated.
    pub allocations: u64,
    /// Logical bytes allocated for collections/objects (no reclamation —
    /// RSS is measured by the runtime-library twin, see DESIGN.md).
    pub bytes_allocated: u64,
    /// Calls executed.
    pub calls: u64,
    /// Accumulated abstract cost (the execution-time proxy).
    pub cost: f64,
}

impl ExecStats {
    /// Adds the base cost of one scalar/control instruction.
    pub fn scalar(&mut self) {
        self.insts += 1;
        self.cost += 1.0;
    }

    /// Records a sequence element access.
    pub fn seq_access(&mut self, write: bool) {
        self.insts += 1;
        if write {
            self.seq_writes += 1;
        } else {
            self.seq_reads += 1;
        }
        self.cost += 2.0;
    }

    /// Records an associative operation; `insert` marks growth-amortized
    /// insertion.
    pub fn assoc_op(&mut self, insert: bool) {
        self.insts += 1;
        self.assoc_ops += 1;
        self.cost += if insert { 12.0 } else { 8.0 };
    }

    /// Records a field access on an object whose layout occupies
    /// `object_bytes`.
    pub fn field_op(&mut self, object_bytes: u64) {
        self.insts += 1;
        self.field_ops += 1;
        self.cost += 1.0 + (object_bytes as f64 / 64.0).ceil();
    }

    /// Records `n` elements moved by a bulk operation.
    pub fn moved(&mut self, n: u64) {
        self.elements_moved += n;
        self.cost += n as f64;
    }

    /// Records a whole-collection copy of `n` elements.
    pub fn copy(&mut self, n: u64) {
        self.collection_copies += 1;
        self.moved(n);
    }

    /// Records a collection allocation of `reserved` elements and
    /// `bytes` logical bytes.
    pub fn alloc(&mut self, reserved: u64, bytes: u64) {
        self.allocations += 1;
        self.bytes_allocated += bytes;
        self.cost += 12.0 + reserved as f64;
    }

    /// Records a fused read-modify-write on a sequence (one pass over
    /// storage: cost 3 vs 5 for the unfused read+bin+write).
    pub fn seq_rmw(&mut self) {
        self.insts += 1;
        self.seq_reads += 1;
        self.seq_writes += 1;
        self.cost += 3.0;
    }

    /// Records a fused read-modify-write on an associative array (one
    /// hash + probe: cost 9 vs 17 unfused).
    pub fn assoc_rmw(&mut self) {
        self.insts += 1;
        self.assoc_ops += 1;
        self.cost += 9.0;
    }

    /// Records an element access on a dense-array-repr collection
    /// (direct indexing: cost 2, like a sequence access).
    pub fn dense_access(&mut self, write: bool) {
        self.insts += 1;
        if write {
            self.seq_writes += 1;
        } else {
            self.seq_reads += 1;
        }
        self.cost += 2.0;
    }

    /// Records a fused read-modify-write on a dense-array-repr
    /// collection (cost 3, like a sequence rmw).
    pub fn dense_rmw(&mut self) {
        self.seq_rmw();
    }

    /// Records an element access on an inline-buffer-repr sequence
    /// (register-like: cost 1).
    pub fn inline_access(&mut self, write: bool) {
        self.insts += 1;
        if write {
            self.seq_writes += 1;
        } else {
            self.seq_reads += 1;
        }
        self.cost += 1.0;
    }

    /// Records a call.
    pub fn call(&mut self) {
        self.insts += 1;
        self.calls += 1;
        self.cost += 6.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_accumulate() {
        let mut s = ExecStats::default();
        s.scalar();
        s.seq_access(false);
        s.seq_access(true);
        s.assoc_op(true);
        s.field_op(128);
        s.moved(10);
        s.copy(5);
        s.alloc(4, 64);
        s.call();
        assert_eq!(s.insts, 6);
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.seq_writes, 1);
        assert_eq!(s.collection_copies, 1);
        assert_eq!(s.elements_moved, 15);
        assert_eq!(s.allocations, 1);
        assert!(s.cost > 0.0);
    }

    #[test]
    fn field_cost_scales_with_object_size() {
        let mut small = ExecStats::default();
        small.field_op(56);
        let mut big = ExecStats::default();
        big.field_op(72);
        assert!(big.cost > small.cost, "packing objects must lower cost");
    }
}
