//! Runtime values and the collection store.

use memoir_ir::{ObjTypeId, Type};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a collection in the [`Store`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CollId(pub u32);

/// Identifier of an object in the [`Store`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Integer of a specific IR type (including `index`).
    Int(Type, i64),
    /// Float of a specific IR type.
    Float(Type, f64),
    /// Boolean.
    Bool(bool),
    /// Object reference (`None` = null).
    Ref(ObjTypeId, Option<ObjId>),
    /// Raw pointer payload (opaque).
    Ptr(u64),
    /// A collection handle into the store.
    Coll(CollId),
    /// Uninitialized element — reading one is undefined behaviour and the
    /// interpreter traps on it (§IV-B).
    Uninit,
}

impl Value {
    /// Index payload (traps-by-panic on type confusion; the verifier rules
    /// this out for verified programs).
    pub fn as_index(&self) -> Option<u64> {
        match self {
            Value::Int(Type::Index, v) => Some(*v as u64),
            Value::Int(_, v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(_, v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Collection handle payload.
    pub fn as_coll(&self) -> Option<CollId> {
        match self {
            Value::Coll(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(_, v) => write!(f, "{v}"),
            Value::Float(_, v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ref(_, Some(o)) => write!(f, "@{}", o.0),
            Value::Ref(_, None) => write!(f, "null"),
            Value::Ptr(p) => write!(f, "ptr:{p:#x}"),
            Value::Coll(c) => write!(f, "coll:{}", c.0),
            Value::Uninit => write!(f, "uninit"),
        }
    }
}

/// Hashable key form of a value, for associative arrays. Objects compare
/// per-field (finite depth is guaranteed by the type system, §IV-E);
/// references compare by identity (shallow equality, §IV-D).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Key {
    /// Integer key.
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// Reference key (identity).
    Ref(Option<ObjId>),
    /// Float key by bit pattern (identity equality, §IV-D).
    Float(u64),
    /// Pointer key.
    Ptr(u64),
}

impl Key {
    /// Converts a runtime value into its key form.
    pub fn from_value(v: &Value) -> Option<Key> {
        match v {
            Value::Int(_, x) => Some(Key::Int(*x)),
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Ref(_, o) => Some(Key::Ref(*o)),
            Value::Float(_, x) => Some(Key::Float(x.to_bits())),
            Value::Ptr(p) => Some(Key::Ptr(*p)),
            _ => None,
        }
    }

    /// Rebuilds a value from the key, given the key's IR type.
    pub fn to_value(&self, ty: Type) -> Value {
        match self {
            Key::Int(x) => Value::Int(ty, *x),
            Key::Bool(b) => Value::Bool(*b),
            Key::Ref(o) => match ty {
                Type::Ref(obj) => Value::Ref(obj, *o),
                _ => Value::Ref(ObjTypeId::from_raw(0), *o),
            },
            Key::Float(bits) => Value::Float(ty, f64::from_bits(*bits)),
            Key::Ptr(p) => Value::Ptr(*p),
        }
    }
}

/// A stored collection.
#[derive(Clone, Debug, PartialEq)]
pub enum Collection {
    /// Sequence storage.
    Seq(Vec<Value>),
    /// Associative storage with deterministic (insertion-order) key
    /// enumeration.
    Assoc {
        /// Key → value map.
        map: HashMap<Key, Value>,
        /// Keys in insertion order (the deterministic `keys` order).
        order: Vec<Key>,
    },
}

impl Collection {
    /// Creates an empty associative collection.
    pub fn new_assoc() -> Self {
        Collection::Assoc {
            map: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Collection::Seq(v) => v.len(),
            Collection::Assoc { map, .. } => map.len(),
        }
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An allocated object: per-field values, `None` after `delete`.
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// The object's type.
    pub ty: ObjTypeId,
    /// Field values (`None` = deleted object).
    pub fields: Option<Vec<Value>>,
}

/// The heap: collections and objects.
#[derive(Clone, Debug, Default)]
pub struct Store {
    /// Collections by id.
    pub collections: Vec<Collection>,
    /// Objects by id.
    pub objects: Vec<Object>,
    /// Representation tags for collections allocated at sites with a
    /// non-default [`Repr`](memoir_ir::Repr) choice (cost accounting
    /// only — storage semantics are unchanged). Tags follow value copies.
    pub reprs: HashMap<CollId, memoir_ir::Repr>,
}

impl Store {
    /// Allocates a collection, returning its handle.
    pub fn alloc_coll(&mut self, c: Collection) -> CollId {
        let id = CollId(self.collections.len() as u32);
        self.collections.push(c);
        id
    }

    /// Allocates an object with all fields uninitialized.
    pub fn alloc_obj(&mut self, ty: ObjTypeId, nfields: usize) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            ty,
            fields: Some(vec![Value::Uninit; nfields]),
        });
        id
    }

    /// Immutable access to a collection.
    pub fn coll(&self, id: CollId) -> &Collection {
        &self.collections[id.0 as usize]
    }

    /// Mutable access to a collection.
    pub fn coll_mut(&mut self, id: CollId) -> &mut Collection {
        &mut self.collections[id.0 as usize]
    }

    /// Deep-copies a collection (value semantics), returning the new
    /// handle and the number of elements copied.
    pub fn clone_coll(&mut self, id: CollId) -> (CollId, usize) {
        let c = self.coll(id).clone();
        let n = c.len();
        let copy = self.alloc_coll(c);
        if let Some(r) = self.reprs.get(&id).copied() {
            self.reprs.insert(copy, r);
        }
        (copy, n)
    }

    /// The representation tag of a collection ([`memoir_ir::Repr::Default`]
    /// when untagged).
    pub fn repr_of(&self, id: CollId) -> memoir_ir::Repr {
        self.reprs
            .get(&id)
            .copied()
            .unwrap_or(memoir_ir::Repr::Default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trip() {
        let v = Value::Int(Type::I32, -7);
        let k = Key::from_value(&v).unwrap();
        assert_eq!(k.to_value(Type::I32), v);
        assert_eq!(Key::from_value(&Value::Bool(true)), Some(Key::Bool(true)));
        assert_eq!(Key::from_value(&Value::Uninit), None);
    }

    #[test]
    fn float_keys_use_identity() {
        let a = Key::from_value(&Value::Float(Type::F64, 0.0)).unwrap();
        let b = Key::from_value(&Value::Float(Type::F64, -0.0)).unwrap();
        assert_ne!(a, b, "identity equality distinguishes 0.0 from -0.0");
    }

    #[test]
    fn store_clone_counts_elements() {
        let mut s = Store::default();
        let id = s.alloc_coll(Collection::Seq(vec![Value::Int(Type::I64, 1); 5]));
        let (copy, n) = s.clone_coll(id);
        assert_eq!(n, 5);
        assert_ne!(copy, id);
        assert_eq!(s.coll(copy), s.coll(id));
    }
}
