//! Ergonomic construction of MEMOIR functions.
//!
//! [`FunctionBuilder`] keeps a cursor on a current block and derives result
//! types from operand types, so frontends and tests can build IR without
//! spelling out every type. It is deliberately thin: it never reorders or
//! optimizes what it is given.

use crate::ids::{BlockId, InstId, ObjTypeId, TypeId, ValueId};
use crate::inst::{BinOp, Callee, CmpOp, Constant, InstKind};
use crate::{Form, Function, Module, Type, TypeTable};

/// Builder over a [`Function`] plus the module [`TypeTable`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    /// The function being built; exposed for advanced surgery.
    pub func: Function,
    /// The module type table.
    pub types: &'a mut TypeTable,
    cur: BlockId,
}

impl<'a> FunctionBuilder<'a> {
    /// Starts building a function with the given name and form.
    pub fn new(types: &'a mut TypeTable, name: impl Into<String>, form: Form) -> Self {
        let func = Function::new(name, form);
        let cur = func.entry;
        FunctionBuilder { func, types, cur }
    }

    /// Finishes, returning the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Interns a type.
    pub fn ty(&mut self, t: Type) -> TypeId {
        self.types.intern(t)
    }

    /// Adds a parameter (by value).
    pub fn param(&mut self, name: &str, ty: TypeId) -> ValueId {
        self.func.add_param(name, ty, false)
    }

    /// Adds a by-reference collection parameter (mut form).
    pub fn param_ref(&mut self, name: &str, ty: TypeId) -> ValueId {
        self.func.add_param(name, ty, true)
    }

    /// Declares the return types.
    pub fn returns(&mut self, tys: &[TypeId]) {
        self.func.ret_tys = tys.to_vec();
    }

    /// Creates a new block.
    pub fn block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Moves the cursor to a block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The block the cursor is on.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Names a value for readable printing.
    pub fn name(&mut self, v: ValueId, name: &str) -> ValueId {
        self.func.values[v].name = Some(name.to_string());
        v
    }

    fn emit(&mut self, kind: InstKind, tys: &[TypeId]) -> (InstId, Vec<ValueId>) {
        self.func.append_inst(self.cur, kind, tys)
    }

    fn emit1(&mut self, kind: InstKind, ty: TypeId) -> ValueId {
        self.emit(kind, &[ty]).1[0]
    }

    // ------------------------------------------------------------- constants

    /// `index` constant.
    pub fn index(&mut self, v: u64) -> ValueId {
        let t = self.ty(Type::Index);
        self.func.constant(Constant::index(v), t)
    }

    /// `i64` constant.
    pub fn i64(&mut self, v: i64) -> ValueId {
        let t = self.ty(Type::I64);
        self.func.constant(Constant::i64(v), t)
    }

    /// `i32` constant.
    pub fn i32(&mut self, v: i32) -> ValueId {
        let t = self.ty(Type::I32);
        self.func.constant(Constant::i32(v), t)
    }

    /// `f64` constant.
    pub fn f64(&mut self, v: f64) -> ValueId {
        let t = self.ty(Type::F64);
        self.func.constant(Constant::f64(v), t)
    }

    /// `bool` constant.
    pub fn bool(&mut self, v: bool) -> ValueId {
        let t = self.ty(Type::Bool);
        self.func.constant(Constant::Bool(v), t)
    }

    /// Null reference constant.
    pub fn null(&mut self, obj: ObjTypeId) -> ValueId {
        let t = self.ty(Type::Ref(obj));
        self.func.constant(Constant::Null(obj), t)
    }

    /// Arbitrary typed integer constant.
    pub fn int(&mut self, ty: Type, v: i64) -> ValueId {
        let t = self.ty(ty);
        self.func.constant(Constant::Int(ty, v), t)
    }

    // ---------------------------------------------------------------- scalar

    /// Binary operation; result has the operand type.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.value_ty(lhs);
        self.emit1(InstKind::Bin { op, lhs, rhs }, ty)
    }

    /// Addition.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin(BinOp::Add, a, b)
    }

    /// Subtraction.
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin(BinOp::Sub, a, b)
    }

    /// Multiplication.
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.bin(BinOp::Mul, a, b)
    }

    /// Comparison producing `bool`.
    pub fn cmp(&mut self, op: CmpOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let b = self.ty(Type::Bool);
        self.emit1(InstKind::Cmp { op, lhs, rhs }, b)
    }

    /// Numeric cast.
    pub fn cast(&mut self, to: Type, value: ValueId) -> ValueId {
        let to = self.ty(to);
        self.emit1(InstKind::Cast { to, value }, to)
    }

    /// Ternary select.
    pub fn select(&mut self, cond: ValueId, t: ValueId, e: ValueId) -> ValueId {
        let ty = self.func.value_ty(t);
        self.emit1(
            InstKind::Select {
                cond,
                then_value: t,
                else_value: e,
            },
            ty,
        )
    }

    /// Creates a φ with the given incomings.
    pub fn phi(&mut self, ty: TypeId, incoming: Vec<(BlockId, ValueId)>) -> ValueId {
        // φs must precede non-φ instructions: insert after existing φs.
        let pos = self.func.blocks[self.cur]
            .insts
            .iter()
            .take_while(|&&i| self.func.insts[i].kind.is_phi())
            .count();
        let cur = self.cur;
        self.func
            .insert_inst_at(cur, pos, InstKind::Phi { incoming }, &[ty])
            .1[0]
    }

    /// Creates an empty φ to be filled later via [`FunctionBuilder::add_phi_incoming`]
    /// (the standard trick for loop headers).
    pub fn phi_placeholder(&mut self, ty: TypeId) -> ValueId {
        self.phi(ty, Vec::new())
    }

    /// Adds an incoming edge to a previously created φ.
    pub fn add_phi_incoming(&mut self, phi: ValueId, pred: BlockId, value: ValueId) {
        let inst = self.func.value_def_inst(phi).expect("phi value");
        match &mut self.func.insts[inst].kind {
            InstKind::Phi { incoming } => incoming.push((pred, value)),
            _ => panic!("add_phi_incoming on non-phi"),
        }
    }

    /// Calls a module function; result types must be supplied by the caller
    /// (they are the callee's return types).
    pub fn call(&mut self, callee: Callee, args: Vec<ValueId>, ret_tys: &[TypeId]) -> Vec<ValueId> {
        self.emit(InstKind::Call { callee, args }, ret_tys).1
    }

    // --------------------------------------------------------------- control

    /// Unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(InstKind::Jump { target }, &[]);
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: ValueId, then_target: BlockId, else_target: BlockId) {
        self.emit(
            InstKind::Branch {
                cond,
                then_target,
                else_target,
            },
            &[],
        );
    }

    /// Return.
    pub fn ret(&mut self, values: Vec<ValueId>) {
        self.emit(InstKind::Ret { values }, &[]);
    }

    // ----------------------------------------------------------- collections

    /// `new Seq<elem>(len)`.
    pub fn new_seq(&mut self, elem: TypeId, len: ValueId) -> ValueId {
        let ty = self.types.seq_of(elem);
        self.emit1(InstKind::NewSeq { elem, len }, ty)
    }

    /// `new Assoc<K, V>`.
    pub fn new_assoc(&mut self, key: TypeId, value: TypeId) -> ValueId {
        let ty = self.types.assoc_of(key, value);
        self.emit1(InstKind::NewAssoc { key, value }, ty)
    }

    /// `new T` object allocation.
    pub fn new_obj(&mut self, obj: ObjTypeId) -> ValueId {
        let ty = self.types.ref_of(obj);
        self.emit1(InstKind::NewObj { obj }, ty)
    }

    /// `delete(obj)`.
    pub fn delete_obj(&mut self, obj: ValueId) {
        self.emit(InstKind::DeleteObj { obj }, &[]);
    }

    /// Element type when reading from a collection-typed value.
    pub fn element_ty(&self, c: ValueId) -> TypeId {
        match self.types.get(self.func.value_ty(c)) {
            Type::Seq(e) => e,
            Type::Assoc(_, v) => v,
            other => panic!("element_ty of non-collection {other:?}"),
        }
    }

    /// `READ(c, idx)`.
    pub fn read(&mut self, c: ValueId, idx: ValueId) -> ValueId {
        let ty = self.element_ty(c);
        self.emit1(InstKind::Read { c, idx }, ty)
    }

    /// SSA `WRITE`.
    pub fn write(&mut self, c: ValueId, idx: ValueId, value: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::Write { c, idx, value }, ty)
    }

    /// SSA fused `RMW`: `c' = WRITE(c, idx, op(READ(c, idx), value))`.
    pub fn rmw(&mut self, c: ValueId, idx: ValueId, op: BinOp, value: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::Rmw { c, idx, op, value }, ty)
    }

    /// SSA `INSERT` of a single element.
    pub fn insert(&mut self, c: ValueId, idx: ValueId, value: Option<ValueId>) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::Insert { c, idx, value }, ty)
    }

    /// SSA sequence splice `INSERT(s, i, src)`.
    pub fn insert_seq(&mut self, c: ValueId, idx: ValueId, src: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::InsertSeq { c, idx, src }, ty)
    }

    /// SSA `REMOVE` of one element.
    pub fn remove(&mut self, c: ValueId, idx: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::Remove { c, idx }, ty)
    }

    /// SSA `REMOVE` of a range.
    pub fn remove_range(&mut self, c: ValueId, from: ValueId, to: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::RemoveRange { c, from, to }, ty)
    }

    /// SSA `COPY` of a whole collection.
    pub fn copy(&mut self, c: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::Copy { c }, ty)
    }

    /// SSA `COPY` of a range.
    pub fn copy_range(&mut self, c: ValueId, from: ValueId, to: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::CopyRange { c, from, to }, ty)
    }

    /// SSA one-sequence `SWAP`.
    pub fn swap(&mut self, c: ValueId, from: ValueId, to: ValueId, at: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::Swap { c, from, to, at }, ty)
    }

    /// SSA two-sequence `SWAP`; returns the two updated sequences.
    pub fn swap2(
        &mut self,
        a: ValueId,
        from: ValueId,
        to: ValueId,
        b: ValueId,
        at: ValueId,
    ) -> (ValueId, ValueId) {
        let ta = self.func.value_ty(a);
        let tb = self.func.value_ty(b);
        let r = self
            .emit(InstKind::Swap2 { a, from, to, b, at }, &[ta, tb])
            .1;
        (r[0], r[1])
    }

    /// `SIZE(c)`.
    pub fn size(&mut self, c: ValueId) -> ValueId {
        let t = self.ty(Type::Index);
        self.emit1(InstKind::Size { c }, t)
    }

    /// `HAS(assoc, key)`.
    pub fn has(&mut self, c: ValueId, key: ValueId) -> ValueId {
        let t = self.ty(Type::Bool);
        self.emit1(InstKind::Has { c, key }, t)
    }

    /// `KEYS(assoc)` — a sequence of the key type.
    pub fn keys(&mut self, c: ValueId) -> ValueId {
        let key_ty = match self.types.get(self.func.value_ty(c)) {
            Type::Assoc(k, _) => k,
            other => panic!("keys of non-assoc {other:?}"),
        };
        let ty = self.types.seq_of(key_ty);
        self.emit1(InstKind::Keys { c }, ty)
    }

    /// `USEφ(c)`.
    pub fn use_phi(&mut self, c: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::UsePhi { c }, ty)
    }

    // ---------------------------------------------------------------- fields

    /// Field array read `READ(F_{T.f}, obj)`.
    pub fn field_read(&mut self, obj: ValueId, obj_ty: ObjTypeId, field: u32) -> ValueId {
        let ty = self.types.object(obj_ty).fields[field as usize].ty;
        self.emit1(InstKind::FieldRead { obj, obj_ty, field }, ty)
    }

    /// Field array write.
    pub fn field_write(&mut self, obj: ValueId, obj_ty: ObjTypeId, field: u32, value: ValueId) {
        self.emit(
            InstKind::FieldWrite {
                obj,
                obj_ty,
                field,
                value,
            },
            &[],
        );
    }

    // -------------------------------------------------------------- mut form

    /// `mut.write(c, idx, v)`.
    pub fn mut_write(&mut self, c: ValueId, idx: ValueId, value: ValueId) {
        self.emit(InstKind::MutWrite { c, idx, value }, &[]);
    }

    /// `mut.rmw(c, idx, op, v)` — in-place fused read-modify-write.
    pub fn mut_rmw(&mut self, c: ValueId, idx: ValueId, op: BinOp, value: ValueId) {
        self.emit(InstKind::MutRmw { c, idx, op, value }, &[]);
    }

    /// `mut.insert(c, idx, [v])`.
    pub fn mut_insert(&mut self, c: ValueId, idx: ValueId, value: Option<ValueId>) {
        self.emit(InstKind::MutInsert { c, idx, value }, &[]);
    }

    /// `mut.insert(s, i, src)`.
    pub fn mut_insert_seq(&mut self, c: ValueId, idx: ValueId, src: ValueId) {
        self.emit(InstKind::MutInsertSeq { c, idx, src }, &[]);
    }

    /// `mut.remove(c, idx)`.
    pub fn mut_remove(&mut self, c: ValueId, idx: ValueId) {
        self.emit(InstKind::MutRemove { c, idx }, &[]);
    }

    /// `mut.remove(s, from, to)`.
    pub fn mut_remove_range(&mut self, c: ValueId, from: ValueId, to: ValueId) {
        self.emit(InstKind::MutRemoveRange { c, from, to }, &[]);
    }

    /// `mut.append(s, src)`.
    pub fn mut_append(&mut self, c: ValueId, src: ValueId) {
        self.emit(InstKind::MutAppend { c, src }, &[]);
    }

    /// `mut.swap(s, from, to, at)`.
    pub fn mut_swap(&mut self, c: ValueId, from: ValueId, to: ValueId, at: ValueId) {
        self.emit(InstKind::MutSwap { c, from, to, at }, &[]);
    }

    /// `mut.swap(s0, from, to, s1, at)`.
    pub fn mut_swap2(&mut self, a: ValueId, from: ValueId, to: ValueId, b: ValueId, at: ValueId) {
        self.emit(InstKind::MutSwap2 { a, from, to, b, at }, &[]);
    }

    /// `s2 = mut.split(s, from, to)`.
    pub fn mut_split(&mut self, c: ValueId, from: ValueId, to: ValueId) -> ValueId {
        let ty = self.func.value_ty(c);
        self.emit1(InstKind::MutSplit { c, from, to }, ty)
    }
}

/// Convenience for building a [`Module`] function-by-function.
#[derive(Debug)]
pub struct ModuleBuilder {
    /// The module under construction.
    pub module: Module,
}

impl ModuleBuilder {
    /// Creates a module builder.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Builds one function with a closure over a [`FunctionBuilder`] and
    /// adds it to the module.
    pub fn func(
        &mut self,
        name: &str,
        form: Form,
        build: impl FnOnce(&mut FunctionBuilder<'_>),
    ) -> crate::FuncId {
        let mut fb = FunctionBuilder::new(&mut self.module.types, name, form);
        build(&mut fb);
        let f = fb.finish();
        self.module.add_func(f)
    }

    /// Finishes, returning the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_with_phi() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("count", Form::Ssa, |b| {
            let n = {
                let t = b.ty(Type::Index);
                b.param("n", t)
            };
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);

            b.switch_to(header);
            let idx_ty = b.ty(Type::Index);
            let i = b.phi_placeholder(idx_ty);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, n);
            b.branch(done, exit, body);

            b.switch_to(body);
            let next = b.add(i, one);
            let bodyb = b.current_block();
            b.add_phi_incoming(i, bodyb, next);
            b.jump(header);

            b.switch_to(exit);
            b.returns(&[idx_ty]);
            b.ret(vec![i]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("count").unwrap()];
        assert_eq!(f.blocks.len(), 4);
        // φ is first instruction of header
        let header = BlockId::from_raw(1);
        let first = f.blocks[header].insts[0];
        assert!(f.insts[first].kind.is_phi());
    }

    #[test]
    fn seq_ops_derive_types() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(10);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(42);
            let s1 = b.write(s0, zero, v);
            let got = b.read(s1, zero);
            assert_eq!(b.func.value_ty(got), i64t);
            let sz = b.size(s1);
            assert_eq!(b.types.get(b.func.value_ty(sz)), Type::Index);
            b.ret(vec![]);
        });
    }

    #[test]
    fn assoc_keys_type() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i32t = b.ty(Type::I32);
            let boolt = b.ty(Type::Bool);
            let a = b.new_assoc(i32t, boolt);
            let ks = b.keys(a);
            let kty = b.func.value_ty(ks);
            assert_eq!(b.types.get(kty), Type::Seq(i32t));
            let k = b.i32(3);
            let h = b.has(a, k);
            assert_eq!(b.types.get(b.func.value_ty(h)), Type::Bool);
            b.ret(vec![]);
        });
    }
}
