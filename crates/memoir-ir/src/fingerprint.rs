//! Content fingerprints for MEMOIR functions (see `passman::fingerprint`
//! for the contract).
//!
//! Each function is hashed in canonical form: blocks in reverse postorder
//! from the entry (unreachable blocks appended in id order), values
//! renumbered by definition order (parameters first, then instruction
//! results in walk order), constants hashed by value rather than by the
//! arena id of their materialized `ValueId`, and φ-incomings sorted by
//! canonical predecessor. Compaction, print/parse round trips, or any
//! other value-id renumbering therefore leaves the fingerprint unchanged,
//! while every op, immediate, type, or control-flow edit changes it.
//! Value *names* are excluded — they are debug info — but the function
//! name is included: cached pass and lowering outputs are whole bodies
//! carrying their symbol name, so two functions may share a fingerprint
//! only when they are byte-compatible, not merely isomorphic.
//!
//! Raw `TypeId` / `ObjTypeId` / `ExternId` immediates do appear in the
//! per-op stream, so their meaning is pinned by folding a hash of the
//! whole type table (interned types, object definitions and layouts) and
//! of every extern declaration into each function's fingerprint. This is
//! deliberately conservative: editing any object layout or extern
//! summary invalidates every function, which is exactly what layout
//! transformations (field elision, dead-field elimination) require.
//!
//! Callee *bodies* are not hashed locally (their `FuncId` slots are,
//! since cached pass outputs embed them); instead the callgraph is
//! condensed into SCCs (leaves-first) and each function's final
//! fingerprint folds in the fingerprints of its callees in call-site
//! order — intra-SCC (recursive) calls as a marker plus a commutative
//! SCC summary, so the result is independent of member enumeration
//! order. A pass that edits only callee `g` therefore changes the
//! fingerprint of every (transitive) caller of `g`, even when the pass
//! reported `Mutation::Funcs([g])` — which is what lets the analysis
//! cache drop the callers' callgraph-dependent results.

use crate::function::{Function, ValueDef};
use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{Callee, InstKind};
use crate::module::Module;
use passman::fingerprint::{sccs, Fingerprint, StableHasher};
use std::collections::HashMap;

/// Marker written to the op stream in place of a constant operand (the
/// constant's value is hashed separately, in operand order).
const CONST_MARK: u32 = u32::MAX - 1;
/// Marker for an operand or successor that resolves to nothing (broken
/// IR mid-fuzz); keeps the walk total and deterministic.
const DANGLING_MARK: u32 = u32::MAX;
const BLOCK_MARK: u64 = 0x424c_4f43_4b00_0000; // "BLOCK"
const RECURSIVE_CALLEE: u64 = 0x5245_4355_5253_4500; // "RECURSE"

/// Canonical block order: reverse postorder from the entry, then any
/// unreachable blocks in id order.
fn block_order(f: &Function) -> Vec<BlockId> {
    let mut order = f.reverse_postorder();
    let mut seen = vec![false; f.blocks.len()];
    for &b in &order {
        seen[b.index()] = true;
    }
    for b in f.blocks.ids() {
        if !seen[b.index()] {
            order.push(b);
        }
    }
    order
}

/// Hashes the module-wide context every function's meaning depends on:
/// the type table (interned types, object definitions, computed layouts)
/// and the extern declarations. The module name is excluded.
fn table_hash(m: &Module) -> u64 {
    let mut h = StableHasher::new();
    let types: Vec<_> = m.types.entries().collect();
    h.write_usize(types.len());
    for (id, ty) in types {
        h.write_u32(id.raw());
        h.write_str(&m.types.display_type(ty));
    }
    h.write_usize(m.types.object_count());
    for (oid, obj) in m.types.objects() {
        h.write_u32(oid.raw());
        h.write_str(&obj.name);
        h.write_usize(obj.fields.len());
        for field in &obj.fields {
            h.write_str(&field.name);
            h.write_u32(field.ty.raw());
        }
        let layout = m.types.object_layout(oid);
        h.write_u64(layout.size);
        h.write_u64(layout.align);
        for off in layout.offsets {
            h.write_u64(off);
        }
    }
    h.write_usize(m.externs.len());
    for (eid, e) in m.externs.iter() {
        h.write_u32(eid.raw());
        h.write_str(&e.name);
        h.write_usize(e.params.len());
        for &t in &e.params {
            h.write_u32(t.raw());
        }
        h.write_usize(e.ret_tys.len());
        for &t in &e.ret_tys {
            h.write_u32(t.raw());
        }
        h.write_bool(e.effects.reads_args);
        h.write_bool(e.effects.writes_args);
        h.write_bool(e.effects.opaque);
    }
    h.finish()
}

/// Hashes one function's structure with canonical value/block numbering,
/// and collects its in-module callee list in call-site order.
fn local_structure(f: &Function) -> (u64, Vec<usize>) {
    let order = block_order(f);
    let mut blk_pos = vec![DANGLING_MARK; f.blocks.len()];
    for (i, &b) in order.iter().enumerate() {
        blk_pos[b.index()] = i as u32;
    }
    // Canonical value numbers: params first, then results in walk order.
    let mut canon: HashMap<ValueId, u32> = HashMap::new();
    for &p in &f.param_values {
        let next = canon.len() as u32;
        canon.insert(p, next);
    }
    for &b in &order {
        for &iid in &f.blocks[b].insts {
            if iid.index() >= f.insts.len() {
                continue;
            }
            for &r in &f.insts[iid].results {
                let next = canon.len() as u32;
                canon.entry(r).or_insert(next);
            }
        }
    }
    let canon_block =
        |b: BlockId| BlockId::from_raw(blk_pos.get(b.index()).copied().unwrap_or(DANGLING_MARK));

    let mut h = StableHasher::new();
    let mut callees: Vec<usize> = Vec::new();
    h.write_str(&f.name);
    h.write_usize(f.params.len());
    for p in &f.params {
        h.write_u32(p.ty.raw());
        h.write_bool(p.by_ref);
    }
    h.write_usize(f.ret_tys.len());
    for &t in &f.ret_tys {
        h.write_u32(t.raw());
    }
    h.write_str(&format!("{:?}", f.form));
    h.write_usize(order.len());
    for &b in &order {
        h.write_u64(BLOCK_MARK);
        for &iid in &f.blocks[b].insts {
            if iid.index() >= f.insts.len() {
                h.write_u64(u64::MAX); // dangling inst id
                continue;
            }
            let inst = &f.insts[iid];
            h.write_usize(inst.results.len());
            for &r in &inst.results {
                // Result types pin op meanings that depend on the
                // surrounding collection type (e.g. `read`).
                match r.index() < f.values.len() {
                    true => h.write_u32(f.values[r].ty.raw()),
                    false => h.write_u32(DANGLING_MARK),
                }
            }
            // Canonicalize a private copy of the op, then hash its
            // `Debug` rendering — one stable serialization for the whole
            // instruction set instead of a hand-maintained 36-arm match.
            let mut kind = inst.kind.clone();
            if let InstKind::Call {
                callee: Callee::Func(fid),
                ..
            } = &kind
            {
                // The callee's *content* enters via fingerprint
                // propagation; its slot id stays in the `Debug` stream
                // because cached pass outputs embed it.
                callees.push(fid.index());
            }
            kind.visit_operands_mut(|v| {
                *v = if v.index() >= f.values.len() {
                    ValueId::from_raw(DANGLING_MARK)
                } else if let ValueDef::Const(c) = f.values[*v].def {
                    // Constants are values in the arena, minted in
                    // first-use order — hash by value, not by id.
                    h.write_str(&format!("{c:?}"));
                    ValueId::from_raw(CONST_MARK)
                } else {
                    ValueId::from_raw(canon.get(v).copied().unwrap_or(DANGLING_MARK))
                };
            });
            kind.visit_successors_mut(|b| *b = canon_block(*b));
            if let InstKind::Phi { incoming } = &mut kind {
                // Incoming order is id-dependent: sort by canonical
                // predecessor (operands were canonicalized above).
                for (p, _) in incoming.iter_mut() {
                    *p = canon_block(*p);
                }
                incoming.sort_by_key(|&(p, v)| (p.raw(), v.raw()));
            }
            h.write_str(&format!("{kind:?}"));
        }
    }
    (h.finish(), callees)
}

/// Fingerprints every function of a module, with callee propagation
/// across the condensed callgraph (see the module docs).
pub fn module_fingerprints(m: &Module) -> Vec<(FuncId, Fingerprint)> {
    let n = m.funcs.len();
    let table = table_hash(m);
    let mut locals: Vec<u64> = Vec::with_capacity(n);
    let mut callees: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (_, f) in m.funcs.iter() {
        let (h, cs) = local_structure(f);
        locals.push(h);
        callees.push(cs);
    }
    let comps = sccs(n, &|v| callees[v].clone());
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci;
        }
    }
    let mut out = vec![Fingerprint(0); n];
    for (ci, comp) in comps.iter().enumerate() {
        // Member hash: module context + local structure + callee
        // fingerprints in call-site order (leaves-first, so cross-SCC
        // callees are final; intra-SCC callees become a marker, resolved
        // by the commutative summary).
        let members: Vec<Fingerprint> = comp
            .iter()
            .map(|&v| {
                let mut h = StableHasher::new();
                h.write_u64(table);
                h.write_u64(locals[v]);
                for &c in &callees[v] {
                    if c < n && comp_of[c] == ci {
                        h.write_u64(RECURSIVE_CALLEE);
                    } else if c < n {
                        h.write_u64(out[c].0);
                    } else {
                        h.write_u64(u64::MAX); // dangling callee
                    }
                }
                h.fingerprint()
            })
            .collect();
        let summary = Fingerprint::combine_commutative(members.iter().copied());
        for (&v, member) in comp.iter().zip(members) {
            out[v] = member.combine(summary);
        }
    }
    m.funcs.ids().zip(out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Form;
    use crate::module::{ExternDecl, ExternEffects};
    use crate::types::Type;

    fn leaf(m: &mut Module, k: i64) -> FuncId {
        let mut b = FunctionBuilder::new(&mut m.types, "leaf", Form::Ssa);
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        b.returns(&[i64t]);
        let c = b.i64(k);
        let s = b.add(x, c);
        b.ret(vec![s]);
        {
            let f = b.finish();
            m.add_func(f)
        }
    }

    fn fp_of(fps: &[(FuncId, Fingerprint)], f: FuncId) -> Fingerprint {
        fps.iter().find(|(k, _)| *k == f).unwrap().1
    }

    #[test]
    fn deterministic_across_computations() {
        let mut m = Module::new("t");
        leaf(&mut m, 7);
        assert_eq!(module_fingerprints(&m), module_fingerprints(&m));
    }

    #[test]
    fn insensitive_to_value_id_renumbering() {
        let mut m1 = Module::new("t");
        let f1 = leaf(&mut m1, 7);
        // Same structure, but value ids shifted: an orphan constant is
        // minted first, so every live id is displaced.
        let mut m2 = Module::new("t");
        let mut b = FunctionBuilder::new(&mut m2.types, "leaf", Form::Ssa);
        let i64t = b.ty(Type::I64);
        let x = b.param("x", i64t);
        b.returns(&[i64t]);
        let _orphan = b.i64(999);
        let c = b.i64(7);
        let s = b.add(x, c);
        b.ret(vec![s]);
        let f2 = {
            let f = b.finish();
            m2.add_func(f)
        };
        assert_eq!(
            fp_of(&module_fingerprints(&m1), f1),
            fp_of(&module_fingerprints(&m2), f2),
            "value-id renumbering must not change the fingerprint"
        );
    }

    #[test]
    fn sensitive_to_op_edits() {
        let mut m1 = Module::new("t");
        let f1 = leaf(&mut m1, 7);
        let mut m2 = Module::new("t");
        let f2 = leaf(&mut m2, 8);
        assert_ne!(
            fp_of(&module_fingerprints(&m1), f1),
            fp_of(&module_fingerprints(&m2), f2)
        );
    }

    #[test]
    fn callee_edit_changes_caller_fingerprint() {
        // The audit-gap pin: a change scoped to callee `g` must surface
        // in caller `f`'s fingerprint, so `f`'s callgraph-dependent
        // analyses are dropped even though only `Funcs([g])` mutated.
        let caller = |m: &mut Module, callee: FuncId| {
            let mut b = FunctionBuilder::new(&mut m.types, "caller", Form::Ssa);
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            b.returns(&[i64t]);
            let r = b.call(Callee::Func(callee), vec![x], &[i64t]);
            b.ret(vec![r[0]]);
            {
                let f = b.finish();
                m.add_func(f)
            }
        };
        let mut m1 = Module::new("t");
        let g1 = leaf(&mut m1, 7);
        let c1 = caller(&mut m1, g1);
        let mut m2 = Module::new("t");
        let g2 = leaf(&mut m2, 8);
        let c2 = caller(&mut m2, g2);
        assert_ne!(
            fp_of(&module_fingerprints(&m1), c1),
            fp_of(&module_fingerprints(&m2), c2),
            "editing the callee must change the caller's fingerprint"
        );
    }

    #[test]
    fn extern_or_type_edit_changes_every_fingerprint() {
        let mut m1 = Module::new("t");
        let f1 = leaf(&mut m1, 7);
        let mut m2 = Module::new("t");
        let f2 = leaf(&mut m2, 7);
        let i64t = m2.types.intern(Type::I64);
        m2.add_extern(ExternDecl {
            name: "probe".into(),
            params: vec![i64t],
            ret_tys: vec![],
            effects: ExternEffects::unknown(),
        });
        assert_ne!(
            fp_of(&module_fingerprints(&m1), f1),
            fp_of(&module_fingerprints(&m2), f2),
            "extern declarations are module context shared by all functions"
        );
    }
}
