//! Functions, basic blocks, and SSA values.

use crate::ids::{BlockId, IdMap, InstId, TypeId, ValueId};
use crate::inst::{Constant, Inst, InstKind};
use std::collections::HashMap;

/// How an SSA value is defined.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueDef {
    /// The `index`-th parameter of the function. For collection parameters
    /// in SSA form this value plays the role of the paper's ARGφ.
    Param(u32),
    /// Result `index` of instruction `inst`.
    Inst(InstId, u32),
    /// A constant.
    Const(Constant),
}

/// An SSA value: its type, definition, and an optional name hint used by
/// the printer.
#[derive(Clone, Debug, PartialEq)]
pub struct Value {
    /// Type of the value.
    pub ty: TypeId,
    /// Definition site.
    pub def: ValueDef,
    /// Printer name hint (e.g. `S_sorted`, `%pv`).
    pub name: Option<String>,
}

/// A basic block: an ordered list of instructions ending in a terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    /// Instructions in storage order; the last one must be a terminator in
    /// a verified function.
    pub insts: Vec<InstId>,
    /// Printer name hint.
    pub name: Option<String>,
}

/// Which program form a function is currently in (see the `memoir-ir`
/// crate docs on the two forms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Form {
    /// MUT-library form: collections mutated in place.
    Mut,
    /// MEMOIR SSA form: collections are immutable values.
    Ssa,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Name hint.
    pub name: String,
    /// Parameter type.
    pub ty: TypeId,
    /// In mut form, whether a collection parameter is passed by reference
    /// (mutations are visible to the caller), mirroring the C++ MUT
    /// library. Ignored for scalars and in SSA form, where collection flow
    /// uses ARGφ/RETφ instead.
    pub by_ref: bool,
}

/// A MEMOIR function.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return types. SSA-form functions that update collection parameters
    /// return the updated collections as extra results (RETφ).
    pub ret_tys: Vec<TypeId>,
    /// Current program form.
    pub form: Form,
    /// Entry block.
    pub entry: BlockId,
    /// Basic blocks.
    pub blocks: IdMap<BlockId, Block>,
    /// Instruction arena. Instructions removed from blocks stay in the
    /// arena but are unreachable; [`Function::compact`] drops them.
    pub insts: IdMap<InstId, Inst>,
    /// Value arena.
    pub values: IdMap<ValueId, Value>,
    /// Parameter values, in parameter order.
    pub param_values: Vec<ValueId>,
    const_cache: HashMap<Constant, ValueId>,
}

impl Function {
    /// Creates an empty function with one (empty) entry block.
    pub fn new(name: impl Into<String>, form: Form) -> Self {
        let mut blocks = IdMap::new();
        let entry = blocks.push(Block {
            insts: Vec::new(),
            name: Some("entry".into()),
        });
        Function {
            name: name.into(),
            params: Vec::new(),
            ret_tys: Vec::new(),
            form,
            entry,
            blocks,
            insts: IdMap::new(),
            values: IdMap::new(),
            param_values: Vec::new(),
            const_cache: HashMap::new(),
        }
    }

    /// Adds a parameter and returns its SSA value.
    pub fn add_param(&mut self, name: impl Into<String>, ty: TypeId, by_ref: bool) -> ValueId {
        let index = self.params.len() as u32;
        let name = name.into();
        self.params.push(Param {
            name: name.clone(),
            ty,
            by_ref,
        });
        let v = self.values.push(Value {
            ty,
            def: ValueDef::Param(index),
            name: Some(name),
        });
        self.param_values.push(v);
        v
    }

    /// Interns a constant value of the given type id.
    pub fn constant(&mut self, c: Constant, ty: TypeId) -> ValueId {
        if let Some(&v) = self.const_cache.get(&c) {
            return v;
        }
        let v = self.values.push(Value {
            ty,
            def: ValueDef::Const(c),
            name: None,
        });
        self.const_cache.insert(c, v);
        v
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.push(Block {
            insts: Vec::new(),
            name: Some(name.into()),
        })
    }

    /// Appends an instruction to a block, minting `result_tys.len()` result
    /// values. Returns the instruction id and its results.
    pub fn append_inst(
        &mut self,
        block: BlockId,
        kind: InstKind,
        result_tys: &[TypeId],
    ) -> (InstId, Vec<ValueId>) {
        let inst_id = InstId::from_raw(self.insts.len() as u32);
        let results: Vec<ValueId> = result_tys
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                self.values.push(Value {
                    ty,
                    def: ValueDef::Inst(inst_id, i as u32),
                    name: None,
                })
            })
            .collect();
        let id = self.insts.push(Inst {
            kind,
            results: results.clone(),
        });
        debug_assert_eq!(id, inst_id);
        self.blocks[block].insts.push(id);
        (id, results)
    }

    /// Inserts an instruction at a position within a block (used by
    /// transformation passes), minting result values.
    pub fn insert_inst_at(
        &mut self,
        block: BlockId,
        pos: usize,
        kind: InstKind,
        result_tys: &[TypeId],
    ) -> (InstId, Vec<ValueId>) {
        let inst_id = InstId::from_raw(self.insts.len() as u32);
        let results: Vec<ValueId> = result_tys
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                self.values.push(Value {
                    ty,
                    def: ValueDef::Inst(inst_id, i as u32),
                    name: None,
                })
            })
            .collect();
        let id = self.insts.push(Inst {
            kind,
            results: results.clone(),
        });
        debug_assert_eq!(id, inst_id);
        self.blocks[block].insts.insert(pos, id);
        (id, results)
    }

    /// Removes an instruction from its block (it stays in the arena as
    /// garbage until [`Function::compact`]).
    pub fn remove_inst(&mut self, block: BlockId, inst: InstId) {
        self.blocks[block].insts.retain(|&i| i != inst);
    }

    /// The type of a value.
    pub fn value_ty(&self, v: ValueId) -> TypeId {
        self.values[v].ty
    }

    /// The constant backing a value, if it is a constant.
    pub fn value_const(&self, v: ValueId) -> Option<Constant> {
        match self.values[v].def {
            ValueDef::Const(c) => Some(c),
            _ => None,
        }
    }

    /// The instruction defining a value, if it is an instruction result.
    pub fn value_def_inst(&self, v: ValueId) -> Option<InstId> {
        match self.values[v].def {
            ValueDef::Inst(i, _) => Some(i),
            _ => None,
        }
    }

    /// Replaces every use of `from` with `to` across all instructions.
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for id in self.insts.ids().collect::<Vec<_>>() {
            self.insts[id].kind.visit_operands_mut(|op| {
                if *op == from {
                    *op = to;
                }
            });
        }
    }

    /// Replaces uses of each key with its value, in one pass.
    pub fn replace_uses_map(&mut self, map: &HashMap<ValueId, ValueId>) {
        if map.is_empty() {
            return;
        }
        for id in self.insts.ids().collect::<Vec<_>>() {
            self.insts[id].kind.visit_operands_mut(|op| {
                // Chase chains (a→b, b→c) to a fixed point; maps produced by
                // passes are acyclic.
                let mut cur = *op;
                let mut hops = 0;
                while let Some(&next) = map.get(&cur) {
                    cur = next;
                    hops += 1;
                    debug_assert!(hops <= map.len(), "cyclic replacement map");
                }
                *op = cur;
            });
        }
    }

    /// Iterates `(BlockId, InstId)` over all instructions in block order.
    pub fn inst_ids_in_order(&self) -> Vec<(BlockId, InstId)> {
        let mut out = Vec::with_capacity(self.insts.len());
        for (b, block) in self.blocks.iter() {
            for &i in &block.insts {
                out.push((b, i));
            }
        }
        out
    }

    /// The terminator of a block, if the block is non-empty and terminated.
    pub fn terminator(&self, b: BlockId) -> Option<InstId> {
        let last = *self.blocks[b].insts.last()?;
        self.insts[last].kind.is_terminator().then_some(last)
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.terminator(b)
            .map(|t| self.insts[t].kind.successors())
            .unwrap_or_default()
    }

    /// Predecessor map over all blocks.
    pub fn predecessors(&self) -> IdMap<BlockId, Vec<BlockId>> {
        let mut preds: IdMap<BlockId, Vec<BlockId>> = IdMap::new();
        for _ in self.blocks.ids() {
            preds.push(Vec::new());
        }
        for b in self.blocks.ids() {
            for s in self.successors(b) {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Blocks in reverse post-order from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
        visited[self.entry.index()] = true;
        stack.push((self.entry, self.successors(self.entry), 0));
        while let Some((b, succs, i)) = stack.last_mut() {
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    let ss = self.successors(s);
                    stack.push((s, ss, 0));
                }
            } else {
                post.push(*b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Number of instructions currently reachable from blocks.
    pub fn live_inst_count(&self) -> usize {
        self.blocks.iter().map(|(_, b)| b.insts.len()).sum()
    }

    /// Counts collection-allocating instructions (`new Seq`, `new Assoc`,
    /// `copy`, `split`, `keys`) reachable in block order — the paper's
    /// "# Collections" census for Table III.
    pub fn collection_allocations(&self) -> usize {
        let mut n = 0;
        for (_, i) in self.inst_ids_in_order() {
            match self.insts[i].kind {
                InstKind::NewSeq { .. }
                | InstKind::NewAssoc { .. }
                | InstKind::Copy { .. }
                | InstKind::CopyRange { .. }
                | InstKind::MutSplit { .. }
                | InstKind::Keys { .. } => n += 1,
                _ => {}
            }
        }
        n
    }

    /// Counts SSA collection variables: values of collection type defined
    /// by instructions or parameters.
    pub fn collection_values(&self, types: &crate::TypeTable) -> usize {
        self.values
            .iter()
            .filter(|(_, v)| {
                types.get(v.ty).is_collection() && !matches!(v.def, ValueDef::Const(_))
            })
            .count()
    }

    /// Drops unreferenced instructions and values, renumbering everything.
    /// Invalidates outstanding ids; returns the remapping of values.
    pub fn compact(&mut self) -> HashMap<ValueId, ValueId> {
        let mut new_insts: IdMap<InstId, Inst> = IdMap::new();
        let mut new_values: IdMap<ValueId, Value> = IdMap::new();
        let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();
        let mut inst_map: HashMap<InstId, InstId> = HashMap::new();

        // Parameters and constants first.
        for (i, &pv) in self.param_values.clone().iter().enumerate() {
            let v = self.values[pv].clone();
            let nv = new_values.push(v);
            value_map.insert(pv, nv);
            self.param_values[i] = nv;
        }
        let mut new_cache = HashMap::new();
        for (c, &v) in &self.const_cache {
            let val = self.values[v].clone();
            let nv = new_values.push(val);
            value_map.insert(v, nv);
            new_cache.insert(*c, nv);
        }

        // Live instructions in block order.
        for (_, old_id) in self.inst_ids_in_order() {
            let inst = self.insts[old_id].clone();
            let new_id = InstId::from_raw(new_insts.len() as u32);
            let mut results = Vec::with_capacity(inst.results.len());
            for (ri, &r) in inst.results.iter().enumerate() {
                let mut v = self.values[r].clone();
                v.def = ValueDef::Inst(new_id, ri as u32);
                let nv = new_values.push(v);
                value_map.insert(r, nv);
                results.push(nv);
            }
            let id = new_insts.push(Inst {
                kind: inst.kind,
                results,
            });
            debug_assert_eq!(id, new_id);
            inst_map.insert(old_id, new_id);
        }

        // Rewrite operands and block instruction lists.
        for b in self.blocks.ids().collect::<Vec<_>>() {
            let insts: Vec<InstId> = self.blocks[b].insts.iter().map(|i| inst_map[i]).collect();
            self.blocks[b].insts = insts;
        }
        for (_, inst) in new_insts.iter() {
            // sanity: all operands must be mapped
            inst.kind.visit_operands(|_v| {});
        }
        for id in new_insts.ids().collect::<Vec<_>>() {
            new_insts[id].kind.visit_operands_mut(|op| {
                *op = *value_map
                    .get(op)
                    .unwrap_or_else(|| panic!("dangling operand {op} during compaction"));
            });
        }
        self.insts = new_insts;
        self.values = new_values;
        self.const_cache = new_cache;
        value_map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Type, TypeTable};

    fn simple_fn() -> (Function, TypeTable) {
        let mut types = TypeTable::new();
        let i64t = types.intern(Type::I64);
        let mut f = Function::new("f", Form::Ssa);
        let p = f.add_param("x", i64t, false);
        let one = f.constant(Constant::i64(1), i64t);
        let (_, r) = f.append_inst(
            f.entry,
            InstKind::Bin {
                op: crate::BinOp::Add,
                lhs: p,
                rhs: one,
            },
            &[i64t],
        );
        let entry = f.entry;
        f.append_inst(entry, InstKind::Ret { values: vec![r[0]] }, &[]);
        (f, types)
    }

    #[test]
    fn constants_are_interned() {
        let (mut f, mut types) = simple_fn();
        let i64t = types.intern(Type::I64);
        let a = f.constant(Constant::i64(7), i64t);
        let b = f.constant(Constant::i64(7), i64t);
        assert_eq!(a, b);
        assert_eq!(f.value_const(a), Some(Constant::i64(7)));
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let (mut f, mut types) = simple_fn();
        let i64t = types.intern(Type::I64);
        let nv = f.constant(Constant::i64(42), i64t);
        let p = f.param_values[0];
        f.replace_all_uses(p, nv);
        let (_, add) = f.inst_ids_in_order()[0];
        assert!(f.insts[add].kind.operands().contains(&nv));
        assert!(!f.insts[add].kind.operands().contains(&p));
    }

    #[test]
    fn reverse_postorder_starts_at_entry() {
        let (f, _) = simple_fn();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo, vec![f.entry]);
    }

    #[test]
    fn rpo_visits_reachable_blocks_once() {
        let mut types = TypeTable::new();
        let boolt = types.intern(Type::Bool);
        let mut f = Function::new("g", Form::Ssa);
        let c = f.constant(Constant::Bool(true), boolt);
        let then_b = f.add_block("then");
        let else_b = f.add_block("else");
        let join = f.add_block("join");
        let entry = f.entry;
        f.append_inst(
            entry,
            InstKind::Branch {
                cond: c,
                then_target: then_b,
                else_target: else_b,
            },
            &[],
        );
        f.append_inst(then_b, InstKind::Jump { target: join }, &[]);
        f.append_inst(else_b, InstKind::Jump { target: join }, &[]);
        f.append_inst(join, InstKind::Ret { values: vec![] }, &[]);
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], entry);
        assert_eq!(*rpo.last().unwrap(), join);
        let preds = f.predecessors();
        assert_eq!(preds[join].len(), 2);
    }

    #[test]
    fn compact_drops_dangling_insts() {
        let (mut f, _) = simple_fn();
        let entry = f.entry;
        let (dead, _) = {
            let i64t = f.values[f.param_values[0]].ty;
            let p = f.param_values[0];
            f.insert_inst_at(
                entry,
                0,
                InstKind::Bin {
                    op: crate::BinOp::Mul,
                    lhs: p,
                    rhs: p,
                },
                &[i64t],
            )
        };
        f.remove_inst(entry, dead);
        let before = f.insts.len();
        f.compact();
        assert!(f.insts.len() < before);
        assert_eq!(f.live_inst_count(), f.insts.len());
    }

    #[test]
    fn census_counts_allocations() {
        let mut types = TypeTable::new();
        let i64t = types.intern(Type::I64);
        let seqt = types.seq_of(i64t);
        let mut f = Function::new("h", Form::Mut);
        let n = f.constant(Constant::index(4), types.intern(Type::Index));
        let entry = f.entry;
        let (_, s) = f.append_inst(entry, InstKind::NewSeq { elem: i64t, len: n }, &[seqt]);
        f.append_inst(entry, InstKind::Copy { c: s[0] }, &[seqt]);
        f.append_inst(entry, InstKind::Ret { values: vec![] }, &[]);
        assert_eq!(f.collection_allocations(), 2);
        assert_eq!(f.collection_values(&types), 2);
    }
}
