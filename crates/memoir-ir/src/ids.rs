//! Typed integer identifiers for IR entities.
//!
//! Every IR entity (type, function, block, instruction, value, object type,
//! global) is referred to by a small copyable id into an arena owned by the
//! enclosing [`Module`](crate::Module) or [`Function`](crate::Function).
//! Newtypes keep the id spaces from being confused with one another.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Intended for arena implementations and tests; ids minted this
            /// way are only meaningful against the arena they index.
            pub fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index backing this id.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for direct slice indexing.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of an interned [`Type`](crate::Type) in a [`TypeTable`](crate::TypeTable).
    TypeId, "ty"
);
define_id!(
    /// Identifier of an object type definition (`type T = { .. }`).
    ObjTypeId, "T"
);
define_id!(
    /// Identifier of a function within a [`Module`](crate::Module).
    FuncId, "fn"
);
define_id!(
    /// Identifier of an external function declaration within a module.
    ExternId, "ext"
);
define_id!(
    /// Identifier of a basic block within a [`Function`](crate::Function).
    BlockId, "bb"
);
define_id!(
    /// Identifier of an instruction within a [`Function`](crate::Function).
    InstId, "inst"
);
define_id!(
    /// Identifier of an SSA value within a [`Function`](crate::Function).
    ValueId, "%"
);

/// A compact, growable map from ids to `T`, keyed by the id's raw index.
///
/// This is a thin wrapper over `Vec<T>` that keeps indexing type-safe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdMap<I, T> {
    items: Vec<T>,
    _marker: std::marker::PhantomData<I>,
}

impl<I, T> Default for IdMap<I, T> {
    fn default() -> Self {
        IdMap {
            items: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: Copy + Into<usize> + From<u32>, T> IdMap<I, T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item and returns its id.
    pub fn push(&mut self, item: T) -> I {
        let id = I::from(self.items.len() as u32);
        self.items.push(item);
        id
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over `(id, &item)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, t)| (I::from(i as u32), t))
    }

    /// Iterates over the ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.items.len()).map(|i| I::from(i as u32))
    }

    /// Removes and returns every entry as `(id, item)` pairs in id
    /// order, leaving the map empty. Re-`push`ing the items in the same
    /// order reproduces the original ids.
    pub fn take_entries(&mut self) -> Vec<(I, T)> {
        std::mem::take(&mut self.items)
            .into_iter()
            .enumerate()
            .map(|(i, t)| (I::from(i as u32), t))
            .collect()
    }
}

impl<I: Copy + Into<usize>, T> std::ops::Index<I> for IdMap<I, T> {
    type Output = T;
    fn index(&self, id: I) -> &T {
        &self.items[id.into()]
    }
}

impl<I: Copy + Into<usize>, T> std::ops::IndexMut<I> for IdMap<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.into()]
    }
}

macro_rules! idmap_conv {
    ($name:ident) => {
        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0 as usize
            }
        }
    };
}

idmap_conv!(TypeId);
idmap_conv!(ObjTypeId);
idmap_conv!(FuncId);
idmap_conv!(ExternId);
idmap_conv!(BlockId);
idmap_conv!(InstId);
idmap_conv!(ValueId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idmap_push_and_index() {
        let mut m: IdMap<ValueId, &str> = IdMap::new();
        let a = m.push("a");
        let b = m.push("b");
        assert_eq!(m[a], "a");
        assert_eq!(m[b], "b");
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn idmap_iter_order() {
        let mut m: IdMap<BlockId, u32> = IdMap::new();
        m.push(10);
        m.push(20);
        let collected: Vec<_> = m.iter().map(|(id, v)| (id.raw(), *v)).collect();
        assert_eq!(collected, vec![(0, 10), (1, 20)]);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ValueId::from_raw(3).to_string(), "%3");
        assert_eq!(BlockId::from_raw(0).to_string(), "bb0");
        assert_eq!(ObjTypeId::from_raw(1).to_string(), "T1");
    }
}
