//! MEMOIR instructions (paper §IV, Fig. 2) in both program forms.
//!
//! MEMOIR programs exist in two forms that share one instruction set:
//!
//! * **Mut form** (the MUT library view, §VI): collections are storage
//!   identified by their defining SSA handle, and `mut.*` instructions
//!   update that storage in place. This is the form produced by frontends
//!   and consumed by lowering.
//! * **SSA form** (§IV): collections are immutable values; `write`,
//!   `insert`, `remove`, `swap`, … produce *new* collection values, and
//!   φ-functions merge collection values exactly like scalars.
//!
//! SSA construction ([`memoir-opt::ssa_construct`]) rewrites mut
//! instructions to SSA instructions following the Fig. 5 rules; SSA
//! destruction (Alg. 3) performs the inverse without introducing spurious
//! copies.
//!
//! Scalar instructions (arithmetic, comparisons, branches, calls) are shared
//! by both forms and are always in SSA.

use crate::ids::{BlockId, ExternId, FuncId, ObjTypeId, TypeId, ValueId};
use std::fmt;

/// A compile-time constant value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Constant {
    /// An integer of the given integer type (`index` included); the payload
    /// is the value sign-extended to 64 bits (or zero-extended for unsigned
    /// types).
    Int(crate::Type, i64),
    /// A float of the given float type, stored as raw bits so constants are
    /// hashable.
    Float(crate::Type, u64),
    /// A boolean.
    Bool(bool),
    /// The null reference of the given object type.
    Null(ObjTypeId),
}

impl Constant {
    /// The type of this constant.
    pub fn ty(self) -> crate::Type {
        match self {
            Constant::Int(ty, _) => ty,
            Constant::Float(ty, _) => ty,
            Constant::Bool(_) => crate::Type::Bool,
            Constant::Null(obj) => crate::Type::Ref(obj),
        }
    }

    /// Convenience constructor for an `index` constant.
    pub fn index(v: u64) -> Self {
        Constant::Int(crate::Type::Index, v as i64)
    }

    /// Convenience constructor for an `i64` constant.
    pub fn i64(v: i64) -> Self {
        Constant::Int(crate::Type::I64, v)
    }

    /// Convenience constructor for an `i32` constant.
    pub fn i32(v: i32) -> Self {
        Constant::Int(crate::Type::I32, v as i64)
    }

    /// Convenience constructor for an `f64` constant.
    pub fn f64(v: f64) -> Self {
        Constant::Float(crate::Type::F64, v.to_bits())
    }

    /// The integer payload, if this is an integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Constant::Int(_, v) => Some(v),
            Constant::Bool(b) => Some(b as i64),
            _ => None,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(ty, v) => write!(f, "{v}:{ty:?}"),
            Constant::Float(ty, bits) => write!(f, "{}:{ty:?}", f64::from_bits(*bits)),
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Null(obj) => write!(f, "null:{obj}"),
        }
    }
}

/// Binary arithmetic and bitwise operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division. Integer division by zero is a trap.
    Div,
    /// Remainder. Integer remainder by zero is a trap.
    Rem,
    /// Bitwise/logical and.
    And,
    /// Bitwise/logical or.
    Or,
    /// Bitwise/logical xor.
    Xor,
    /// Left shift.
    Shl,
    /// Right shift (arithmetic for signed, logical for unsigned).
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Whether `a op b == b op a` for all operands.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
        )
    }

    /// Surface mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Comparison operators. Produce `bool`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Surface mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`a < b` ⇔ `!(a >= b)`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// The target of a call: a function in this module or an external
/// declaration (unknown code under partial compilation, §V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the module.
    Func(FuncId),
    /// An external declaration with a summarized effect.
    Extern(ExternId),
}

/// A MEMOIR instruction.
///
/// Collection-producing SSA instructions return the new collection as their
/// single result; `swap` over two sequences and `call`s of multi-return
/// functions produce several results. Mut-form instructions mutate the
/// storage named by their first operand and produce no collection result.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    // ---------------------------------------------------------------- scalar
    /// Binary arithmetic: `res = op lhs, rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Comparison producing `bool`.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// Numeric conversion to the given type.
    Cast {
        /// Destination type.
        to: TypeId,
        /// Source value.
        value: ValueId,
    },
    /// `res = cond ? then_value : else_value`.
    Select {
        /// Condition.
        cond: ValueId,
        /// Value when true.
        then_value: ValueId,
        /// Value when false.
        else_value: ValueId,
    },
    /// φ-function merging values by predecessor block. Loop-header φs are
    /// the paper's μ-operations. Must appear before any non-φ instruction
    /// of its block.
    Phi {
        /// `(predecessor, value)` incomings; one per predecessor.
        incoming: Vec<(BlockId, ValueId)>,
    },
    /// Call a function. Collection arguments in SSA form flow back to the
    /// caller as extra results (the paper's RETφ); collection parameters
    /// receive their ARGφ role implicitly.
    Call {
        /// Call target.
        callee: Callee,
        /// Arguments.
        args: Vec<ValueId>,
    },

    // --------------------------------------------------------------- control
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch.
    Branch {
        /// Condition (`bool`).
        cond: ValueId,
        /// Target when true.
        then_target: BlockId,
        /// Target when false.
        else_target: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Returned values (possibly several: scalar returns plus live-out
        /// SSA collections).
        values: Vec<ValueId>,
    },
    /// Marks unreachable control flow.
    Unreachable,

    // --------------------------------------------------- collection creation
    /// `seq = new Seq<elem>(len)` — a new sequence of `len` uninitialized
    /// elements. Reading an uninitialized element is undefined behaviour
    /// (the interpreter traps).
    NewSeq {
        /// Element type.
        elem: TypeId,
        /// Length (an `index`); need not be statically known.
        len: ValueId,
    },
    /// `assoc = new Assoc<K, V>` — a new, empty associative array.
    NewAssoc {
        /// Key type.
        key: TypeId,
        /// Value type.
        value: TypeId,
    },
    /// `obj = new T` — allocates an object, returning a reference.
    NewObj {
        /// Object type.
        obj: ObjTypeId,
    },
    /// `delete (obj)` — ends an object's lifetime.
    DeleteObj {
        /// Object reference.
        obj: ValueId,
    },

    // ------------------------------------------------------ SSA collection ops
    /// `v = READ(c, idx)`. Reading an absent index or an uninitialized
    /// element is undefined behaviour.
    Read {
        /// Collection.
        c: ValueId,
        /// Index (sequence index or associative key).
        idx: ValueId,
    },
    /// `c1 = WRITE(c0, idx, v)` — functional element redefinition.
    Write {
        /// Input collection.
        c: ValueId,
        /// Index.
        idx: ValueId,
        /// New element value.
        value: ValueId,
    },
    /// `c1 = RMW(c0, idx, op, v)` — fused read-modify-write:
    /// `c1 = WRITE(c0, idx, op(READ(c0, idx), v))` in one pass over
    /// storage. The element must already be present and initialized (the
    /// read half traps exactly like `READ`), so unlike `WRITE` an `rmw`
    /// never extends an associative key space. Produced by the fusion
    /// pass; never required for expressiveness.
    Rmw {
        /// Input collection.
        c: ValueId,
        /// Index.
        idx: ValueId,
        /// Combining operator applied as `op(old_element, value)`.
        op: BinOp,
        /// Right-hand operand of the combine.
        value: ValueId,
    },
    /// `c1 = INSERT(c0, idx, [v])` — extends the index space. For
    /// sequences, shifts the suffix right by one; for associative arrays,
    /// adds the key.
    Insert {
        /// Input collection.
        c: ValueId,
        /// Index/key to insert.
        idx: ValueId,
        /// Optional initializing value (absent ⇒ element uninitialized).
        value: Option<ValueId>,
    },
    /// `s1 = INSERT(s0, i, src)` — splices the sequence `src` into `s0` at
    /// `i` (§IV-C).
    InsertSeq {
        /// Destination sequence.
        c: ValueId,
        /// Insertion index.
        idx: ValueId,
        /// Source sequence.
        src: ValueId,
    },
    /// `c1 = REMOVE(c0, idx)` — shrinks the index space by one element.
    Remove {
        /// Input collection.
        c: ValueId,
        /// Index/key to remove.
        idx: ValueId,
    },
    /// `s1 = REMOVE(s0, from, to)` — removes the range `[from : to)`
    /// (§IV-C).
    RemoveRange {
        /// Input sequence.
        c: ValueId,
        /// Range start (inclusive).
        from: ValueId,
        /// Range end (exclusive).
        to: ValueId,
    },
    /// `c1 = COPY(c0)` — a fresh collection with the same index-value
    /// mapping.
    Copy {
        /// Input collection.
        c: ValueId,
    },
    /// `s1 = COPY(s0, from, to)` — a fresh sequence holding the range
    /// `[from : to)` of `s0`.
    CopyRange {
        /// Input sequence.
        c: ValueId,
        /// Range start (inclusive).
        from: ValueId,
        /// Range end (exclusive).
        to: ValueId,
    },
    /// `s1 = SWAP(s0, from, to, at)` — swaps ranges `[from : to)` and
    /// `[at : at + (to - from))` within one sequence.
    Swap {
        /// Input sequence.
        c: ValueId,
        /// First range start.
        from: ValueId,
        /// First range end (exclusive).
        to: ValueId,
        /// Second range start.
        at: ValueId,
    },
    /// `s0', s1' = SWAP(s0, from, to, s1, at)` — swaps ranges between two
    /// sequences; two results.
    Swap2 {
        /// First sequence.
        a: ValueId,
        /// Range start in `a`.
        from: ValueId,
        /// Range end in `a` (exclusive).
        to: ValueId,
        /// Second sequence.
        b: ValueId,
        /// Range start in `b`.
        at: ValueId,
    },
    /// `n = SIZE(c)` — number of index-value pairs.
    Size {
        /// Collection.
        c: ValueId,
    },
    /// `b = HAS(assoc, key)` — key membership test.
    Has {
        /// Associative array.
        c: ValueId,
        /// Key.
        key: ValueId,
    },
    /// `s = KEYS(assoc)` — a sequence of the keys, in unspecified order
    /// (deterministic in this implementation: insertion order).
    Keys {
        /// Associative array.
        c: ValueId,
    },
    /// `c1 = USEφ(c0)` — links reads in control-flow order for sparse
    /// analyses (§IV-B); constructed and destructed on demand.
    UsePhi {
        /// Input collection.
        c: ValueId,
    },

    // -------------------------------------------------------- object fields
    /// `v = READ(F_{T.field}, obj)` — reads a field through the field
    /// array of `T.field` (§IV-E).
    FieldRead {
        /// Object reference.
        obj: ValueId,
        /// Object type that owns the field.
        obj_ty: ObjTypeId,
        /// Field index within the definition.
        field: u32,
    },
    /// Writes a field through its field array. Field arrays are kept in
    /// heap form in this implementation (see DESIGN.md §6): a field write
    /// updates the per-field heap array in place in both program forms.
    FieldWrite {
        /// Object reference.
        obj: ValueId,
        /// Object type that owns the field.
        obj_ty: ObjTypeId,
        /// Field index within the definition.
        field: u32,
        /// Stored value.
        value: ValueId,
    },

    // ------------------------------------------------------ mut-form (Fig. 5)
    /// `mut.write(c, idx, v)` — in-place element redefinition.
    MutWrite {
        /// Mutated collection.
        c: ValueId,
        /// Index.
        idx: ValueId,
        /// New value.
        value: ValueId,
    },
    /// `mut.rmw(c, idx, op, v)` — in-place fused read-modify-write:
    /// `mut.write(c, idx, op(read(c, idx), v))` in one pass over storage.
    MutRmw {
        /// Mutated collection.
        c: ValueId,
        /// Index.
        idx: ValueId,
        /// Combining operator applied as `op(old_element, value)`.
        op: BinOp,
        /// Right-hand operand of the combine.
        value: ValueId,
    },
    /// `mut.insert(c, idx, [v])` — in-place insertion.
    MutInsert {
        /// Mutated collection.
        c: ValueId,
        /// Index/key.
        idx: ValueId,
        /// Optional initializing value.
        value: Option<ValueId>,
    },
    /// `mut.insert(s, i, src)` — in-place sequence splice.
    MutInsertSeq {
        /// Mutated sequence.
        c: ValueId,
        /// Insertion index.
        idx: ValueId,
        /// Source sequence.
        src: ValueId,
    },
    /// `mut.remove(c, idx)` — in-place removal.
    MutRemove {
        /// Mutated collection.
        c: ValueId,
        /// Index/key.
        idx: ValueId,
    },
    /// `mut.remove(s, from, to)` — in-place range removal.
    MutRemoveRange {
        /// Mutated sequence.
        c: ValueId,
        /// Range start.
        from: ValueId,
        /// Range end (exclusive).
        to: ValueId,
    },
    /// `mut.append(s, src)` — appends `src` (Fig. 5: `INSERT(s, end, s2)`).
    MutAppend {
        /// Mutated sequence.
        c: ValueId,
        /// Appended sequence.
        src: ValueId,
    },
    /// `mut.swap(s, from, to, at)` — in-place range swap within one
    /// sequence.
    MutSwap {
        /// Mutated sequence.
        c: ValueId,
        /// First range start.
        from: ValueId,
        /// First range end (exclusive).
        to: ValueId,
        /// Second range start.
        at: ValueId,
    },
    /// `mut.swap(s0, from, to, s1, at)` — in-place range swap between two
    /// sequences.
    MutSwap2 {
        /// First sequence.
        a: ValueId,
        /// Range start in `a`.
        from: ValueId,
        /// Range end in `a` (exclusive).
        to: ValueId,
        /// Second sequence.
        b: ValueId,
        /// Range start in `b`.
        at: ValueId,
    },
    /// `s2 = mut.split(s, from, to)` — removes `[from : to)` from `s` and
    /// returns it as a fresh sequence (Fig. 5: `COPY` + `REMOVE`).
    MutSplit {
        /// Mutated sequence.
        c: ValueId,
        /// Range start.
        from: ValueId,
        /// Range end (exclusive).
        to: ValueId,
    },
}

/// Effect classification of an instruction, used by analyses and DCE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// No observable effect; result depends only on operands.
    Pure,
    /// Reads collection/heap state but does not change it.
    ReadMem,
    /// Mutates collection/heap state in place (mut form, field writes,
    /// object allocation).
    WriteMem,
    /// Transfers control.
    Control,
    /// Calls — effects are those of the callee.
    CallLike,
}

impl InstKind {
    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Jump { .. }
                | InstKind::Branch { .. }
                | InstKind::Ret { .. }
                | InstKind::Unreachable
        )
    }

    /// Whether this is a φ (or USEφ-style) merge that must stay at block
    /// head.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi { .. })
    }

    /// Effect classification.
    pub fn effect(&self) -> Effect {
        use InstKind::*;
        match self {
            Bin { .. } | Cmp { .. } | Cast { .. } | Select { .. } | Phi { .. } => Effect::Pure,
            // SSA collection ops are pure value operations.
            NewSeq { .. } | NewAssoc { .. } => Effect::Pure,
            Write { .. }
            | Insert { .. }
            | InsertSeq { .. }
            | Remove { .. }
            | RemoveRange { .. }
            | Copy { .. }
            | CopyRange { .. }
            | Swap { .. }
            | Swap2 { .. }
            | UsePhi { .. }
            | Keys { .. } => Effect::Pure,
            // `rmw` reads the prior element (and traps like `read` when it
            // is absent/uninitialized), so it is ReadMem, not Pure: DCE
            // must keep the trap even when the new version is unused.
            Read { .. } | Size { .. } | Has { .. } | Rmw { .. } => Effect::ReadMem,
            FieldRead { .. } => Effect::ReadMem,
            NewObj { .. } | DeleteObj { .. } | FieldWrite { .. } => Effect::WriteMem,
            MutWrite { .. }
            | MutRmw { .. }
            | MutInsert { .. }
            | MutInsertSeq { .. }
            | MutRemove { .. }
            | MutRemoveRange { .. }
            | MutAppend { .. }
            | MutSwap { .. }
            | MutSwap2 { .. }
            | MutSplit { .. } => Effect::WriteMem,
            Call { .. } => Effect::CallLike,
            Jump { .. } | Branch { .. } | Ret { .. } | Unreachable => Effect::Control,
        }
    }

    /// Whether this is a mut-form instruction (in-place collection update).
    pub fn is_mut_op(&self) -> bool {
        use InstKind::*;
        matches!(
            self,
            MutWrite { .. }
                | MutRmw { .. }
                | MutInsert { .. }
                | MutInsertSeq { .. }
                | MutRemove { .. }
                | MutRemoveRange { .. }
                | MutAppend { .. }
                | MutSwap { .. }
                | MutSwap2 { .. }
                | MutSplit { .. }
        )
    }

    /// Whether this is an SSA-form collection update (produces a new
    /// collection value from an old one).
    pub fn is_ssa_collection_op(&self) -> bool {
        use InstKind::*;
        matches!(
            self,
            Write { .. }
                | Rmw { .. }
                | Insert { .. }
                | InsertSeq { .. }
                | Remove { .. }
                | RemoveRange { .. }
                | Swap { .. }
                | Swap2 { .. }
                | UsePhi { .. }
        )
    }

    /// The collections this instruction mutates in place (mut form).
    pub fn mutated_collections(&self) -> Vec<ValueId> {
        use InstKind::*;
        match self {
            MutWrite { c, .. }
            | MutRmw { c, .. }
            | MutInsert { c, .. }
            | MutInsertSeq { c, .. }
            | MutRemove { c, .. }
            | MutRemoveRange { c, .. }
            | MutAppend { c, .. }
            | MutSwap { c, .. }
            | MutSplit { c, .. } => vec![*c],
            MutSwap2 { a, b, .. } => vec![*a, *b],
            _ => Vec::new(),
        }
    }

    /// All value operands, in a stable order.
    pub fn operands(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        self.visit_operands(|v| out.push(*v));
        out
    }

    /// Visits every value operand immutably.
    pub fn visit_operands(&self, mut f: impl FnMut(&ValueId)) {
        // Delegate to the mutable visitor through a clone-free match by
        // duplicating the traversal. To avoid divergence, both visitors are
        // generated from the same match arms below.
        use InstKind::*;
        match self {
            Bin { lhs, rhs, .. } | Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Cast { value, .. } => f(value),
            Select {
                cond,
                then_value,
                else_value,
            } => {
                f(cond);
                f(then_value);
                f(else_value);
            }
            Phi { incoming } => {
                for (_, v) in incoming {
                    f(v);
                }
            }
            Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Jump { .. } | Unreachable => {}
            Branch { cond, .. } => f(cond),
            Ret { values } => {
                for v in values {
                    f(v);
                }
            }
            NewSeq { len, .. } => f(len),
            NewAssoc { .. } | NewObj { .. } => {}
            DeleteObj { obj } => f(obj),
            Read { c, idx } => {
                f(c);
                f(idx);
            }
            Write { c, idx, value }
            | MutWrite { c, idx, value }
            | Rmw { c, idx, value, .. }
            | MutRmw { c, idx, value, .. } => {
                f(c);
                f(idx);
                f(value);
            }
            Insert { c, idx, value } | MutInsert { c, idx, value } => {
                f(c);
                f(idx);
                if let Some(v) = value {
                    f(v);
                }
            }
            InsertSeq { c, idx, src } | MutInsertSeq { c, idx, src } => {
                f(c);
                f(idx);
                f(src);
            }
            Remove { c, idx } | MutRemove { c, idx } => {
                f(c);
                f(idx);
            }
            RemoveRange { c, from, to }
            | CopyRange { c, from, to }
            | MutRemoveRange { c, from, to }
            | MutSplit { c, from, to } => {
                f(c);
                f(from);
                f(to);
            }
            Copy { c } | Size { c } | Keys { c } | UsePhi { c } => f(c),
            Swap { c, from, to, at } | MutSwap { c, from, to, at } => {
                f(c);
                f(from);
                f(to);
                f(at);
            }
            Swap2 { a, from, to, b, at } | MutSwap2 { a, from, to, b, at } => {
                f(a);
                f(from);
                f(to);
                f(b);
                f(at);
            }
            Has { c, key } => {
                f(c);
                f(key);
            }
            MutAppend { c, src } => {
                f(c);
                f(src);
            }
            FieldRead { obj, .. } => f(obj),
            FieldWrite { obj, value, .. } => {
                f(obj);
                f(value);
            }
        }
    }

    /// Visits every value operand mutably (used to rewrite uses).
    pub fn visit_operands_mut(&mut self, mut f: impl FnMut(&mut ValueId)) {
        use InstKind::*;
        match self {
            Bin { lhs, rhs, .. } | Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Cast { value, .. } => f(value),
            Select {
                cond,
                then_value,
                else_value,
            } => {
                f(cond);
                f(then_value);
                f(else_value);
            }
            Phi { incoming } => {
                for (_, v) in incoming {
                    f(v);
                }
            }
            Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Jump { .. } | Unreachable => {}
            Branch { cond, .. } => f(cond),
            Ret { values } => {
                for v in values {
                    f(v);
                }
            }
            NewSeq { len, .. } => f(len),
            NewAssoc { .. } | NewObj { .. } => {}
            DeleteObj { obj } => f(obj),
            Read { c, idx } => {
                f(c);
                f(idx);
            }
            Write { c, idx, value }
            | MutWrite { c, idx, value }
            | Rmw { c, idx, value, .. }
            | MutRmw { c, idx, value, .. } => {
                f(c);
                f(idx);
                f(value);
            }
            Insert { c, idx, value } | MutInsert { c, idx, value } => {
                f(c);
                f(idx);
                if let Some(v) = value {
                    f(v);
                }
            }
            InsertSeq { c, idx, src } | MutInsertSeq { c, idx, src } => {
                f(c);
                f(idx);
                f(src);
            }
            Remove { c, idx } | MutRemove { c, idx } => {
                f(c);
                f(idx);
            }
            RemoveRange { c, from, to }
            | CopyRange { c, from, to }
            | MutRemoveRange { c, from, to }
            | MutSplit { c, from, to } => {
                f(c);
                f(from);
                f(to);
            }
            Copy { c } | Size { c } | Keys { c } | UsePhi { c } => f(c),
            Swap { c, from, to, at } | MutSwap { c, from, to, at } => {
                f(c);
                f(from);
                f(to);
                f(at);
            }
            Swap2 { a, from, to, b, at } | MutSwap2 { a, from, to, b, at } => {
                f(a);
                f(from);
                f(to);
                f(b);
                f(at);
            }
            Has { c, key } => {
                f(c);
                f(key);
            }
            MutAppend { c, src } => {
                f(c);
                f(src);
            }
            FieldRead { obj, .. } => f(obj),
            FieldWrite { obj, value, .. } => {
                f(obj);
                f(value);
            }
        }
    }

    /// Successor blocks named by a terminator (empty for non-terminators).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Jump { target } => vec![*target],
            InstKind::Branch {
                then_target,
                else_target,
                ..
            } => {
                if then_target == else_target {
                    vec![*then_target]
                } else {
                    vec![*then_target, *else_target]
                }
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites successor block references through `f` (used by CFG edits).
    pub fn visit_successors_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            InstKind::Jump { target } => f(target),
            InstKind::Branch {
                then_target,
                else_target,
                ..
            } => {
                f(then_target);
                f(else_target);
            }
            _ => {}
        }
    }
}

/// An instruction node: its kind plus the result values it defines.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    /// Operation.
    pub kind: InstKind,
    /// Results, in order. Most instructions define zero or one value;
    /// `swap` across two sequences and multi-return calls define several.
    pub results: Vec<ValueId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Type;

    fn v(n: u32) -> ValueId {
        ValueId::from_raw(n)
    }

    #[test]
    fn operands_and_rewrite_agree() {
        let mut inst = InstKind::Swap2 {
            a: v(0),
            from: v(1),
            to: v(2),
            b: v(3),
            at: v(4),
        };
        assert_eq!(inst.operands(), vec![v(0), v(1), v(2), v(3), v(4)]);
        inst.visit_operands_mut(|op| *op = ValueId::from_raw(op.raw() + 10));
        assert_eq!(inst.operands(), vec![v(10), v(11), v(12), v(13), v(14)]);
    }

    #[test]
    fn effects_classify_forms() {
        assert_eq!(
            InstKind::Write {
                c: v(0),
                idx: v(1),
                value: v(2)
            }
            .effect(),
            Effect::Pure
        );
        assert_eq!(
            InstKind::MutWrite {
                c: v(0),
                idx: v(1),
                value: v(2)
            }
            .effect(),
            Effect::WriteMem
        );
        assert_eq!(
            InstKind::Read { c: v(0), idx: v(1) }.effect(),
            Effect::ReadMem
        );
        assert!(InstKind::Ret { values: vec![] }.is_terminator());
        assert!(InstKind::MutAppend { c: v(0), src: v(1) }.is_mut_op());
        assert!(InstKind::Swap {
            c: v(0),
            from: v(1),
            to: v(2),
            at: v(3)
        }
        .is_ssa_collection_op());
    }

    #[test]
    fn mutated_collections_reported() {
        let k = InstKind::MutSwap2 {
            a: v(0),
            from: v(1),
            to: v(2),
            b: v(3),
            at: v(4),
        };
        assert_eq!(k.mutated_collections(), vec![v(0), v(3)]);
        let k = InstKind::Write {
            c: v(0),
            idx: v(1),
            value: v(2),
        };
        assert!(k.mutated_collections().is_empty());
    }

    #[test]
    fn branch_successors_dedupe() {
        let b = InstKind::Branch {
            cond: v(0),
            then_target: BlockId::from_raw(1),
            else_target: BlockId::from_raw(1),
        };
        assert_eq!(b.successors().len(), 1);
        let b = InstKind::Branch {
            cond: v(0),
            then_target: BlockId::from_raw(1),
            else_target: BlockId::from_raw(2),
        };
        assert_eq!(b.successors().len(), 2);
    }

    #[test]
    fn constant_accessors() {
        assert_eq!(Constant::index(5).ty(), Type::Index);
        assert_eq!(Constant::i64(-3).as_int(), Some(-3));
        assert_eq!(Constant::Bool(true).as_int(), Some(1));
        assert_eq!(Constant::f64(1.5).as_int(), None);
        assert_eq!(Constant::f64(1.5).ty(), Type::F64);
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }
}
