//! # memoir-ir
//!
//! The **Memory Object Intermediate Representation** (MEMOIR) from
//! *"Representing Data Collections in an SSA Form"* (CGO 2024): a
//! language-agnostic SSA form for sequential and associative data
//! collections, objects, and the fields contained therein.
//!
//! The core idea is a decoupling of the memory used to *store* data from the
//! memory used to *logically organize* data: collections become immutable
//! SSA values with unambiguous operations (`read`, `write`, `insert`,
//! `remove`, `copy`, `swap`, `size`, `has`, `keys`), which enables sparse,
//! element-level data-flow analysis via def-use chains.
//!
//! This crate defines the IR itself:
//!
//! * [`Type`], [`TypeTable`], [`ObjectType`] — the static, strong type
//!   system (§IV-E) with object types and per-field *field arrays*;
//! * [`InstKind`] — the instruction set of Fig. 2, in both the mutable
//!   (MUT-library) and SSA forms;
//! * [`Function`], [`Module`] — arena-based program containers;
//! * [`FunctionBuilder`] / [`ModuleBuilder`] — ergonomic construction;
//! * [`printer`] / [`parser`] — a stable textual format;
//! * [`verifier`] — structural, type, SSA-dominance, and form invariants.
//!
//! Analyses live in `memoir-analysis`, transformations in `memoir-opt`,
//! the interpreter in `memoir-interp`, and lowering in `memoir-lower`.
//!
//! ## Example
//!
//! ```
//! use memoir_ir::{ModuleBuilder, Form, Type};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! mb.func("sum_first_two", Form::Ssa, |b| {
//!     let i64t = b.ty(Type::I64);
//!     let seq_ty = b.types.seq_of(i64t);
//!     let s = b.param("s", seq_ty);
//!     let zero = b.index(0);
//!     let one = b.index(1);
//!     let a = b.read(s, zero);
//!     let c = b.read(s, one);
//!     let sum = b.add(a, c);
//!     b.returns(&[i64t]);
//!     b.ret(vec![sum]);
//! });
//! let module = mb.finish();
//! memoir_ir::verifier::assert_valid(&module);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
pub mod fingerprint;
mod function;
mod ids;
mod inst;
mod module;
pub mod parser;
pub mod printer;
pub mod repr;
mod types;
pub mod verifier;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use function::{Block, Form, Function, Param, Value, ValueDef};
pub use ids::{BlockId, ExternId, FuncId, IdMap, InstId, ObjTypeId, TypeId, ValueId};
pub use inst::{BinOp, Callee, CmpOp, Constant, Effect, Inst, InstKind};
pub use module::{CollectionCensus, ExternDecl, ExternEffects, Module};
pub use repr::{Repr, ReprChoices};
pub use types::{Field, ObjectLayout, ObjectType, Type, TypeError, TypeTable};
