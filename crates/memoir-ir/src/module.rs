//! Modules: the compilation unit holding functions, externs, and types.

use crate::ids::{ExternId, FuncId, IdMap, TypeId};
use crate::{Form, Function, TypeTable};

/// Summarized effects of an external (unknown) function, used under partial
/// compilation (§V): externally visible behaviour must be assumed where not
/// summarized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExternEffects {
    /// May read collection arguments.
    pub reads_args: bool,
    /// May mutate collection arguments.
    pub writes_args: bool,
    /// Has effects beyond its arguments (I/O, globals).
    pub opaque: bool,
}

impl ExternEffects {
    /// A pure summarized computation (like the paper's `check_cost` /
    /// `check_opt`): reads its arguments, no side effects.
    pub fn pure_reader() -> Self {
        ExternEffects {
            reads_args: true,
            writes_args: false,
            opaque: false,
        }
    }

    /// Fully unknown code: assume everything.
    pub fn unknown() -> Self {
        ExternEffects {
            reads_args: true,
            writes_args: true,
            opaque: true,
        }
    }
}

/// Declaration of an external function.
#[derive(Clone, Debug)]
pub struct ExternDecl {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<TypeId>,
    /// Return types.
    pub ret_tys: Vec<TypeId>,
    /// Effect summary.
    pub effects: ExternEffects,
}

/// A MEMOIR module.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Type table (interned types + object type definitions).
    pub types: TypeTable,
    /// Function definitions.
    pub funcs: IdMap<FuncId, Function>,
    /// External declarations.
    pub externs: IdMap<ExternId, ExternDecl>,
    /// The designated entry function, if any (used by the interpreter and
    /// by transformations that thread state from "the beginning of the
    /// program's entry function", §V).
    pub entry: Option<FuncId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f)
    }

    /// Declares an external function.
    pub fn add_extern(&mut self, decl: ExternDecl) -> ExternId {
        self.externs.push(decl)
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
    }

    /// Total reachable instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|(_, f)| f.live_inst_count()).sum()
    }

    /// Module-wide collection census: the paper's Table III counts.
    pub fn collection_census(&self) -> CollectionCensus {
        let mut census = CollectionCensus::default();
        for (_, f) in self.funcs.iter() {
            census.allocations += f.collection_allocations();
            census.ssa_variables += f.collection_values(&self.types);
        }
        census
    }

    /// Whether every function is in the given form.
    pub fn all_in_form(&self, form: Form) -> bool {
        self.funcs.iter().all(|(_, f)| f.form == form)
    }
}

/// MEMOIR modules can be driven by the generic `passman` pass-manager
/// framework; functions are keyed by [`FuncId`].
impl passman::IrUnit for Module {
    type FuncKey = FuncId;

    fn func_keys(&self) -> Vec<FuncId> {
        self.funcs.ids().collect()
    }

    fn size_hint(&self) -> usize {
        self.inst_count()
    }

    fn supports_fingerprints(&self) -> bool {
        true
    }

    fn fingerprints(&self) -> Vec<(FuncId, passman::Fingerprint)> {
        crate::fingerprint::module_fingerprints(self)
    }
}

/// Functions detach from the module shell (name, types, externs, entry
/// stay behind), enabling function-sharded passes and per-function
/// copy-on-write snapshots.
impl passman::ShardedIr for Module {
    type Func = Function;

    fn detach_funcs(&mut self) -> Vec<(FuncId, Function)> {
        self.funcs.take_entries()
    }

    fn attach_funcs(&mut self, funcs: Vec<(FuncId, Function)>) {
        debug_assert!(self.funcs.is_empty(), "attach over detached shell only");
        for (id, f) in funcs {
            let got = self.funcs.push(f);
            debug_assert_eq!(got, id, "functions must re-attach in id order");
        }
    }

    fn clone_func(&self, key: FuncId) -> Function {
        self.funcs[key].clone()
    }

    fn restore_func(&mut self, key: FuncId, func: Function) {
        self.funcs[key] = func;
    }

    fn func_size_hint(&self, key: FuncId) -> usize {
        self.funcs[key].live_inst_count()
    }
}

/// Module-wide collection statistics (Table III's "# Collections").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectionCensus {
    /// Collection-allocating operations (`new`, `copy`, `split`, `keys`) —
    /// the paper's "Source"/"Binary" columns count these.
    pub allocations: usize,
    /// Collection-typed SSA variables — the paper's "SSA" column.
    pub ssa_variables: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Form, Function};

    #[test]
    fn func_lookup_by_name() {
        let mut m = Module::new("m");
        let id = m.add_func(Function::new("qsort", Form::Mut));
        assert_eq!(m.func_by_name("qsort"), Some(id));
        assert_eq!(m.func_by_name("missing"), None);
    }

    #[test]
    fn extern_effects_presets() {
        let p = ExternEffects::pure_reader();
        assert!(p.reads_args && !p.writes_args && !p.opaque);
        let u = ExternEffects::unknown();
        assert!(u.reads_args && u.writes_args && u.opaque);
    }

    #[test]
    fn form_query() {
        let mut m = Module::new("m");
        m.add_func(Function::new("a", Form::Mut));
        assert!(m.all_in_form(Form::Mut));
        m.add_func(Function::new("b", Form::Ssa));
        assert!(!m.all_in_form(Form::Mut));
        assert!(!m.all_in_form(Form::Ssa));
    }
}
