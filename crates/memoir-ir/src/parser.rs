//! Parser for the textual MEMOIR format emitted by [`crate::printer`].
//!
//! The grammar is line-oriented: a module header, object type definitions,
//! extern declarations, then functions whose bodies are labelled blocks of
//! one instruction per line. The parser is a hand-written recursive-descent
//! over a small token stream and reconstructs a [`Module`] that round-trips
//! through the printer.

use crate::ids::{BlockId, InstId, ObjTypeId, TypeId, ValueId};
use crate::inst::{BinOp, Callee, CmpOp, Constant, Inst, InstKind};
use crate::{ExternDecl, ExternEffects, Field, Form, Function, Module, Type, Value, ValueDef};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parses a module from its textual form.
pub fn parse_module(src: &str) -> PResult<Module> {
    Parser::new(src).parse()
}

// --------------------------------------------------------------- tokenizer

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Percent,
    At,
    Amp,
    Lt,
    Gt,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Eq,
    Arrow,
    Bang,
    Minus,
}

fn tokenize(line: &str, lineno: usize) -> PResult<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            ';' => break, // comment
            '%' => {
                toks.push(Tok::Percent);
                i += 1;
            }
            '@' => {
                toks.push(Tok::At);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '<' => {
                toks.push(Tok::Lt);
                i += 1;
            }
            '>' => {
                toks.push(Tok::Gt);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' => {
                toks.push(Tok::Bang);
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '>' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    toks.push(Tok::Minus);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                }
                // A trailing '.' belongs to the number only if followed by a
                // digit; numbers inside names (e.g. `%x.3`) never reach here
                // because names start with a letter after `%`.
                let text: String = bytes[start..i].iter().collect();
                toks.push(Tok::Number(text));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    i += 1;
                }
                // Do not swallow a trailing '.' (can't happen: '.' is always
                // followed by alnum in our format).
                let text: String = bytes[start..i].iter().collect();
                toks.push(Tok::Ident(text));
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    lines: Vec<(usize, Vec<Tok>)>,
    pos: usize,
    src: &'a str,
    /// Result types recorded in parse order for instructions whose result
    /// type is written in their syntax (φ annotations and `new` operators);
    /// consumed in the same order by `commit_staged`.
    noted: RefCell<Vec<TypeId>>,
}

struct LineCursor<'t> {
    toks: &'t [Tok],
    i: usize,
    line: usize,
}

impl<'t> LineCursor<'t> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> PResult<&Tok> {
        let t = self.toks.get(self.i).ok_or_else(|| ParseError {
            line: self.line,
            message: "unexpected end of line".into(),
        })?;
        self.i += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> PResult<()> {
        let line = self.line;
        let t = self.next()?;
        if t == want {
            Ok(())
        } else {
            Err(ParseError {
                line,
                message: format!("expected {want:?}, found {t:?}"),
            })
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        let line = self.line;
        match self.next()? {
            Tok::Ident(s) => Ok(s.clone()),
            other => Err(ParseError {
                line,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn done(&self) -> bool {
        self.i >= self.toks.len()
    }
}

/// Staged instruction before result types are known.
struct Staged {
    block: BlockId,
    kind: InstKind,
    result_names: Vec<String>,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(n, l)| (n + 1, l))
            .filter_map(|(n, l)| match tokenize(l, n) {
                Ok(toks) if toks.is_empty() => None,
                Ok(toks) => Some(Ok((n, toks))),
                Err(e) => Some(Err(e)),
            })
            .collect::<PResult<Vec<_>>>();
        // Tokenization errors are deferred to parse().
        match lines {
            Ok(lines) => Parser {
                lines,
                pos: 0,
                src,
                noted: RefCell::new(Vec::new()),
            },
            Err(e) => Parser {
                lines: vec![(e.line, vec![Tok::Ident(format!("\u{0}{}", e.message))])],
                pos: 0,
                src,
                noted: RefCell::new(Vec::new()),
            },
        }
    }

    fn parse(mut self) -> PResult<Module> {
        // Surface deferred tokenizer errors.
        if let Some((line, toks)) = self.lines.first() {
            if let Some(Tok::Ident(s)) = toks.first() {
                if let Some(msg) = s.strip_prefix('\u{0}') {
                    return Err(ParseError {
                        line: *line,
                        message: msg.to_string(),
                    });
                }
            }
        }
        let mut module = Module::new("anonymous");
        // Pre-intern types that inference synthesizes without seeing them
        // spelled in the source.
        module.types.intern(Type::Index);
        module.types.intern(Type::Bool);
        module.types.intern(Type::Void);

        // Header.
        if let Some((_, toks)) = self.lines.first() {
            if toks.first() == Some(&Tok::Ident("module".into())) {
                if let Some(Tok::Ident(name)) = toks.get(1) {
                    module.name = name.clone();
                }
                self.pos += 1;
            }
        }

        // Pass 1: type definitions, externs, and function signatures.
        let mut obj_names: HashMap<String, ObjTypeId> = HashMap::new();
        let mut fn_sigs: HashMap<String, crate::FuncId> = HashMap::new();
        let mut extern_names: HashMap<String, crate::ExternId> = HashMap::new();
        let mut body_ranges: Vec<(String, usize, usize)> = Vec::new(); // (fn name, start, end)

        let mut i = self.pos;
        while i < self.lines.len() {
            let (line, toks) = &self.lines[i];
            let head = match toks.first() {
                Some(Tok::Ident(s)) => s.as_str(),
                _ => "",
            };
            match head {
                "type" => {
                    let mut c = LineCursor {
                        toks,
                        i: 1,
                        line: *line,
                    };
                    let name = c.ident()?;
                    c.expect(&Tok::Eq)?;
                    c.expect(&Tok::LBrace)?;
                    let mut fields = Vec::new();
                    if !c.eat(&Tok::RBrace) {
                        loop {
                            let fname = c.ident()?;
                            c.expect(&Tok::Colon)?;
                            let fty = self.parse_type(&mut c, &mut module, &obj_names)?;
                            fields.push(Field {
                                name: fname,
                                ty: fty,
                            });
                            if c.eat(&Tok::RBrace) {
                                break;
                            }
                            c.expect(&Tok::Comma)?;
                        }
                    }
                    let id = module
                        .types
                        .define_object(name.clone(), fields)
                        .map_err(|e| ParseError {
                            line: *line,
                            message: e.to_string(),
                        })?;
                    obj_names.insert(name, id);
                    i += 1;
                }
                "extern" => {
                    let mut c = LineCursor {
                        toks,
                        i: 1,
                        line: *line,
                    };
                    let name = c.ident()?;
                    c.expect(&Tok::LParen)?;
                    let mut params = Vec::new();
                    if !c.eat(&Tok::RParen) {
                        loop {
                            params.push(self.parse_type(&mut c, &mut module, &obj_names)?);
                            if c.eat(&Tok::RParen) {
                                break;
                            }
                            c.expect(&Tok::Comma)?;
                        }
                    }
                    c.expect(&Tok::Arrow)?;
                    c.expect(&Tok::LParen)?;
                    let mut rets = Vec::new();
                    if !c.eat(&Tok::RParen) {
                        loop {
                            rets.push(self.parse_type(&mut c, &mut module, &obj_names)?);
                            if c.eat(&Tok::RParen) {
                                break;
                            }
                            c.expect(&Tok::Comma)?;
                        }
                    }
                    c.expect(&Tok::LBracket)?;
                    let eff = c.ident()?;
                    c.expect(&Tok::RBracket)?;
                    let effects = match eff.as_str() {
                        "pure" => ExternEffects::pure_reader(),
                        "writes" => ExternEffects {
                            reads_args: true,
                            writes_args: true,
                            opaque: false,
                        },
                        "opaque" => ExternEffects::unknown(),
                        "const" => ExternEffects {
                            reads_args: false,
                            writes_args: false,
                            opaque: false,
                        },
                        other => {
                            return Err(ParseError {
                                line: *line,
                                message: format!("unknown extern effect `{other}`"),
                            })
                        }
                    };
                    let id = module.add_extern(ExternDecl {
                        name: name.clone(),
                        params,
                        ret_tys: rets,
                        effects,
                    });
                    extern_names.insert(name, id);
                    i += 1;
                }
                "fn" => {
                    let mut c = LineCursor {
                        toks,
                        i: 1,
                        line: *line,
                    };
                    let name = c.ident()?;
                    c.expect(&Tok::LParen)?;
                    let mut params: Vec<(String, TypeId, bool)> = Vec::new();
                    if !c.eat(&Tok::RParen) {
                        loop {
                            let by_ref = c.eat(&Tok::Amp);
                            let pname = c.ident()?;
                            c.expect(&Tok::Colon)?;
                            let pty = self.parse_type(&mut c, &mut module, &obj_names)?;
                            params.push((pname, pty, by_ref));
                            if c.eat(&Tok::RParen) {
                                break;
                            }
                            c.expect(&Tok::Comma)?;
                        }
                    }
                    c.expect(&Tok::Arrow)?;
                    c.expect(&Tok::LParen)?;
                    let mut rets = Vec::new();
                    if !c.eat(&Tok::RParen) {
                        loop {
                            rets.push(self.parse_type(&mut c, &mut module, &obj_names)?);
                            if c.eat(&Tok::RParen) {
                                break;
                            }
                            c.expect(&Tok::Comma)?;
                        }
                    }
                    // form=ssa|mut
                    let form_tok = c.ident()?;
                    let form = match form_tok.as_str() {
                        "form" => {
                            c.expect(&Tok::Eq)?;
                            match c.ident()?.as_str() {
                                "ssa" => Form::Ssa,
                                "mut" => Form::Mut,
                                other => {
                                    return Err(ParseError {
                                        line: *line,
                                        message: format!("unknown form `{other}`"),
                                    })
                                }
                            }
                        }
                        other => {
                            return Err(ParseError {
                                line: *line,
                                message: format!("expected `form=`, found `{other}`"),
                            })
                        }
                    };
                    c.expect(&Tok::LBrace)?;
                    let mut f = Function::new(name.clone(), form);
                    // Drop the implicit entry block: bodies declare all
                    // blocks by label, the first label being the entry.
                    f.blocks = crate::IdMap::new();
                    f.entry = BlockId::from_raw(0);
                    for (pname, pty, by_ref) in params {
                        f.add_param(pname, pty, by_ref);
                    }
                    f.ret_tys = rets;
                    let fid = module.add_func(f);
                    fn_sigs.insert(name.clone(), fid);
                    // Find body end: matching line with single `}`.
                    let start = i + 1;
                    let mut end = start;
                    while end < self.lines.len() {
                        if self.lines[end].1 == vec![Tok::RBrace] {
                            break;
                        }
                        end += 1;
                    }
                    if end == self.lines.len() {
                        return Err(ParseError {
                            line: *line,
                            message: "unterminated function body".into(),
                        });
                    }
                    body_ranges.push((name, start, end));
                    i = end + 1;
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unexpected top-level token `{other}`"),
                    })
                }
            }
        }

        // Pass 2: bodies.
        for (name, start, end) in body_ranges {
            let fid = fn_sigs[&name];
            self.parse_body(
                &mut module,
                fid,
                start,
                end,
                &obj_names,
                &fn_sigs,
                &extern_names,
            )?;
        }
        let _ = self.src;
        Ok(module)
    }

    fn parse_type(
        &self,
        c: &mut LineCursor<'_>,
        module: &mut Module,
        obj_names: &HashMap<String, ObjTypeId>,
    ) -> PResult<TypeId> {
        let line = c.line;
        if c.eat(&Tok::Amp) {
            let name = c.ident()?;
            let obj = *obj_names.get(&name).ok_or_else(|| ParseError {
                line,
                message: format!("unknown object type `{name}`"),
            })?;
            return Ok(module.types.ref_of(obj));
        }
        let name = c.ident()?;
        let prim = |t: Type, m: &mut Module| Ok(m.types.intern(t));
        match name.as_str() {
            "i64" => prim(Type::I64, module),
            "i32" => prim(Type::I32, module),
            "i16" => prim(Type::I16, module),
            "i8" => prim(Type::I8, module),
            "u64" => prim(Type::U64, module),
            "u32" => prim(Type::U32, module),
            "u16" => prim(Type::U16, module),
            "u8" => prim(Type::U8, module),
            "bool" => prim(Type::Bool, module),
            "index" => prim(Type::Index, module),
            "f64" => prim(Type::F64, module),
            "f32" => prim(Type::F32, module),
            "ptr" => prim(Type::Ptr, module),
            "void" => prim(Type::Void, module),
            "Seq" => {
                c.expect(&Tok::Lt)?;
                let elem = self.parse_type(c, module, obj_names)?;
                c.expect(&Tok::Gt)?;
                Ok(module.types.seq_of(elem))
            }
            "Assoc" => {
                c.expect(&Tok::Lt)?;
                let k = self.parse_type(c, module, obj_names)?;
                c.expect(&Tok::Comma)?;
                let v = self.parse_type(c, module, obj_names)?;
                c.expect(&Tok::Gt)?;
                Ok(module.types.assoc_of(k, v))
            }
            other => match obj_names.get(other) {
                Some(&obj) => Ok(module.types.intern(Type::Object(obj))),
                None => Err(ParseError {
                    line,
                    message: format!("unknown type `{other}`"),
                }),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_body(
        &self,
        module: &mut Module,
        fid: crate::FuncId,
        start: usize,
        end: usize,
        obj_names: &HashMap<String, ObjTypeId>,
        fn_sigs: &HashMap<String, crate::FuncId>,
        extern_names: &HashMap<String, crate::ExternId>,
    ) -> PResult<()> {
        // φ/new result-type notes are per-body (consumed positionally by
        // commit_staged); clear leftovers from the previous function.
        self.noted.borrow_mut().clear();
        // Collect block labels first so branches can forward-reference.
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        {
            let f = &mut module.funcs[fid];
            for idx in start..end {
                let (_, toks) = &self.lines[idx];
                if toks.len() == 2 && matches!(toks[0], Tok::Ident(_)) && toks[1] == Tok::Colon {
                    if let Tok::Ident(label) = &toks[0] {
                        let base = label.rsplit_once('.').map(|(b, _)| b).unwrap_or(label);
                        let b = f.add_block(base);
                        block_ids.insert(label.clone(), b);
                    }
                }
            }
            if f.blocks.is_empty() {
                return Err(ParseError {
                    line: self.lines[start].0,
                    message: "function body has no blocks".into(),
                });
            }
            f.entry = BlockId::from_raw(0);
        }

        // Map value names to ids; parameters are pre-bound as `%name.N`
        // style and `%N` raw style.
        let mut values: HashMap<String, ValueId> = HashMap::new();
        {
            let f = &module.funcs[fid];
            for &pv in &f.param_values {
                if let Some(n) = &f.values[pv].name {
                    values.insert(format!("{}.{}", n, pv.raw()), pv);
                    values.insert(n.clone(), pv);
                }
                values.insert(format!("{}", pv.raw()), pv);
            }
        }

        let mut staged: Vec<Staged> = Vec::new();
        let mut cur_block: Option<BlockId> = None;
        for idx in start..end {
            let (line, toks) = &self.lines[idx];
            // Label?
            if toks.len() == 2 && matches!(toks[0], Tok::Ident(_)) && toks[1] == Tok::Colon {
                if let Tok::Ident(label) = &toks[0] {
                    cur_block = Some(block_ids[label]);
                }
                continue;
            }
            let block = cur_block.ok_or_else(|| ParseError {
                line: *line,
                message: "instruction before first block label".into(),
            })?;
            let mut c = LineCursor {
                toks,
                i: 0,
                line: *line,
            };
            // Results: `%name [, %name]* =` prefix.
            let mut result_names = Vec::new();
            let save = c.i;
            let mut is_def = false;
            if c.peek() == Some(&Tok::Percent) {
                // Look ahead for `=` before an opcode.
                let mut j = c.i;
                while j < toks.len() {
                    match &toks[j] {
                        Tok::Eq => {
                            is_def = true;
                            break;
                        }
                        Tok::Percent | Tok::Comma | Tok::Ident(_) | Tok::Number(_) => j += 1,
                        _ => break,
                    }
                }
            }
            if is_def {
                loop {
                    c.expect(&Tok::Percent)?;
                    let name = match c.next()? {
                        Tok::Ident(s) => s.clone(),
                        Tok::Number(s) => s.clone(),
                        other => {
                            return Err(ParseError {
                                line: *line,
                                message: format!("bad result name {other:?}"),
                            })
                        }
                    };
                    result_names.push(name);
                    if c.eat(&Tok::Eq) {
                        break;
                    }
                    c.expect(&Tok::Comma)?;
                }
            } else {
                c.i = save;
            }
            let kind = self.parse_inst(
                &mut c,
                module,
                fid,
                &mut values,
                &block_ids,
                obj_names,
                fn_sigs,
                extern_names,
            )?;
            staged.push(Staged {
                block,
                kind,
                result_names,
                line: *line,
            });
        }

        self.commit_staged(module, fid, staged, &mut values, fn_sigs, extern_names)
    }

    /// Creates instructions, minting result values with types derived from
    /// operands via a worklist (φs carry explicit type annotations, so the
    /// derivation terminates).
    fn commit_staged(
        &self,
        module: &mut Module,
        fid: crate::FuncId,
        staged: Vec<Staged>,
        values: &mut HashMap<String, ValueId>,
        _fn_sigs: &HashMap<String, crate::FuncId>,
        _extern_names: &HashMap<String, crate::ExternId>,
    ) -> PResult<()> {
        // First mint all result values with a placeholder type, so operands
        // referencing later results resolve. parse_inst already minted
        // pending values for forward references; bind them here.
        let void_ty = module.types.intern(Type::Void);
        let mut planned: Vec<(InstId, Vec<ValueId>)> = Vec::new();
        {
            let f = &mut module.funcs[fid];
            for (si, s) in staged.iter().enumerate() {
                let inst_id = InstId::from_raw(si as u32);
                let mut results = Vec::new();
                for (ri, rname) in s.result_names.iter().enumerate() {
                    let v = match values.get(rname) {
                        Some(&v) => {
                            f.values[v].def = ValueDef::Inst(inst_id, ri as u32);
                            v
                        }
                        None => {
                            let v = f.values.push(Value {
                                ty: void_ty,
                                def: ValueDef::Inst(inst_id, ri as u32),
                                name: name_hint(rname),
                            });
                            values.insert(rname.clone(), v);
                            v
                        }
                    };
                    results.push(v);
                }
                planned.push((inst_id, results));
            }
            for (si, s) in staged.iter().enumerate() {
                let id = f.insts.push(Inst {
                    kind: s.kind.clone(),
                    results: planned[si].1.clone(),
                });
                debug_assert_eq!(id.raw() as usize, si);
                f.blocks[s.block].insts.push(id);
            }
        }

        // Apply syntax-annotated result types (φ and `new`) in parse order.
        {
            let noted = self.noted.borrow();
            let mut noted_idx = 0usize;
            let f = &mut module.funcs[fid];
            for (si, s) in staged.iter().enumerate() {
                let annotated = matches!(
                    s.kind,
                    InstKind::Phi { .. }
                        | InstKind::NewSeq { .. }
                        | InstKind::NewAssoc { .. }
                        | InstKind::NewObj { .. }
                );
                if annotated {
                    let ty = noted[noted_idx];
                    noted_idx += 1;
                    if let Some(&v) = planned[si].1.first() {
                        f.values[v].ty = ty;
                    }
                }
            }
        }

        // Worklist type inference for the remaining result values.
        let mut changed = true;
        let mut rounds = 0;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > staged.len() + 2 {
                break;
            }
            for (si, s) in staged.iter().enumerate() {
                let tys = self.infer_result_tys(module, fid, &s.kind, s.line)?;
                let f = &mut module.funcs[fid];
                for (ri, ty) in tys.into_iter().enumerate() {
                    if let Some(ty) = ty {
                        let v = planned[si].1[ri];
                        if f.values[v].ty != ty {
                            f.values[v].ty = ty;
                            changed = true;
                        }
                    }
                }
            }
        }
        // Any result still void-typed (other than genuinely void) is an
        // inference failure only if used; leave as-is — the verifier will
        // flag real inconsistencies.
        Ok(())
    }

    fn infer_result_tys(
        &self,
        module: &mut Module,
        fid: crate::FuncId,
        kind: &InstKind,
        _line: usize,
    ) -> PResult<Vec<Option<TypeId>>> {
        let index_ty = module.types.intern(Type::Index);
        let bool_ty = module.types.intern(Type::Bool);
        // Pre-compute types that need table mutation before borrowing funcs.
        let keys_ty = if let InstKind::Keys { c } = kind {
            let cty = module.funcs[fid].value_ty(*c);
            match module.types.get(cty) {
                Type::Assoc(k, _) => Some(module.types.seq_of(k)),
                _ => None,
            }
        } else {
            None
        };
        let f = &module.funcs[fid];
        let t = |v: ValueId| f.value_ty(v);
        Ok(match kind {
            InstKind::Bin { lhs, .. } => vec![Some(t(*lhs))],
            InstKind::Cmp { .. } | InstKind::Has { .. } => vec![Some(bool_ty)],
            InstKind::Cast { to, .. } => vec![Some(*to)],
            InstKind::Select { then_value, .. } => vec![Some(t(*then_value))],
            InstKind::Phi { .. } => vec![None], // annotated at parse time
            InstKind::Call { callee, .. } => match callee {
                Callee::Func(id) => module.funcs[*id].ret_tys.iter().map(|&x| Some(x)).collect(),
                Callee::Extern(id) => module.externs[*id]
                    .ret_tys
                    .iter()
                    .map(|&x| Some(x))
                    .collect(),
            },
            InstKind::NewSeq { .. } | InstKind::NewAssoc { .. } | InstKind::NewObj { .. } => {
                vec![None]
            } // set at parse time
            InstKind::Read { c, .. } => {
                vec![match module.types.get(t(*c)) {
                    Type::Seq(e) => Some(e),
                    Type::Assoc(_, v) => Some(v),
                    _ => None,
                }]
            }
            InstKind::Write { c, .. }
            | InstKind::Rmw { c, .. }
            | InstKind::Insert { c, .. }
            | InstKind::InsertSeq { c, .. }
            | InstKind::Remove { c, .. }
            | InstKind::RemoveRange { c, .. }
            | InstKind::Copy { c }
            | InstKind::CopyRange { c, .. }
            | InstKind::Swap { c, .. }
            | InstKind::UsePhi { c }
            | InstKind::MutSplit { c, .. } => vec![Some(t(*c))],
            InstKind::Swap2 { a, b, .. } => vec![Some(t(*a)), Some(t(*b))],
            InstKind::Size { .. } => vec![Some(index_ty)],
            InstKind::Keys { .. } => vec![keys_ty],
            InstKind::FieldRead { obj_ty, field, .. } => {
                vec![Some(
                    module.types.object(*obj_ty).fields[*field as usize].ty,
                )]
            }
            _ => vec![],
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_inst(
        &self,
        c: &mut LineCursor<'_>,
        module: &mut Module,
        fid: crate::FuncId,
        values: &mut HashMap<String, ValueId>,
        blocks: &HashMap<String, BlockId>,
        obj_names: &HashMap<String, ObjTypeId>,
        fn_sigs: &HashMap<String, crate::FuncId>,
        extern_names: &HashMap<String, crate::ExternId>,
    ) -> PResult<InstKind> {
        let line = c.line;
        let op = c.ident()?;
        macro_rules! val {
            () => {
                self.parse_value(c, module, fid, values, obj_names)?
            };
        }
        macro_rules! comma_val {
            () => {{
                c.expect(&Tok::Comma)?;
                self.parse_value(c, module, fid, values, obj_names)?
            }};
        }
        let block_ref = |c: &mut LineCursor<'_>| -> PResult<BlockId> {
            let line = c.line;
            let name = c.ident()?;
            blocks.get(&name).copied().ok_or_else(|| ParseError {
                line,
                message: format!("unknown block `{name}`"),
            })
        };
        let kind = match op.as_str() {
            "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "shl" | "shr"
            | "min" | "max" => {
                let bop = match op.as_str() {
                    "add" => BinOp::Add,
                    "sub" => BinOp::Sub,
                    "mul" => BinOp::Mul,
                    "div" => BinOp::Div,
                    "rem" => BinOp::Rem,
                    "and" => BinOp::And,
                    "or" => BinOp::Or,
                    "xor" => BinOp::Xor,
                    "shl" => BinOp::Shl,
                    "shr" => BinOp::Shr,
                    "min" => BinOp::Min,
                    _ => BinOp::Max,
                };
                let lhs = val!();
                let rhs = comma_val!();
                InstKind::Bin { op: bop, lhs, rhs }
            }
            s if s.starts_with("cmp.") => {
                let cop = match &s[4..] {
                    "eq" => CmpOp::Eq,
                    "ne" => CmpOp::Ne,
                    "lt" => CmpOp::Lt,
                    "le" => CmpOp::Le,
                    "gt" => CmpOp::Gt,
                    "ge" => CmpOp::Ge,
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("bad cmp op `{other}`"),
                        })
                    }
                };
                let lhs = val!();
                let rhs = comma_val!();
                InstKind::Cmp { op: cop, lhs, rhs }
            }
            "cast" => {
                let value = val!();
                let kw = c.ident()?;
                if kw != "to" {
                    return Err(ParseError {
                        line,
                        message: "expected `to` in cast".into(),
                    });
                }
                let to = self.parse_type(c, module, obj_names)?;
                InstKind::Cast { to, value }
            }
            "select" => {
                let cond = val!();
                let a = comma_val!();
                let b = comma_val!();
                InstKind::Select {
                    cond,
                    then_value: a,
                    else_value: b,
                }
            }
            "phi" => {
                let ty = self.parse_type(c, module, obj_names)?;
                let mut incoming = Vec::new();
                while c.eat(&Tok::LBracket) {
                    let b = block_ref(c)?;
                    c.expect(&Tok::Colon)?;
                    let v = val!();
                    c.expect(&Tok::RBracket)?;
                    incoming.push((b, v));
                    c.eat(&Tok::Comma);
                }
                // Stash the annotated type onto the pending result by
                // encoding through a special marker: commit_staged reads φ
                // types via `phi_tys`. Simpler: mint nothing here; instead
                // remember the type by wrapping in a Cast-like trick is
                // ugly — we instead record it in the side table below.
                self.note_phi_ty(ty);
                InstKind::Phi { incoming }
            }
            "call" => {
                c.expect(&Tok::At)?;
                let name = c.ident()?;
                let is_extern = c.eat(&Tok::Bang);
                let callee = if is_extern {
                    Callee::Extern(*extern_names.get(&name).ok_or_else(|| ParseError {
                        line,
                        message: format!("unknown extern `{name}`"),
                    })?)
                } else {
                    Callee::Func(*fn_sigs.get(&name).ok_or_else(|| ParseError {
                        line,
                        message: format!("unknown function `{name}`"),
                    })?)
                };
                c.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !c.eat(&Tok::RParen) {
                    loop {
                        args.push(self.parse_value(c, module, fid, values, obj_names)?);
                        if c.eat(&Tok::RParen) {
                            break;
                        }
                        c.expect(&Tok::Comma)?;
                    }
                }
                InstKind::Call { callee, args }
            }
            "jump" => InstKind::Jump {
                target: block_ref(c)?,
            },
            "br" => {
                let cond = val!();
                c.expect(&Tok::Comma)?;
                let t = block_ref(c)?;
                c.expect(&Tok::Comma)?;
                let e = block_ref(c)?;
                InstKind::Branch {
                    cond,
                    then_target: t,
                    else_target: e,
                }
            }
            "ret" => {
                let mut vals = Vec::new();
                if !c.done() {
                    loop {
                        vals.push(self.parse_value(c, module, fid, values, obj_names)?);
                        if !c.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                InstKind::Ret { values: vals }
            }
            "unreachable" => InstKind::Unreachable,
            "new" => {
                let what = c.ident()?;
                match what.as_str() {
                    "Seq" => {
                        c.expect(&Tok::Lt)?;
                        let elem = self.parse_type(c, module, obj_names)?;
                        c.expect(&Tok::Gt)?;
                        c.expect(&Tok::LParen)?;
                        let len = val!();
                        c.expect(&Tok::RParen)?;
                        self.note_new_ty(module.types.seq_of(elem));
                        InstKind::NewSeq { elem, len }
                    }
                    "Assoc" => {
                        c.expect(&Tok::Lt)?;
                        let k = self.parse_type(c, module, obj_names)?;
                        c.expect(&Tok::Comma)?;
                        let v = self.parse_type(c, module, obj_names)?;
                        c.expect(&Tok::Gt)?;
                        self.note_new_ty(module.types.assoc_of(k, v));
                        InstKind::NewAssoc { key: k, value: v }
                    }
                    obj_name => {
                        let obj = *obj_names.get(obj_name).ok_or_else(|| ParseError {
                            line,
                            message: format!("unknown object type `{obj_name}`"),
                        })?;
                        self.note_new_ty(module.types.ref_of(obj));
                        InstKind::NewObj { obj }
                    }
                }
            }
            "delete" => InstKind::DeleteObj { obj: val!() },
            "read" => {
                let cv = val!();
                let idx = comma_val!();
                InstKind::Read { c: cv, idx }
            }
            "write" => {
                let cv = val!();
                let idx = comma_val!();
                let value = comma_val!();
                InstKind::Write { c: cv, idx, value }
            }
            "rmw" | "mut.rmw" => {
                let cv = val!();
                let idx = comma_val!();
                c.expect(&Tok::Comma)?;
                let opname = c.ident()?;
                let bop = match opname.as_str() {
                    "add" => BinOp::Add,
                    "sub" => BinOp::Sub,
                    "mul" => BinOp::Mul,
                    "div" => BinOp::Div,
                    "rem" => BinOp::Rem,
                    "and" => BinOp::And,
                    "or" => BinOp::Or,
                    "xor" => BinOp::Xor,
                    "shl" => BinOp::Shl,
                    "shr" => BinOp::Shr,
                    "min" => BinOp::Min,
                    "max" => BinOp::Max,
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("bad rmw op `{other}`"),
                        })
                    }
                };
                let value = comma_val!();
                if op == "rmw" {
                    InstKind::Rmw {
                        c: cv,
                        idx,
                        op: bop,
                        value,
                    }
                } else {
                    InstKind::MutRmw {
                        c: cv,
                        idx,
                        op: bop,
                        value,
                    }
                }
            }
            "insert" => {
                let cv = val!();
                let idx = comma_val!();
                let value = if c.eat(&Tok::Comma) {
                    Some(self.parse_value(c, module, fid, values, obj_names)?)
                } else {
                    None
                };
                InstKind::Insert { c: cv, idx, value }
            }
            "insert.seq" => {
                let cv = val!();
                let idx = comma_val!();
                let src = comma_val!();
                InstKind::InsertSeq { c: cv, idx, src }
            }
            "remove" => {
                let cv = val!();
                let idx = comma_val!();
                InstKind::Remove { c: cv, idx }
            }
            "remove.range" => {
                let cv = val!();
                let from = comma_val!();
                let to = comma_val!();
                InstKind::RemoveRange { c: cv, from, to }
            }
            "copy" => InstKind::Copy { c: val!() },
            "copy.range" => {
                let cv = val!();
                let from = comma_val!();
                let to = comma_val!();
                InstKind::CopyRange { c: cv, from, to }
            }
            "swap" => {
                let cv = val!();
                let from = comma_val!();
                let to = comma_val!();
                let at = comma_val!();
                InstKind::Swap {
                    c: cv,
                    from,
                    to,
                    at,
                }
            }
            "swap2" => {
                let a = val!();
                let from = comma_val!();
                let to = comma_val!();
                let b = comma_val!();
                let at = comma_val!();
                InstKind::Swap2 { a, from, to, b, at }
            }
            "size" => InstKind::Size { c: val!() },
            "has" => {
                let cv = val!();
                let key = comma_val!();
                InstKind::Has { c: cv, key }
            }
            "keys" => InstKind::Keys { c: val!() },
            "usephi" => InstKind::UsePhi { c: val!() },
            "field.read" | "field.write" => {
                let obj = val!();
                c.expect(&Tok::Comma)?;
                let path = c.ident()?; // `tname.fname`
                let (tname, fname) = path.rsplit_once('.').ok_or_else(|| ParseError {
                    line,
                    message: format!("bad field path `{path}`"),
                })?;
                let obj_ty = *obj_names.get(tname).ok_or_else(|| ParseError {
                    line,
                    message: format!("unknown object type `{tname}`"),
                })?;
                let field = module
                    .types
                    .object(obj_ty)
                    .field_index(fname)
                    .ok_or_else(|| ParseError {
                        line,
                        message: format!("unknown field `{fname}`"),
                    })? as u32;
                if op == "field.read" {
                    InstKind::FieldRead { obj, obj_ty, field }
                } else {
                    let value = comma_val!();
                    InstKind::FieldWrite {
                        obj,
                        obj_ty,
                        field,
                        value,
                    }
                }
            }
            "mut.write" => {
                let cv = val!();
                let idx = comma_val!();
                let value = comma_val!();
                InstKind::MutWrite { c: cv, idx, value }
            }
            "mut.insert" => {
                let cv = val!();
                let idx = comma_val!();
                let value = if c.eat(&Tok::Comma) {
                    Some(self.parse_value(c, module, fid, values, obj_names)?)
                } else {
                    None
                };
                InstKind::MutInsert { c: cv, idx, value }
            }
            "mut.insert.seq" => {
                let cv = val!();
                let idx = comma_val!();
                let src = comma_val!();
                InstKind::MutInsertSeq { c: cv, idx, src }
            }
            "mut.remove" => {
                let cv = val!();
                let idx = comma_val!();
                InstKind::MutRemove { c: cv, idx }
            }
            "mut.remove.range" => {
                let cv = val!();
                let from = comma_val!();
                let to = comma_val!();
                InstKind::MutRemoveRange { c: cv, from, to }
            }
            "mut.append" => {
                let cv = val!();
                let src = comma_val!();
                InstKind::MutAppend { c: cv, src }
            }
            "mut.swap" => {
                let cv = val!();
                let from = comma_val!();
                let to = comma_val!();
                let at = comma_val!();
                InstKind::MutSwap {
                    c: cv,
                    from,
                    to,
                    at,
                }
            }
            "mut.swap2" => {
                let a = val!();
                let from = comma_val!();
                let to = comma_val!();
                let b = comma_val!();
                let at = comma_val!();
                InstKind::MutSwap2 { a, from, to, b, at }
            }
            "mut.split" => {
                let cv = val!();
                let from = comma_val!();
                let to = comma_val!();
                InstKind::MutSplit { c: cv, from, to }
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unknown opcode `{other}`"),
                })
            }
        };
        Ok(kind)
    }

    fn parse_value(
        &self,
        c: &mut LineCursor<'_>,
        module: &mut Module,
        fid: crate::FuncId,
        values: &mut HashMap<String, ValueId>,
        _obj_names: &HashMap<String, ObjTypeId>,
    ) -> PResult<ValueId> {
        let line = c.line;
        match c.next()?.clone() {
            Tok::Percent => {
                let name = match c.next()? {
                    Tok::Ident(s) => s.clone(),
                    Tok::Number(s) => s.clone(),
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("bad value name {other:?}"),
                        })
                    }
                };
                if let Some(&v) = values.get(&name) {
                    return Ok(v);
                }
                // Forward reference: mint a placeholder result value.
                let void_ty = module.types.intern(Type::Void);
                let f = &mut module.funcs[fid];
                let v = f.values.push(Value {
                    ty: void_ty,
                    def: ValueDef::Inst(InstId::from_raw(u32::MAX), 0),
                    name: name_hint(&name),
                });
                values.insert(name, v);
                Ok(v)
            }
            Tok::Ident(s) if s == "true" || s == "false" => {
                let t = module.types.intern(Type::Bool);
                Ok(module.funcs[fid].constant(Constant::Bool(s == "true"), t))
            }
            Tok::Ident(s) if s.starts_with("null") => {
                // Printed as `null:T<raw>` — tokenizer keeps `null` then `:`.
                c.expect(&Tok::Colon)?;
                let tref = c.ident()?;
                let raw: u32 = tref
                    .strip_prefix('T')
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| ParseError {
                        line,
                        message: format!("bad null type `{tref}`"),
                    })?;
                let obj = ObjTypeId::from_raw(raw);
                let t = module.types.ref_of(obj);
                Ok(module.funcs[fid].constant(Constant::Null(obj), t))
            }
            Tok::Minus => {
                let num = match c.next()? {
                    Tok::Number(s) => s.clone(),
                    other => {
                        return Err(ParseError {
                            line,
                            message: format!("bad number {other:?}"),
                        })
                    }
                };
                self.typed_const(c, module, fid, &num, true)
            }
            Tok::Number(num) => self.typed_const(c, module, fid, &num, false),
            other => Err(ParseError {
                line,
                message: format!("expected value, found {other:?}"),
            }),
        }
    }

    fn typed_const(
        &self,
        c: &mut LineCursor<'_>,
        module: &mut Module,
        fid: crate::FuncId,
        num: &str,
        neg: bool,
    ) -> PResult<ValueId> {
        let line = c.line;
        c.expect(&Tok::Colon)?;
        let tyname = c.ident()?;
        let ty = match tyname.as_str() {
            "I64" => Type::I64,
            "I32" => Type::I32,
            "I16" => Type::I16,
            "I8" => Type::I8,
            "U64" => Type::U64,
            "U32" => Type::U32,
            "U16" => Type::U16,
            "U8" => Type::U8,
            "Index" => Type::Index,
            "F64" => Type::F64,
            "F32" => Type::F32,
            other => {
                return Err(ParseError {
                    line,
                    message: format!("bad constant type `{other}`"),
                })
            }
        };
        let tid = module.types.intern(ty);
        let konst = if ty.is_float() {
            let mut v: f64 = num.parse().map_err(|_| ParseError {
                line,
                message: format!("bad float `{num}`"),
            })?;
            if neg {
                v = -v;
            }
            Constant::Float(ty, v.to_bits())
        } else {
            let mut v: i64 = if let Ok(x) = num.parse::<i64>() {
                x
            } else if let Ok(x) = num.parse::<u64>() {
                x as i64
            } else {
                return Err(ParseError {
                    line,
                    message: format!("bad integer `{num}`"),
                });
            };
            if neg {
                v = -v;
            }
            Constant::Int(ty, v)
        };
        Ok(module.funcs[fid].constant(konst, tid))
    }

    // φ and `new` result types are recorded while parsing the instruction
    // and consumed in order by `commit_staged`. Because instructions are
    // parsed strictly in order, a simple queue (behind a RefCell to keep
    // parse methods `&self`) suffices.
    fn note_phi_ty(&self, ty: TypeId) {
        self.noted.borrow_mut().push(ty);
    }

    fn note_new_ty(&self, ty: TypeId) {
        self.noted.borrow_mut().push(ty);
    }
}

use std::cell::RefCell;

fn name_hint(raw: &str) -> Option<String> {
    // `%foo.12` carries name hint `foo`; bare `%12` carries none.
    match raw.rsplit_once('.') {
        Some((base, _)) if !base.is_empty() && !base.chars().next().unwrap().is_ascii_digit() => {
            Some(base.to_string())
        }
        None if raw.chars().next().is_some_and(|c| !c.is_ascii_digit()) => Some(raw.to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::ModuleBuilder;

    #[test]
    fn round_trip_simple() {
        let mut mb = ModuleBuilder::new("rt");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(7);
            let s1 = b.write(s, zero, v);
            let r = b.read(s1, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        crate::verifier::assert_valid(&parsed);
        let text2 = print_module(&parsed);
        let parsed2 = parse_module(&text2).unwrap();
        assert_eq!(print_module(&parsed2), text2);
    }

    /// Multi-result instructions (two-sequence swap, multi-return calls)
    /// round-trip through the textual format.
    #[test]
    fn round_trip_multi_result() {
        let mut mb = ModuleBuilder::new("rt");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let helper = mb.func("pair", Form::Ssa, |b| {
            let s = b.param("s", seqt);
            let x = b.i64(1);
            b.returns(&[seqt, i64t]);
            b.ret(vec![s, x]);
        });
        mb.func("f", Form::Ssa, |b| {
            let n = b.index(4);
            let a = b.new_seq(i64t, n);
            let c = b.new_seq(i64t, n);
            let zero = b.index(0);
            let two = b.index(2);
            let (a2, c2) = b.swap2(a, zero, two, c, zero);
            let rets = b.call(crate::Callee::Func(helper), vec![a2], &[seqt, i64t]);
            let sz = b.size(c2);
            let szi = b.cast(Type::I64, sz);
            let sum = b.add(rets[1], szi);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let m = mb.finish();
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        crate::verifier::assert_valid(&parsed);
        // Parsing renumbers values; stability holds from the second
        // round trip onward.
        let text2 = print_module(&parsed);
        let parsed2 = parse_module(&text2).unwrap();
        assert_eq!(print_module(&parsed2), text2);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = parse_module("module m\nfn f() -> () form=ssa {\nentry.0:\n  bogus_op\n}\n")
            .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("bogus_op"));
    }
}
