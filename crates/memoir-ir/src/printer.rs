//! Textual rendering of MEMOIR modules and functions.
//!
//! The format is stable and parseable by [`crate::parser`]. Values print as
//! `%N` or `%name.N` when a name hint is present; blocks as `bbN` or
//! `name.N`.

use crate::ids::{BlockId, InstId, ValueId};
use crate::inst::{Callee, Constant, InstKind};
use crate::{Function, Module, TypeTable, ValueDef};
use std::fmt::Write;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", m.name);
    for (id, obj) in m.types.objects() {
        let fields: Vec<String> = obj
            .fields
            .iter()
            .map(|f| format!("{}: {}", f.name, m.types.display(f.ty)))
            .collect();
        let _ = writeln!(
            out,
            "type {} = {{ {} }}  ; {}",
            obj.name,
            fields.join(", "),
            id
        );
    }
    for (_, e) in m.externs.iter() {
        let params: Vec<String> = e.params.iter().map(|&t| m.types.display(t)).collect();
        let rets: Vec<String> = e.ret_tys.iter().map(|&t| m.types.display(t)).collect();
        let eff = if e.effects.opaque {
            "opaque"
        } else if e.effects.writes_args {
            "writes"
        } else if e.effects.reads_args {
            "pure"
        } else {
            "const"
        };
        let _ = writeln!(
            out,
            "extern {}({}) -> ({}) [{}]",
            e.name,
            params.join(", "),
            rets.join(", "),
            eff
        );
    }
    for (_, f) in m.funcs.iter() {
        out.push('\n');
        out.push_str(&print_function(f, &m.types, m));
    }
    out
}

/// Prints a single function.
pub fn print_function(f: &Function, types: &TypeTable, module: &Module) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| {
            format!(
                "{}{}: {}",
                if p.by_ref { "&" } else { "" },
                p.name,
                types.display(p.ty)
            )
        })
        .collect();
    let rets: Vec<String> = f.ret_tys.iter().map(|&t| types.display(t)).collect();
    let form = match f.form {
        crate::Form::Mut => "mut",
        crate::Form::Ssa => "ssa",
    };
    let _ = writeln!(
        out,
        "fn {}({}) -> ({}) form={} {{",
        f.name,
        params.join(", "),
        rets.join(", "),
        form
    );
    for (b, block) in f.blocks.iter() {
        let _ = writeln!(out, "{}:", block_name(f, b));
        for &i in &block.insts {
            let _ = writeln!(out, "  {}", print_inst(f, i, types, module));
        }
    }
    out.push_str("}\n");
    out
}

/// Render a value reference.
pub fn value_name(f: &Function, v: ValueId) -> String {
    match (&f.values[v].def, &f.values[v].name) {
        (ValueDef::Const(c), _) => format!("{c}"),
        (_, Some(n)) => format!("%{}.{}", n, v.raw()),
        (_, None) => format!("%{}", v.raw()),
    }
}

/// Render a block reference.
pub fn block_name(f: &Function, b: BlockId) -> String {
    match &f.blocks[b].name {
        Some(n) => format!("{}.{}", n, b.raw()),
        None => format!("bb{}", b.raw()),
    }
}

fn callee_name(module: &Module, c: Callee) -> String {
    match c {
        Callee::Func(id) => format!("@{}", module.funcs[id].name),
        Callee::Extern(id) => format!("@{}!", module.externs[id].name),
    }
}

/// Renders one instruction.
pub fn print_inst(f: &Function, id: InstId, types: &TypeTable, module: &Module) -> String {
    let inst = &f.insts[id];
    let v = |val: &ValueId| value_name(f, *val);
    let results = if inst.results.is_empty() {
        String::new()
    } else {
        let names: Vec<String> = inst.results.iter().map(|r| value_name(f, *r)).collect();
        format!("{} = ", names.join(", "))
    };
    let body = match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => format!("{} {}, {}", op.mnemonic(), v(lhs), v(rhs)),
        InstKind::Cmp { op, lhs, rhs } => {
            format!("cmp.{} {}, {}", op.mnemonic(), v(lhs), v(rhs))
        }
        InstKind::Cast { to, value } => format!("cast {} to {}", v(value), types.display(*to)),
        InstKind::Select {
            cond,
            then_value,
            else_value,
        } => {
            format!("select {}, {}, {}", v(cond), v(then_value), v(else_value))
        }
        InstKind::Phi { incoming } => {
            let parts: Vec<String> = incoming
                .iter()
                .map(|(b, val)| format!("[{}: {}]", block_name(f, *b), v(val)))
                .collect();
            // The result type is annotated so the parser never needs to
            // resolve forward references to type a φ.
            let ty = types.display(f.value_ty(inst.results[0]));
            format!("phi {} {}", ty, parts.join(", "))
        }
        InstKind::Call { callee, args } => {
            let a: Vec<String> = args.iter().map(&v).collect();
            format!("call {}({})", callee_name(module, *callee), a.join(", "))
        }
        InstKind::Jump { target } => format!("jump {}", block_name(f, *target)),
        InstKind::Branch {
            cond,
            then_target,
            else_target,
        } => format!(
            "br {}, {}, {}",
            v(cond),
            block_name(f, *then_target),
            block_name(f, *else_target)
        ),
        InstKind::Ret { values } => {
            let a: Vec<String> = values.iter().map(&v).collect();
            format!("ret {}", a.join(", "))
        }
        InstKind::Unreachable => "unreachable".into(),
        InstKind::NewSeq { elem, len } => {
            format!("new Seq<{}>({})", types.display(*elem), v(len))
        }
        InstKind::NewAssoc { key, value } => {
            format!(
                "new Assoc<{}, {}>",
                types.display(*key),
                types.display(*value)
            )
        }
        InstKind::NewObj { obj } => format!("new {}", types.object(*obj).name),
        InstKind::DeleteObj { obj } => format!("delete {}", v(obj)),
        InstKind::Read { c, idx } => format!("read {}, {}", v(c), v(idx)),
        InstKind::Write { c, idx, value } => {
            format!("write {}, {}, {}", v(c), v(idx), v(value))
        }
        InstKind::Rmw { c, idx, op, value } => {
            format!("rmw {}, {}, {}, {}", v(c), v(idx), op.mnemonic(), v(value))
        }
        InstKind::Insert { c, idx, value } => match value {
            Some(val) => format!("insert {}, {}, {}", v(c), v(idx), v(val)),
            None => format!("insert {}, {}", v(c), v(idx)),
        },
        InstKind::InsertSeq { c, idx, src } => {
            format!("insert.seq {}, {}, {}", v(c), v(idx), v(src))
        }
        InstKind::Remove { c, idx } => format!("remove {}, {}", v(c), v(idx)),
        InstKind::RemoveRange { c, from, to } => {
            format!("remove.range {}, {}, {}", v(c), v(from), v(to))
        }
        InstKind::Copy { c } => format!("copy {}", v(c)),
        InstKind::CopyRange { c, from, to } => {
            format!("copy.range {}, {}, {}", v(c), v(from), v(to))
        }
        InstKind::Swap { c, from, to, at } => {
            format!("swap {}, {}, {}, {}", v(c), v(from), v(to), v(at))
        }
        InstKind::Swap2 { a, from, to, b, at } => {
            format!(
                "swap2 {}, {}, {}, {}, {}",
                v(a),
                v(from),
                v(to),
                v(b),
                v(at)
            )
        }
        InstKind::Size { c } => format!("size {}", v(c)),
        InstKind::Has { c, key } => format!("has {}, {}", v(c), v(key)),
        InstKind::Keys { c } => format!("keys {}", v(c)),
        InstKind::UsePhi { c } => format!("usephi {}", v(c)),
        InstKind::FieldRead { obj, obj_ty, field } => format!(
            "field.read {}, {}.{}",
            v(obj),
            types.object(*obj_ty).name,
            types.object(*obj_ty).fields[*field as usize].name
        ),
        InstKind::FieldWrite {
            obj,
            obj_ty,
            field,
            value,
        } => format!(
            "field.write {}, {}.{}, {}",
            v(obj),
            types.object(*obj_ty).name,
            types.object(*obj_ty).fields[*field as usize].name,
            v(value)
        ),
        InstKind::MutWrite { c, idx, value } => {
            format!("mut.write {}, {}, {}", v(c), v(idx), v(value))
        }
        InstKind::MutRmw { c, idx, op, value } => {
            format!(
                "mut.rmw {}, {}, {}, {}",
                v(c),
                v(idx),
                op.mnemonic(),
                v(value)
            )
        }
        InstKind::MutInsert { c, idx, value } => match value {
            Some(val) => format!("mut.insert {}, {}, {}", v(c), v(idx), v(val)),
            None => format!("mut.insert {}, {}", v(c), v(idx)),
        },
        InstKind::MutInsertSeq { c, idx, src } => {
            format!("mut.insert.seq {}, {}, {}", v(c), v(idx), v(src))
        }
        InstKind::MutRemove { c, idx } => format!("mut.remove {}, {}", v(c), v(idx)),
        InstKind::MutRemoveRange { c, from, to } => {
            format!("mut.remove.range {}, {}, {}", v(c), v(from), v(to))
        }
        InstKind::MutAppend { c, src } => format!("mut.append {}, {}", v(c), v(src)),
        InstKind::MutSwap { c, from, to, at } => {
            format!("mut.swap {}, {}, {}, {}", v(c), v(from), v(to), v(at))
        }
        InstKind::MutSwap2 { a, from, to, b, at } => {
            format!(
                "mut.swap2 {}, {}, {}, {}, {}",
                v(a),
                v(from),
                v(to),
                v(b),
                v(at)
            )
        }
        InstKind::MutSplit { c, from, to } => {
            format!("mut.split {}, {}, {}", v(c), v(from), v(to))
        }
    };
    format!("{results}{body}")
}

/// Renders a constant for display in operand position.
pub fn print_constant(c: Constant) -> String {
    format!("{c}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::{Form, Type};

    #[test]
    fn prints_readable_function() {
        let mut mb = ModuleBuilder::new("demo");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s = b.new_seq(i64t, n);
            b.name(s, "S_0");
            let zero = b.index(0);
            let v = b.i64(9);
            let s1 = b.write(s, zero, v);
            let r = b.read(s1, zero);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("module demo"), "{text}");
        assert!(text.contains("new Seq<i64>(4:Index)"), "{text}");
        assert!(text.contains("%S_0"), "{text}");
        assert!(text.contains("write"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }

    #[test]
    fn prints_phi_and_branch() {
        let mut mb = ModuleBuilder::new("demo");
        mb.func("g", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let exit = b.block("exit");
            let zero = b.index(0);
            let c = b.bool(true);
            b.branch(c, exit, exit);
            b.switch_to(exit);
            let p = b.phi(t, vec![(b.func.entry, zero)]);
            b.ret(vec![p]);
        });
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("phi index [entry.0: 0:Index]"), "{text}");
        assert!(text.contains("br true, exit.1, exit.1"), "{text}");
    }
}
