//! Per-collection storage representation choices (adaptive representation
//! lowering).
//!
//! The default lowering gives every collection one layout per kind:
//! sequences become `[data, len, cap]` heap buffers, associative arrays
//! become opaque host tables. Adaptive representation selection
//! (`memoir-analysis::repr`) lets the lowering and the interpreters' cost
//! model pick a cheaper layout per *allocation site* when the analysis can
//! prove it safe:
//!
//! * [`Repr::Dense`] — an associative array whose keys are provably
//!   integral and bounded lowers to a direct-indexed dense array (present
//!   bitmap + value slots). Requires: bounded non-negative integral key
//!   space, no `keys` op observing insertion order, and no escape out of
//!   the analyzed scope.
//! * [`Repr::Inline`] — a small constant-length, non-escaping sequence
//!   lowers to an inline (stack) buffer.
//! * [`Repr::Default`] — the conservative fallback; always legal.
//!
//! Choices are keyed by allocation site (`FuncId` + the `new_*`
//! instruction's `InstId`), see [`ReprChoices`].

use crate::ids::{FuncId, InstId};
use std::collections::HashMap;

/// The storage representation chosen for one collection allocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repr {
    /// The kind's default layout (heap seq buffer / host assoc table).
    Default,
    /// Dense direct-indexed array for an assoc with bounded integral keys
    /// `[0 : cap)`.
    Dense {
        /// Exclusive key-space bound.
        cap: u64,
    },
    /// Small inline (stack) buffer for a constant-length sequence.
    Inline {
        /// The constant length.
        cap: u64,
    },
}

/// Representation choices for every eligible allocation site of a module,
/// keyed by `(function, allocating instruction)`. Sites absent from the
/// map use [`Repr::Default`].
pub type ReprChoices = HashMap<(FuncId, InstId), Repr>;
