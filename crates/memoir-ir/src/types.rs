//! The MEMOIR type system (paper §IV-E, Fig. 2).
//!
//! MEMOIR enforces static, strong typing for collection variables. Types are
//! interned in a [`TypeTable`] owned by the module, so a [`TypeId`] is a
//! cheap, comparable handle. Object types (`type T = { a: i32, b: f32 }`) are
//! nominal: they live in a separate arena keyed by [`ObjTypeId`] and may be
//! edited by layout transformations (field elision, dead field elimination,
//! field reordering).

use crate::ids::{IdMap, ObjTypeId, TypeId};
use std::collections::HashMap;
use std::fmt;

/// A MEMOIR type (Fig. 2: `T ::= PrimT | T_id | &T_id | Seq<T> | Assoc<T,T>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 64-bit signed integer.
    I64,
    /// 32-bit signed integer.
    I32,
    /// 16-bit signed integer.
    I16,
    /// 8-bit signed integer.
    I8,
    /// 64-bit unsigned integer.
    U64,
    /// 32-bit unsigned integer.
    U32,
    /// 16-bit unsigned integer.
    U16,
    /// 8-bit unsigned integer.
    U8,
    /// Boolean.
    Bool,
    /// Index into a collection's index space; unsigned, 64-bit in this
    /// implementation.
    Index,
    /// 64-bit IEEE-754 float.
    F64,
    /// 32-bit IEEE-754 float.
    F32,
    /// C-style raw pointer, included to support externally-laid-out memory
    /// (paper §IV-E). Opaque to MEMOIR analyses.
    Ptr,
    /// Nullable reference to an object of the given object type (`&T_id`).
    Ref(ObjTypeId),
    /// An inline object value of the given object type (`T_id`), used for
    /// nested object fields and associative-array keys.
    Object(ObjTypeId),
    /// Sequence with the given element type (`Seq<T>`).
    Seq(TypeId),
    /// Associative array from key type to value type (`Assoc<K, V>`).
    Assoc(TypeId, TypeId),
    /// The absence of a value (used for functions that return nothing).
    Void,
}

impl Type {
    /// Whether this is one of the primitive (non-collection, non-object)
    /// types of Fig. 2.
    pub fn is_primitive(self) -> bool {
        !matches!(
            self,
            Type::Seq(_) | Type::Assoc(..) | Type::Object(_) | Type::Void
        )
    }

    /// Whether this is a collection type (`Seq` or `Assoc`).
    pub fn is_collection(self) -> bool {
        matches!(self, Type::Seq(_) | Type::Assoc(..))
    }

    /// Whether this is an integer type (signed or unsigned, including
    /// `index`).
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            Type::I64
                | Type::I32
                | Type::I16
                | Type::I8
                | Type::U64
                | Type::U32
                | Type::U16
                | Type::U8
                | Type::Index
        )
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64 | Type::F32)
    }

    /// Size in bytes of a value of this type when stored in memory, per the
    /// lowering layout used throughout the evaluation. Collections report
    /// the size of their *handle* (a pointer-sized header reference); their
    /// storage is accounted by the heap model.
    pub fn byte_size(self, table: &TypeTable) -> u64 {
        match self {
            Type::I8 | Type::U8 | Type::Bool => 1,
            Type::I16 | Type::U16 => 2,
            Type::I32 | Type::U32 | Type::F32 => 4,
            Type::I64 | Type::U64 | Type::F64 | Type::Index | Type::Ptr | Type::Ref(_) => 8,
            Type::Seq(_) | Type::Assoc(..) => 8,
            Type::Object(obj) => table.object_layout(obj).size,
            Type::Void => 0,
        }
    }

    /// Alignment in bytes of a value of this type.
    pub fn align(self, table: &TypeTable) -> u64 {
        match self {
            Type::Object(obj) => table.object_layout(obj).align,
            Type::Void => 1,
            other => other.byte_size(table),
        }
    }
}

/// A single field of an object type definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name, unique within the object type.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
}

/// An object type definition (Fig. 2: `type T_id = { x: T, ... }`).
///
/// Object types are an ordered list of individually addressable, typed
/// fields. They may nest other object types but may not be recursive
/// (checked by [`TypeTable::define_object`]), which guarantees a finite,
/// statically-known size and a finite-depth equality when used as keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectType {
    /// Nominal name of the type.
    pub name: String,
    /// Ordered fields. Layout transformations may remove or reorder these.
    pub fields: Vec<Field>,
}

impl ObjectType {
    /// Index of the field with the given name, if present.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// Memory layout computed for an object type: total size, alignment, and
/// per-field offsets under C-like struct layout rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectLayout {
    /// Total size in bytes, padded to alignment.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Byte offset of each field, in field order.
    pub offsets: Vec<u64>,
}

/// Errors raised by [`TypeTable`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// An object type definition would be directly or indirectly recursive.
    RecursiveObjectType(String),
    /// A field name is duplicated within one object type.
    DuplicateField(String, String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::RecursiveObjectType(name) => {
                write!(f, "object type `{name}` is recursively defined")
            }
            TypeError::DuplicateField(ty, field) => {
                write!(
                    f,
                    "object type `{ty}` defines field `{field}` more than once"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Interner and registry for MEMOIR types and object type definitions.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    types: IdMap<TypeId, Type>,
    interned: HashMap<Type, TypeId>,
    objects: IdMap<ObjTypeId, ObjectType>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a type, returning its id. Identical types always intern to
    /// the same id.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(&id) = self.interned.get(&ty) {
            return id;
        }
        let id = self.types.push(ty);
        self.interned.insert(ty, id);
        id
    }

    /// Convenience: interns `Seq<elem>`.
    pub fn seq_of(&mut self, elem: TypeId) -> TypeId {
        self.intern(Type::Seq(elem))
    }

    /// Convenience: interns `Assoc<key, value>`.
    pub fn assoc_of(&mut self, key: TypeId, value: TypeId) -> TypeId {
        self.intern(Type::Assoc(key, value))
    }

    /// Convenience: interns `&obj`.
    pub fn ref_of(&mut self, obj: ObjTypeId) -> TypeId {
        self.intern(Type::Ref(obj))
    }

    /// Resolves a type id to its type.
    pub fn get(&self, id: TypeId) -> Type {
        self.types[id]
    }

    /// Iterates `(id, type)` over every interned type, in id order.
    pub fn entries(&self) -> impl Iterator<Item = (TypeId, Type)> + '_ {
        self.types.iter().map(|(id, &ty)| (id, ty))
    }

    /// Looks up the id of an already-interned type without interning it.
    pub fn interned_id(&self, ty: Type) -> Option<TypeId> {
        self.interned.get(&ty).copied()
    }

    /// Defines a new object type, checking the non-recursion and
    /// unique-field-name invariants of §IV-E.
    pub fn define_object(
        &mut self,
        name: impl Into<String>,
        fields: Vec<Field>,
    ) -> Result<ObjTypeId, TypeError> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.clone()) {
                return Err(TypeError::DuplicateField(name, f.name.clone()));
            }
        }
        // The new type will receive the next id; reject any inline `Object`
        // field that (transitively) reaches it. Since the id is not yet
        // allocated, recursion can only occur through ids >= objects.len(),
        // which cannot exist; but nested existing object types might later
        // be made recursive only by editing, which `set_fields` re-checks.
        let id = self.objects.push(ObjectType { name, fields });
        Ok(id)
    }

    /// Returns the object type definition.
    pub fn object(&self, id: ObjTypeId) -> &ObjectType {
        &self.objects[id]
    }

    /// Number of defined object types.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterates over object type definitions.
    pub fn objects(&self) -> impl Iterator<Item = (ObjTypeId, &ObjectType)> {
        self.objects.iter()
    }

    /// Replaces the fields of an object type (used by layout
    /// transformations), re-checking invariants.
    pub fn set_fields(&mut self, id: ObjTypeId, fields: Vec<Field>) -> Result<(), TypeError> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(TypeError::DuplicateField(
                    self.objects[id].name.clone(),
                    f.name.clone(),
                ));
            }
            if let Type::Object(inner) = self.get(f.ty) {
                if self.object_reaches(inner, id) || inner == id {
                    return Err(TypeError::RecursiveObjectType(
                        self.objects[id].name.clone(),
                    ));
                }
            }
        }
        self.objects[id].fields = fields;
        Ok(())
    }

    fn object_reaches(&self, from: ObjTypeId, target: ObjTypeId) -> bool {
        self.objects[from]
            .fields
            .iter()
            .any(|f| match self.get(f.ty) {
                Type::Object(inner) => inner == target || self.object_reaches(inner, target),
                _ => false,
            })
    }

    /// Computes the C-like memory layout of an object type: fields at their
    /// aligned offsets, total size padded to the maximum field alignment.
    pub fn object_layout(&self, id: ObjTypeId) -> ObjectLayout {
        let obj = &self.objects[id];
        let mut offset = 0u64;
        let mut align = 1u64;
        let mut offsets = Vec::with_capacity(obj.fields.len());
        for f in &obj.fields {
            let ty = self.get(f.ty);
            let fa = ty.align(self).max(1);
            let fs = ty.byte_size(self);
            align = align.max(fa);
            offset = offset.div_ceil(fa) * fa;
            offsets.push(offset);
            offset += fs;
        }
        let size = offset.div_ceil(align) * align;
        ObjectLayout {
            size,
            align,
            offsets,
        }
    }

    /// Renders a type as MEMOIR surface syntax (e.g. `Seq<i32>`,
    /// `Assoc<&T0, f64>`).
    pub fn display(&self, id: TypeId) -> String {
        self.display_type(self.get(id))
    }

    /// Renders a [`Type`] as MEMOIR surface syntax.
    pub fn display_type(&self, ty: Type) -> String {
        match ty {
            Type::I64 => "i64".into(),
            Type::I32 => "i32".into(),
            Type::I16 => "i16".into(),
            Type::I8 => "i8".into(),
            Type::U64 => "u64".into(),
            Type::U32 => "u32".into(),
            Type::U16 => "u16".into(),
            Type::U8 => "u8".into(),
            Type::Bool => "bool".into(),
            Type::Index => "index".into(),
            Type::F64 => "f64".into(),
            Type::F32 => "f32".into(),
            Type::Ptr => "ptr".into(),
            Type::Ref(obj) => format!("&{}", self.objects[obj].name),
            Type::Object(obj) => self.objects[obj].name.clone(),
            Type::Seq(elem) => format!("Seq<{}>", self.display(elem)),
            Type::Assoc(k, v) => format!("Assoc<{}, {}>", self.display(k), self.display(v)),
            Type::Void => "void".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_obj() -> (TypeTable, ObjTypeId) {
        let mut t = TypeTable::new();
        let i32t = t.intern(Type::I32);
        let f32t = t.intern(Type::F32);
        let obj = t
            .define_object(
                "t0",
                vec![
                    Field {
                        name: "a".into(),
                        ty: i32t,
                    },
                    Field {
                        name: "b".into(),
                        ty: f32t,
                    },
                ],
            )
            .unwrap();
        (t, obj)
    }

    #[test]
    fn interning_dedupes() {
        let mut t = TypeTable::new();
        let a = t.intern(Type::I32);
        let b = t.intern(Type::I32);
        assert_eq!(a, b);
        let s1 = t.seq_of(a);
        let s2 = t.seq_of(b);
        assert_eq!(s1, s2);
        assert_ne!(a, s1);
    }

    #[test]
    fn duplicate_field_rejected() {
        let mut t = TypeTable::new();
        let i = t.intern(Type::I64);
        let err = t
            .define_object(
                "bad",
                vec![
                    Field {
                        name: "x".into(),
                        ty: i,
                    },
                    Field {
                        name: "x".into(),
                        ty: i,
                    },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, TypeError::DuplicateField(..)));
    }

    #[test]
    fn layout_is_c_like() {
        let mut t = TypeTable::new();
        let i8t = t.intern(Type::I8);
        let i64t = t.intern(Type::I64);
        let obj = t
            .define_object(
                "padded",
                vec![
                    Field {
                        name: "a".into(),
                        ty: i8t,
                    },
                    Field {
                        name: "b".into(),
                        ty: i64t,
                    },
                    Field {
                        name: "c".into(),
                        ty: i8t,
                    },
                ],
            )
            .unwrap();
        let layout = t.object_layout(obj);
        assert_eq!(layout.offsets, vec![0, 8, 16]);
        assert_eq!(layout.align, 8);
        assert_eq!(layout.size, 24);
    }

    #[test]
    fn dead_field_elimination_shrinks_layout() {
        let (mut t, obj) = table_with_obj();
        let before = t.object_layout(obj).size;
        let keep = vec![t.object(obj).fields[0].clone()];
        t.set_fields(obj, keep).unwrap();
        let after = t.object_layout(obj).size;
        assert!(after < before);
    }

    #[test]
    fn recursive_edit_rejected() {
        let mut t = TypeTable::new();
        let i = t.intern(Type::I32);
        let a = t
            .define_object(
                "A",
                vec![Field {
                    name: "x".into(),
                    ty: i,
                }],
            )
            .unwrap();
        let a_inline = t.intern(Type::Object(a));
        let err = t
            .set_fields(
                a,
                vec![Field {
                    name: "self_".into(),
                    ty: a_inline,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, TypeError::RecursiveObjectType(_)));
    }

    #[test]
    fn references_are_allowed_to_self() {
        // `&T` fields do not make a type recursive: references are handles.
        let mut t = TypeTable::new();
        let a = t.define_object("Node", vec![]).unwrap();
        let r = t.ref_of(a);
        t.set_fields(
            a,
            vec![Field {
                name: "next".into(),
                ty: r,
            }],
        )
        .unwrap();
        assert_eq!(t.object_layout(a).size, 8);
    }

    #[test]
    fn display_round_trips_names() {
        let (mut t, obj) = table_with_obj();
        let r = t.ref_of(obj);
        let s = t.seq_of(r);
        assert_eq!(t.display(s), "Seq<&t0>");
        let b = t.intern(Type::Bool);
        let a = t.assoc_of(b, s);
        assert_eq!(t.display(a), "Assoc<bool, Seq<&t0>>");
    }

    #[test]
    fn byte_sizes() {
        let (t, obj) = table_with_obj();
        assert_eq!(Type::I16.byte_size(&t), 2);
        assert_eq!(Type::Ref(obj).byte_size(&t), 8);
        assert_eq!(Type::Object(obj).byte_size(&t), 8); // i32 + f32
        assert!(Type::Index.is_integer());
        assert!(Type::F32.is_float());
        assert!(!Type::Seq(TypeId::from_raw(0)).is_primitive());
    }
}
