//! The MEMOIR verifier: structural, type, and SSA invariants.
//!
//! The verifier enforces, per function:
//!
//! * every reachable block ends in exactly one terminator;
//! * φs appear only at block heads and have exactly one incoming per
//!   predecessor;
//! * every use is dominated by its definition (SSA dominance);
//! * operand types satisfy the MEMOIR typing rules of Fig. 2;
//! * form invariants: `Form::Ssa` functions contain no `mut.*`
//!   instructions, `Form::Mut` functions contain no SSA collection
//!   updates or USEφ.

use crate::ids::{BlockId, FuncId, InstId, ValueId};
use crate::inst::{Callee, InstKind};
use crate::{Form, Function, Module, Type, ValueDef};
use std::collections::HashMap;
use std::fmt;

/// A single verification failure.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Function in which the failure occurred.
    pub func: String,
    /// Offending instruction, if the failure is instruction-local.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(f, "[{}:{:?}] {}", self.func, i, self.message),
            None => write!(f, "[{}] {}", self.func, self.message),
        }
    }
}

/// Verifies a whole module. Returns all failures (empty ⇒ valid).
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for (id, f) in m.funcs.iter() {
        errs.extend(verify_function(m, id, f));
    }
    errs
}

/// Verifies a module, panicking with a readable report on failure. Intended
/// for tests and pass pipelines.
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    if !errs.is_empty() {
        let report: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!("IR verification failed:\n{}", report.join("\n"));
    }
}

struct Ctx<'a> {
    m: &'a Module,
    f: &'a Function,
    errs: Vec<VerifyError>,
}

impl<'a> Ctx<'a> {
    fn err(&mut self, inst: Option<InstId>, msg: impl Into<String>) {
        self.errs.push(VerifyError {
            func: self.f.name.clone(),
            inst,
            message: msg.into(),
        });
    }

    fn ty(&self, v: ValueId) -> Type {
        self.m.types.get(self.f.value_ty(v))
    }
}

/// Verifies a single function.
pub fn verify_function(m: &Module, _id: FuncId, f: &Function) -> Vec<VerifyError> {
    let mut ctx = Ctx {
        m,
        f,
        errs: Vec::new(),
    };
    check_structure(&mut ctx);
    check_types(&mut ctx);
    check_form(&mut ctx);
    check_dominance(&mut ctx);
    ctx.errs
}

fn check_structure(ctx: &mut Ctx<'_>) {
    let f = ctx.f;
    let preds = f.predecessors();
    let reachable: Vec<BlockId> = f.reverse_postorder();
    for &b in &reachable {
        let insts = &f.blocks[b].insts;
        if insts.is_empty() {
            ctx.err(None, format!("block {b} is empty"));
            continue;
        }
        let last = *insts.last().unwrap();
        if !f.insts[last].kind.is_terminator() {
            ctx.err(
                Some(last),
                format!("block {b} does not end in a terminator"),
            );
        }
        let mut seen_non_phi = false;
        for (pos, &i) in insts.iter().enumerate() {
            let kind = &f.insts[i].kind;
            if kind.is_terminator() && pos + 1 != insts.len() {
                ctx.err(Some(i), format!("terminator in the middle of block {b}"));
            }
            if kind.is_phi() {
                if seen_non_phi {
                    ctx.err(Some(i), format!("phi after non-phi in block {b}"));
                }
            } else {
                seen_non_phi = true;
            }
            if let InstKind::Phi { incoming } = kind {
                let mut expected: Vec<BlockId> = preds[b].clone();
                expected.sort();
                expected.dedup();
                let mut got: Vec<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                got.sort();
                let mut got_d = got.clone();
                got_d.dedup();
                if got_d.len() != got.len() {
                    ctx.err(Some(i), "phi has duplicate incoming blocks".to_string());
                }
                if got_d != expected {
                    ctx.err(
                        Some(i),
                        format!(
                            "phi incoming blocks {:?} do not match predecessors {:?} of {b}",
                            got_d, expected
                        ),
                    );
                }
            }
        }
    }
}

fn expect(ctx: &mut Ctx<'_>, inst: InstId, cond: bool, msg: impl Into<String>) {
    if !cond {
        ctx.err(Some(inst), msg);
    }
}

fn index_like(t: Type) -> bool {
    t == Type::Index
}

fn check_collection_access(ctx: &mut Ctx<'_>, i: InstId, c: ValueId, idx: ValueId) {
    match ctx.ty(c) {
        Type::Seq(_) => {
            let it = ctx.ty(idx);
            expect(
                ctx,
                i,
                index_like(it),
                format!("sequence index must be `index`, got {it:?}"),
            );
        }
        Type::Assoc(k, _) => {
            let kt = ctx.m.types.get(k);
            let it = ctx.ty(idx);
            expect(
                ctx,
                i,
                it == kt,
                format!("assoc key type mismatch: {it:?} vs {kt:?}"),
            );
        }
        other => expect(ctx, i, false, format!("expected collection, got {other:?}")),
    }
}

fn elem_ty(ctx: &Ctx<'_>, c: ValueId) -> Option<Type> {
    match ctx.ty(c) {
        Type::Seq(e) => Some(ctx.m.types.get(e)),
        Type::Assoc(_, v) => Some(ctx.m.types.get(v)),
        _ => None,
    }
}

fn check_types(ctx: &mut Ctx<'_>) {
    for (_, i) in ctx.f.inst_ids_in_order() {
        let inst = ctx.f.insts[i].clone();
        match &inst.kind {
            InstKind::Bin { lhs, rhs, .. } => {
                let (a, b) = (ctx.ty(*lhs), ctx.ty(*rhs));
                expect(
                    ctx,
                    i,
                    a == b,
                    format!("bin operand types differ: {a:?} vs {b:?}"),
                );
                expect(
                    ctx,
                    i,
                    a.is_integer() || a.is_float() || a == Type::Bool,
                    format!("bin on non-numeric {a:?}"),
                );
            }
            InstKind::Cmp { lhs, rhs, .. } => {
                let (a, b) = (ctx.ty(*lhs), ctx.ty(*rhs));
                expect(
                    ctx,
                    i,
                    a == b,
                    format!("cmp operand types differ: {a:?} vs {b:?}"),
                );
            }
            InstKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*cond) == Type::Bool,
                    "select condition must be bool",
                );
                let (a, b) = (ctx.ty(*then_value), ctx.ty(*else_value));
                expect(
                    ctx,
                    i,
                    a == b,
                    format!("select arm types differ: {a:?} vs {b:?}"),
                );
            }
            InstKind::Phi { incoming } => {
                let rt = ctx.ty(inst.results[0]);
                for (_, v) in incoming {
                    let vt = ctx.ty(*v);
                    expect(
                        ctx,
                        i,
                        vt == rt,
                        format!("phi incoming {vt:?} != result {rt:?}"),
                    );
                }
            }
            InstKind::Branch { cond, .. } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*cond) == Type::Bool,
                    "branch condition must be bool",
                );
            }
            InstKind::Ret { values } => {
                let want = ctx.f.ret_tys.clone();
                expect(
                    ctx,
                    i,
                    values.len() == want.len(),
                    format!("ret arity {} != signature {}", values.len(), want.len()),
                );
                for (v, w) in values.iter().zip(want.iter()) {
                    let vt = ctx.ty(*v);
                    let wt = ctx.m.types.get(*w);
                    expect(
                        ctx,
                        i,
                        vt == wt,
                        format!("ret type {vt:?} != declared {wt:?}"),
                    );
                }
            }
            InstKind::Call { callee, args } => {
                let (params, rets): (Vec<Type>, Vec<Type>) = match callee {
                    Callee::Func(fid) => {
                        let callee_f = &ctx.m.funcs[*fid];
                        (
                            callee_f
                                .params
                                .iter()
                                .map(|p| ctx.m.types.get(p.ty))
                                .collect(),
                            callee_f
                                .ret_tys
                                .iter()
                                .map(|&t| ctx.m.types.get(t))
                                .collect(),
                        )
                    }
                    Callee::Extern(eid) => {
                        let e = &ctx.m.externs[*eid];
                        (
                            e.params.iter().map(|&t| ctx.m.types.get(t)).collect(),
                            e.ret_tys.iter().map(|&t| ctx.m.types.get(t)).collect(),
                        )
                    }
                };
                expect(
                    ctx,
                    i,
                    args.len() == params.len(),
                    format!("call arity {} != {}", args.len(), params.len()),
                );
                for (a, p) in args.iter().zip(params.iter()) {
                    let at = ctx.ty(*a);
                    expect(ctx, i, at == *p, format!("call arg {at:?} != param {p:?}"));
                }
                expect(
                    ctx,
                    i,
                    inst.results.len() == rets.len(),
                    format!(
                        "call results {} != returns {}",
                        inst.results.len(),
                        rets.len()
                    ),
                );
                for (r, t) in inst.results.iter().zip(rets.iter()) {
                    let rt = ctx.ty(*r);
                    expect(
                        ctx,
                        i,
                        rt == *t,
                        format!("call result {rt:?} != return {t:?}"),
                    );
                }
            }
            InstKind::Read { c, idx } => {
                check_collection_access(ctx, i, *c, *idx);
                if let Some(et) = elem_ty(ctx, *c) {
                    let rt = ctx.ty(inst.results[0]);
                    expect(
                        ctx,
                        i,
                        rt == et,
                        format!("read result {rt:?} != element {et:?}"),
                    );
                }
            }
            InstKind::Write { c, idx, value } | InstKind::MutWrite { c, idx, value } => {
                check_collection_access(ctx, i, *c, *idx);
                if let Some(et) = elem_ty(ctx, *c) {
                    let vt = ctx.ty(*value);
                    expect(
                        ctx,
                        i,
                        vt == et,
                        format!("write value {vt:?} != element {et:?}"),
                    );
                }
            }
            InstKind::Rmw { c, idx, value, .. } | InstKind::MutRmw { c, idx, value, .. } => {
                check_collection_access(ctx, i, *c, *idx);
                if let Some(et) = elem_ty(ctx, *c) {
                    let vt = ctx.ty(*value);
                    expect(
                        ctx,
                        i,
                        vt == et,
                        format!("rmw value {vt:?} != element {et:?}"),
                    );
                }
            }
            InstKind::Insert { c, idx, value } | InstKind::MutInsert { c, idx, value } => {
                check_collection_access(ctx, i, *c, *idx);
                if let (Some(v), Some(et)) = (value, elem_ty(ctx, *c)) {
                    let vt = ctx.ty(*v);
                    expect(
                        ctx,
                        i,
                        vt == et,
                        format!("insert value {vt:?} != element {et:?}"),
                    );
                }
            }
            InstKind::InsertSeq { c, idx, src } | InstKind::MutInsertSeq { c, idx, src } => {
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*c), Type::Seq(_)),
                    "insert.seq needs a sequence",
                );
                expect(
                    ctx,
                    i,
                    ctx.ty(*c) == ctx.ty(*src),
                    "insert.seq source type mismatch",
                );
                expect(
                    ctx,
                    i,
                    index_like(ctx.ty(*idx)),
                    "insert.seq index must be `index`",
                );
            }
            InstKind::Remove { c, idx } | InstKind::MutRemove { c, idx } => {
                check_collection_access(ctx, i, *c, *idx);
            }
            InstKind::RemoveRange { c, from, to }
            | InstKind::CopyRange { c, from, to }
            | InstKind::MutRemoveRange { c, from, to }
            | InstKind::MutSplit { c, from, to } => {
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*c), Type::Seq(_)),
                    "range op needs a sequence",
                );
                expect(
                    ctx,
                    i,
                    index_like(ctx.ty(*from)),
                    "range start must be `index`",
                );
                expect(ctx, i, index_like(ctx.ty(*to)), "range end must be `index`");
            }
            InstKind::Swap { c, from, to, at } | InstKind::MutSwap { c, from, to, at } => {
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*c), Type::Seq(_)),
                    "swap needs a sequence",
                );
                for x in [from, to, at] {
                    expect(
                        ctx,
                        i,
                        index_like(ctx.ty(*x)),
                        "swap indices must be `index`",
                    );
                }
            }
            InstKind::Swap2 { a, from, to, b, at } | InstKind::MutSwap2 { a, from, to, b, at } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*a) == ctx.ty(*b),
                    "swap2 sequences must share a type",
                );
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*a), Type::Seq(_)),
                    "swap2 needs sequences",
                );
                for x in [from, to, at] {
                    expect(
                        ctx,
                        i,
                        index_like(ctx.ty(*x)),
                        "swap2 indices must be `index`",
                    );
                }
            }
            InstKind::Size { c } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*c).is_collection(),
                    "size needs a collection",
                );
            }
            InstKind::Has { c, key } => match ctx.ty(*c) {
                Type::Assoc(k, _) => {
                    let kt = ctx.m.types.get(k);
                    let it = ctx.ty(*key);
                    expect(ctx, i, it == kt, format!("has key {it:?} != {kt:?}"));
                }
                other => expect(ctx, i, false, format!("has needs an assoc, got {other:?}")),
            },
            InstKind::Keys { c } => {
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*c), Type::Assoc(..)),
                    "keys needs an assoc",
                );
            }
            InstKind::UsePhi { c } | InstKind::Copy { c } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*c).is_collection(),
                    "operand must be a collection",
                );
            }
            InstKind::MutAppend { c, src } => {
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*c), Type::Seq(_)),
                    "append needs a sequence",
                );
                expect(
                    ctx,
                    i,
                    ctx.ty(*c) == ctx.ty(*src),
                    "append source type mismatch",
                );
            }
            InstKind::FieldRead { obj, obj_ty, field } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*obj) == Type::Ref(*obj_ty),
                    "field.read on wrong ref type",
                );
                let nfields = ctx.m.types.object(*obj_ty).fields.len() as u32;
                expect(ctx, i, *field < nfields, "field index out of range");
            }
            InstKind::FieldWrite {
                obj,
                obj_ty,
                field,
                value,
            } => {
                expect(
                    ctx,
                    i,
                    ctx.ty(*obj) == Type::Ref(*obj_ty),
                    "field.write on wrong ref type",
                );
                let nfields = ctx.m.types.object(*obj_ty).fields.len() as u32;
                expect(ctx, i, *field < nfields, "field index out of range");
                if *field < nfields {
                    let ft = ctx
                        .m
                        .types
                        .get(ctx.m.types.object(*obj_ty).fields[*field as usize].ty);
                    let vt = ctx.ty(*value);
                    expect(
                        ctx,
                        i,
                        vt == ft,
                        format!("field.write value {vt:?} != field {ft:?}"),
                    );
                }
            }
            InstKind::DeleteObj { obj } => {
                expect(
                    ctx,
                    i,
                    matches!(ctx.ty(*obj), Type::Ref(_)),
                    "delete needs a reference",
                );
            }
            InstKind::NewSeq { len, .. } => {
                expect(
                    ctx,
                    i,
                    index_like(ctx.ty(*len)),
                    "new Seq length must be `index`",
                );
            }
            InstKind::NewAssoc { .. }
            | InstKind::NewObj { .. }
            | InstKind::Cast { .. }
            | InstKind::Jump { .. }
            | InstKind::Unreachable => {}
        }
    }
}

fn check_form(ctx: &mut Ctx<'_>) {
    for (_, i) in ctx.f.inst_ids_in_order() {
        let kind = &ctx.f.insts[i].kind;
        match ctx.f.form {
            Form::Ssa => {
                if kind.is_mut_op() {
                    ctx.err(Some(i), "mut-form instruction in SSA function");
                }
            }
            Form::Mut => {
                if kind.is_ssa_collection_op() {
                    ctx.err(Some(i), "SSA collection update in mut-form function");
                }
            }
        }
    }
}

/// Self-contained dominator computation (iterative data-flow over RPO) used
/// only by the verifier; the analysis crate has the full-featured version.
fn dominators(f: &Function) -> HashMap<BlockId, Vec<BlockId>> {
    let rpo = f.reverse_postorder();
    let preds = f.predecessors();
    let all: Vec<BlockId> = rpo.clone();
    let mut dom: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    dom.insert(f.entry, vec![f.entry]);
    for &b in &all {
        if b != f.entry {
            dom.insert(b, all.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &all {
            if b == f.entry {
                continue;
            }
            let mut new: Option<Vec<BlockId>> = None;
            for &p in &preds[b] {
                if !dom.contains_key(&p) {
                    continue; // unreachable predecessor
                }
                let pd = &dom[&p];
                new = Some(match new {
                    None => pd.clone(),
                    Some(cur) => cur.into_iter().filter(|x| pd.contains(x)).collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            if !new.contains(&b) {
                new.push(b);
            }
            new.sort();
            if dom[&b] != new {
                dom.insert(b, new);
                changed = true;
            }
        }
    }
    dom
}

fn check_dominance(ctx: &mut Ctx<'_>) {
    let f = ctx.f;
    let dom = dominators(f);
    // Position of each instruction: (block, index).
    let mut pos: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for (b, block) in f.blocks.iter() {
        for (idx, &i) in block.insts.iter().enumerate() {
            pos.insert(i, (b, idx));
        }
    }
    let dominates = |def: ValueId, use_block: BlockId, use_idx: usize| -> bool {
        match &f.values[def].def {
            ValueDef::Param(_) | ValueDef::Const(_) => true,
            ValueDef::Inst(di, _) => match pos.get(di) {
                None => false, // defined by an unplaced instruction
                Some(&(db, didx)) => {
                    if db == use_block {
                        didx < use_idx
                    } else {
                        dom.get(&use_block)
                            .map(|d| d.contains(&db))
                            .unwrap_or(false)
                    }
                }
            },
        }
    };
    for (b, block) in f.blocks.iter() {
        if !dom.contains_key(&b) {
            continue; // unreachable; skip
        }
        for (idx, &i) in block.insts.iter().enumerate() {
            let kind = f.insts[i].kind.clone();
            if let InstKind::Phi { incoming } = &kind {
                // φ operands must dominate the *end of the corresponding
                // predecessor*, not the φ itself.
                for (p, v) in incoming {
                    let plen = f.blocks[*p].insts.len();
                    if !dominates(*v, *p, plen) {
                        ctx.err(
                            Some(i),
                            format!("phi operand {v} does not dominate predecessor {p} exit"),
                        );
                    }
                }
            } else {
                for v in kind.operands() {
                    if !dominates(v, b, idx) {
                        ctx.err(
                            Some(i),
                            format!("use of {v} not dominated by its definition"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, CmpOp};

    #[test]
    fn valid_loop_verifies() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("count", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let n = b.param("n", t);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(t);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            let done = b.cmp(CmpOp::Ge, i, n);
            b.branch(done, exit, body);
            b.switch_to(body);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.jump(header);
            b.switch_to(exit);
            b.returns(&[t]);
            b.ret(vec![i]);
        });
        let m = mb.finish();
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn detects_missing_terminator() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let x = b.i64(1);
            let y = b.i64(2);
            b.bin(BinOp::Add, x, y);
            // no ret
        });
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("terminator")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_type_mismatch() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let x = b.i64(1);
            let y = b.index(2);
            b.bin(BinOp::Add, x, y); // i64 + index: mismatch
            b.ret(vec![]);
        });
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("differ")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_mut_op_in_ssa_function() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(3);
            let s = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(5);
            b.mut_write(s, zero, v);
            b.ret(vec![]);
        });
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("mut-form")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_use_before_def_across_blocks() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Bool);
            let left = b.block("left");
            let right = b.block("right");
            let join = b.block("join");
            let c = b.bool(true);
            b.branch(c, left, right);
            b.switch_to(left);
            let x = b.cmp(CmpOp::Eq, c, c); // defined only on left path
            b.jump(join);
            b.switch_to(right);
            b.jump(join);
            b.switch_to(join);
            let y = b.cmp(CmpOp::Eq, x, c); // uses x: not dominated
            let _ = y;
            b.returns(&[t]);
            b.ret(vec![y]);
        });
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.message.contains("not dominated")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_bad_phi_incoming() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::Index);
            let next = b.block("next");
            b.jump(next);
            b.switch_to(next);
            let zero = b.index(0);
            // φ claims an incoming from `next` itself, which is not a pred.
            let p = b.phi(t, vec![(next, zero)]);
            b.returns(&[t]);
            b.ret(vec![p]);
        });
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(
            errs.iter()
                .any(|e| e.message.contains("do not match predecessors")),
            "{errs:?}"
        );
    }

    #[test]
    fn ret_arity_checked() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::I64);
            b.returns(&[t]);
            b.ret(vec![]);
        });
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("arity")), "{errs:?}");
    }
}
