//! Property tests for the structural fingerprint
//! (`memoir_ir::fingerprint`): the contract every fingerprint-keyed
//! cache layer (analysis retention, the cross-job compile cache, the
//! lowered-body cache) relies on.
//!
//! * **Determinism** — fingerprints are a pure function of the module:
//!   recomputation, a deep clone, and concurrent computation from many
//!   threads all agree.
//! * **Renumbering insensitivity** — orphan (unreferenced) values
//!   displace every later raw `ValueId` without changing observable
//!   structure; fingerprints must not move.
//! * **Edit sensitivity** — changing any single constant in a function
//!   changes that function's fingerprint and (via callee propagation)
//!   its callers', while unrelated functions keep theirs.

use memoir_ir::fingerprint::module_fingerprints;
use memoir_ir::{Form, FuncId, FunctionBuilder, Module, Type};
use passman::Fingerprint;
use proptest::prelude::*;

/// Builds a module with one `chain` function (a running sum over the
/// given constants) plus a `caller` wrapping it and an unrelated `leaf`.
/// `orphans[i]` injects an unreferenced constant value before step `i`,
/// shifting every later raw value id without changing structure.
fn build(chain: &[i64], orphans: &[bool]) -> (Module, FuncId, FuncId, FuncId) {
    let mut m = Module::new("prop");

    let mut b = FunctionBuilder::new(&mut m.types, "chain", Form::Ssa);
    let i64t = b.ty(Type::I64);
    let x = b.param("x", i64t);
    b.returns(&[i64t]);
    let mut acc = x;
    for (i, &k) in chain.iter().enumerate() {
        if orphans.get(i).copied().unwrap_or(false) {
            b.i64(0x0BAD); // orphan: displaces ids, invisible to structure
        }
        let c = b.i64(k);
        acc = b.add(acc, c);
    }
    b.ret(vec![acc]);
    let chain_id = {
        let f = b.finish();
        m.add_func(f)
    };

    let mut b = FunctionBuilder::new(&mut m.types, "caller", Form::Ssa);
    let i64t = b.ty(Type::I64);
    let y = b.param("y", i64t);
    b.returns(&[i64t]);
    let rets = b.call(memoir_ir::Callee::Func(chain_id), vec![y], &[i64t]);
    b.ret(vec![rets[0]]);
    let caller_id = {
        let f = b.finish();
        m.add_func(f)
    };

    let mut b = FunctionBuilder::new(&mut m.types, "leaf", Form::Ssa);
    let i64t = b.ty(Type::I64);
    let z = b.param("z", i64t);
    b.returns(&[i64t]);
    let c = b.i64(7);
    let s = b.add(z, c);
    b.ret(vec![s]);
    let leaf_id = {
        let f = b.finish();
        m.add_func(f)
    };

    (m, chain_id, caller_id, leaf_id)
}

/// `module_fingerprints` as a lookup table.
fn fps(m: &Module) -> Vec<(FuncId, Fingerprint)> {
    module_fingerprints(m)
}

fn fp_of(table: &[(FuncId, Fingerprint)], id: FuncId) -> Fingerprint {
    table
        .iter()
        .find(|(fid, _)| *fid == id)
        .map(|&(_, fp)| fp)
        .expect("function has a fingerprint")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure function of the module: recomputing, cloning, and computing
    /// from four concurrent threads all yield the same table.
    #[test]
    fn deterministic_across_runs_and_threads(
        chain in proptest::collection::vec(-100i64..100, 1..16),
    ) {
        let (m, ..) = build(&chain, &[]);
        let base = fps(&m);
        prop_assert_eq!(&base, &fps(&m));
        prop_assert_eq!(&base, &fps(&m.clone()));
        let concurrent: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| fps(&m))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for table in concurrent {
            prop_assert_eq!(&base, &table);
        }
    }

    /// Orphan values renumber every later `ValueId`; fingerprints are
    /// keyed on canonical structure and must not move.
    #[test]
    fn insensitive_to_value_id_renumbering(
        chain in proptest::collection::vec(-100i64..100, 1..16),
        orphans in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let (plain, ..) = build(&chain, &[]);
        let (shifted, ..) = build(&chain, &orphans);
        prop_assert_eq!(fps(&plain), fps(&shifted));
    }

    /// Editing one constant changes the edited function's fingerprint,
    /// propagates to its caller through the callgraph, and leaves the
    /// unrelated function untouched.
    #[test]
    fn one_op_edit_is_visible_and_propagates(
        chain in proptest::collection::vec(-100i64..100, 1..16),
        pick in any::<u64>(),
    ) {
        let idx = (pick as usize) % chain.len();
        let mut edited = chain.clone();
        edited[idx] = edited[idx].wrapping_add(1);

        let (before, chain_id, caller_id, leaf_id) = build(&chain, &[]);
        let (after, ..) = build(&edited, &[]);
        let (fb, fa) = (fps(&before), fps(&after));
        prop_assert!(fp_of(&fb, chain_id) != fp_of(&fa, chain_id));
        prop_assert!(fp_of(&fb, caller_id) != fp_of(&fa, caller_id));
        prop_assert_eq!(fp_of(&fb, leaf_id), fp_of(&fa, leaf_id));
    }
}
