//! # memoir-lower
//!
//! Collection lowering (paper §VI): MEMOIR mut-form programs become
//! low-level IR with explicit memory — inlined sequence/object accesses
//! and opaque associative-array runtime calls — plus heap/stack placement
//! decisions from the escape analysis.

#![warn(missing_docs)]

pub mod lower;
pub mod stackalloc;
pub mod validate;

pub use lower::{
    lower_module, lower_module_opts, lower_module_with_stats, LowerError, LowerOptions, LowerRun,
    LowerStats,
};
pub use stackalloc::{placement_report, PlacementReport};
pub use validate::{
    cross_validate, cross_validate_opts, materialize, mix_seed, scalar_args, synth_args,
    CrossCheckReport, ProbeArg, ValidateError, ValidateOptions, DEFAULT_PROBES,
};
