//! Collection lowering: MEMOIR mut form → low-level IR (paper §VI).
//!
//! Sequences lower to a `[data, len, cap]` header plus inlined
//! `load`/`store` element accesses (the `std::vector` shape); associative
//! arrays lower to **opaque runtime calls** (the `std::unordered_map`
//! shape — partially-inlined hash tables are opaque to analyses, which is
//! what Listing 1 and §VII-D measure); objects lower to word-per-field
//! records with `gep`+`load`/`store` accesses.
//!
//! The MUT value semantics are preserved: by-value collection arguments
//! are copied at the call site, by-reference arguments pass the handle.

use lir::{
    BinOp as LBin, Blk, CmpOp as LCmp, Fun, Function as LFunction, Module as LModule, Op, Val,
};
use memoir_analysis::Placement;
use memoir_ir::{
    BinOp, Callee, CmpOp, Constant, Form, FuncId, InstId, InstKind, Module, Repr, Type, ValueDef,
    ValueId,
};
use std::collections::HashMap;

/// Statistics from lowering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Sequences lowered to stack storage (`alloca`) — non-escaping with
    /// a constant length (§VI's heap/stack selection).
    pub stack_seqs: usize,
    /// Sequences lowered to heap storage (runtime allocation).
    pub heap_seqs: usize,
    /// Associative arrays lowered to the dense direct-indexed layout
    /// (`rt_dense_new`) by adaptive representation selection.
    pub dense_assocs: usize,
    /// Stack sequences whose placement was additionally proven by the
    /// repr analysis ([`Repr::Inline`]) — a subset of `stack_seqs`.
    pub inline_seqs: usize,
}

/// Errors from lowering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// A function was not in mut form.
    NotMutForm(String),
    /// Floating-point is not supported by the word-sized low-level IR.
    FloatUnsupported(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::NotMutForm(n) => write!(f, "function `{n}` is not in mut form"),
            LowerError::FloatUnsupported(n) => {
                write!(
                    f,
                    "function `{n}` uses floats (unsupported in the word-sized LIR)"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a whole mut-form module.
pub fn lower_module(m: &Module) -> Result<LModule, LowerError> {
    lower_module_with_stats(m).map(|(out, _)| out)
}

/// [`lower_module`], also reporting heap/stack placement statistics.
pub fn lower_module_with_stats(m: &Module) -> Result<(LModule, LowerStats), LowerError> {
    lower_module_opts(m, &LowerOptions::default()).map(|run| (run.module, run.stats))
}

/// Options for [`lower_module_opts`]: per-function sharding and an
/// optional cross-job cache of lowered outputs.
#[derive(Clone, Debug, Default)]
pub struct LowerOptions {
    /// Worker threads lowering functions in parallel (`0`/`1` = serial).
    /// The merged module is byte-identical for every thread count:
    /// functions are reassembled in id order and the error of the
    /// lowest-id failing function wins, exactly as in a serial walk.
    pub threads: usize,
    /// Cache of per-function lowered outputs, keyed by the function's
    /// structural fingerprint (`memoir_ir::fingerprint`). A fingerprint
    /// covers the whole type table, extern summaries, callee slot ids,
    /// and (transitively) callee bodies — everything `lower_function`
    /// and its escape analysis can observe — so a hit is sound to splice
    /// in without re-lowering.
    pub cache: Option<passman::CompileCache>,
    /// Adaptive representation selection (DESIGN §16): run
    /// [`memoir_analysis::choose_reprs`] and lower qualifying assocs to
    /// the dense direct-indexed layout (`rt_dense_new`). The analysis is
    /// per-function and deterministic, so cached entries stay sound —
    /// they are simply namespaced apart from default-layout entries.
    pub adaptive: bool,
}

/// The result of [`lower_module_opts`].
#[derive(Clone, Debug)]
pub struct LowerRun {
    /// The lowered module.
    pub module: LModule,
    /// Heap/stack placement statistics (cache hits contribute their
    /// recorded per-function stats, so totals match a cold run).
    pub stats: LowerStats,
    /// Cache traffic: one lookup per function when a cache is attached.
    pub cache: passman::CompileCacheStats,
}

/// A cached per-function lowering result.
#[derive(Clone)]
struct LoweredEntry {
    func: LFunction,
    stats: LowerStats,
}

/// [`lower_module_with_stats`] with explicit sharding/caching options.
pub fn lower_module_opts(m: &Module, opts: &LowerOptions) -> Result<LowerRun, LowerError> {
    let mut out = LModule::default();
    // Pre-create functions so calls can reference forward ids.
    let mut fun_ids: HashMap<FuncId, Fun> = HashMap::new();
    for (fid, f) in m.funcs.iter() {
        if f.form != Form::Mut {
            return Err(LowerError::NotMutForm(f.name.clone()));
        }
        let lf = LFunction::new(
            f.name.clone(),
            f.params.len() as u32,
            f.ret_tys.len() as u32,
        );
        fun_ids.insert(fid, out.add(lf));
    }

    let fids: Vec<FuncId> = m.funcs.ids().collect();
    type FuncResult = Option<Result<(LFunction, LowerStats), LowerError>>;
    let mut results: Vec<FuncResult> = (0..fids.len()).map(|_| None).collect();
    let mut cache_stats = passman::CompileCacheStats::default();

    // Adaptive representation selection, split per function. The empty
    // map is the conservative default for every function.
    let mut reprs: HashMap<FuncId, HashMap<InstId, Repr>> = HashMap::new();
    if opts.adaptive {
        for ((fid, iid), r) in memoir_analysis::choose_reprs(m) {
            reprs.entry(fid).or_default().insert(iid, r);
        }
    }
    let cache_ns = if opts.adaptive {
        "lower-adaptive"
    } else {
        "lower"
    };

    // Consult the cache serially (before any sharding) so hit/miss
    // accounting and the resulting work list are thread-count-invariant.
    let fps: Option<HashMap<FuncId, passman::Fingerprint>> = opts.cache.as_ref().map(|_| {
        memoir_ir::fingerprint::module_fingerprints(m)
            .into_iter()
            .collect()
    });
    if let (Some(cache), Some(fps)) = (&opts.cache, &fps) {
        for (i, fid) in fids.iter().enumerate() {
            match cache.lookup::<LoweredEntry>(cache_ns, fps[fid]) {
                Some(entry) => {
                    cache_stats.hits += 1;
                    results[i] = Some(Ok((entry.func, entry.stats)));
                }
                None => cache_stats.misses += 1,
            }
        }
    }

    // Lower the misses, sharded in contiguous chunks.
    let miss: Vec<usize> = (0..fids.len()).filter(|&i| results[i].is_none()).collect();
    let mut miss_results: Vec<FuncResult> = (0..miss.len()).map(|_| None).collect();
    let threads = opts.threads.clamp(1, miss.len().max(1));
    static NO_REPRS: std::sync::OnceLock<HashMap<InstId, Repr>> = std::sync::OnceLock::new();
    let no_reprs = NO_REPRS.get_or_init(HashMap::new);
    let run_one = |i: usize| {
        let mut stats = LowerStats::default();
        let frep = reprs.get(&fids[i]).unwrap_or(no_reprs);
        lower_function(m, fids[i], &fun_ids, frep, &mut stats).map(|lf| (lf, stats))
    };
    if threads <= 1 {
        for (&i, slot) in miss.iter().zip(miss_results.iter_mut()) {
            *slot = Some(run_one(i));
        }
    } else {
        let chunk = miss.len().div_ceil(threads);
        std::thread::scope(|s| {
            for (ids, slots) in miss.chunks(chunk).zip(miss_results.chunks_mut(chunk)) {
                let run_one = &run_one;
                s.spawn(move || {
                    for (&i, slot) in ids.iter().zip(slots.iter_mut()) {
                        *slot = Some(run_one(i));
                    }
                });
            }
        });
    }
    for (k, &i) in miss.iter().enumerate() {
        results[i] = miss_results[k].take();
    }

    // Publish fresh results, then assemble in id order; the first error
    // by function id wins, matching the serial walk.
    if let (Some(cache), Some(fps)) = (&opts.cache, &fps) {
        for &i in &miss {
            if let Some(Ok((lf, stats))) = &results[i] {
                cache.store(
                    cache_ns,
                    fps[&fids[i]],
                    LoweredEntry {
                        func: lf.clone(),
                        stats: *stats,
                    },
                );
            }
        }
    }
    let mut stats = LowerStats::default();
    for (i, fid) in fids.iter().enumerate() {
        let (lf, fstats) = results[i].take().expect("every function lowered")?;
        stats.stack_seqs += fstats.stack_seqs;
        stats.heap_seqs += fstats.heap_seqs;
        stats.dense_assocs += fstats.dense_assocs;
        stats.inline_seqs += fstats.inline_seqs;
        out.funcs[fun_ids[fid].0 as usize] = lf;
    }
    Ok(LowerRun {
        module: out,
        stats,
        cache: cache_stats,
    })
}

struct Ctx<'m> {
    m: &'m Module,
    f: &'m memoir_ir::Function,
    lf: LFunction,
    map: HashMap<ValueId, Val>,
    blocks: HashMap<memoir_ir::BlockId, Blk>,
    phi_patches: Vec<(
        usize, /* lir inst index */
        Vec<(memoir_ir::BlockId, ValueId)>,
    )>,
    /// Per-allocation-site heap/stack verdicts (§VI).
    placements: HashMap<InstId, Placement>,
    /// Per-allocation-site adaptive representation choices (DESIGN §16);
    /// empty unless [`LowerOptions::adaptive`] is set.
    reprs: &'m HashMap<InstId, Repr>,
}

impl Ctx<'_> {
    fn is_seq(&self, v: ValueId) -> bool {
        matches!(self.m.types.get(self.f.value_ty(v)), Type::Seq(_))
    }

    fn blk(&self, b: memoir_ir::BlockId) -> Blk {
        self.blocks[&b]
    }

    /// Lowers a value operand, materializing constants on demand.
    fn val(&mut self, b: Blk, v: ValueId) -> Result<Val, LowerError> {
        if let Some(&x) = self.map.get(&v) {
            return Ok(x);
        }
        if let ValueDef::Const(c) = self.f.values[v].def {
            let raw = match c {
                Constant::Int(_, x) => x,
                Constant::Bool(x) => x as i64,
                Constant::Null(_) => 0,
                Constant::Float(..) => {
                    return Err(LowerError::FloatUnsupported(self.f.name.clone()))
                }
            };
            let x = self.lf.push1(b, Op::Const(raw));
            // Constants are per-site: do not cache across blocks (the
            // defining block must dominate all uses). Per-use emission
            // keeps dominance trivially.
            return Ok(x);
        }
        unreachable!("operand lowered before definition")
    }

    fn rt(&mut self, b: Blk, name: &str, args: Vec<Val>, has_result: bool) -> Option<Val> {
        let res = self.lf.push(
            b,
            Op::CallRt {
                name: name.to_string(),
                args,
                has_result,
            },
            has_result as usize,
        );
        res.first().copied()
    }

    /// Loads the element address of `seq[idx]`: `gep(load(hdr), idx)`.
    fn seq_elem_addr(&mut self, b: Blk, hdr: Val, idx: Val) -> Val {
        let data = self.lf.push1(b, Op::Load(hdr));
        self.lf.push1(
            b,
            Op::Gep {
                base: data,
                offset: idx,
            },
        )
    }
}

fn lower_function(
    m: &Module,
    fid: FuncId,
    fun_ids: &HashMap<FuncId, Fun>,
    reprs: &HashMap<InstId, Repr>,
    stats: &mut LowerStats,
) -> Result<LFunction, LowerError> {
    let f = &m.funcs[fid];
    let lf = LFunction::new(
        f.name.clone(),
        f.params.len() as u32,
        f.ret_tys.len() as u32,
    );
    let placements = memoir_analysis::EscapeAnalysis::compute(m, f).placements;
    let mut ctx = Ctx {
        m,
        f,
        lf,
        map: HashMap::new(),
        blocks: HashMap::new(),
        phi_patches: Vec::new(),
        placements,
        reprs,
    };
    // Parameters map 1:1 (floats rejected).
    for (i, p) in f.params.iter().enumerate() {
        if m.types.get(p.ty).is_float() {
            return Err(LowerError::FloatUnsupported(f.name.clone()));
        }
        ctx.map.insert(f.param_values[i], ctx.lf.param(i as u32));
    }
    // Blocks 1:1 (entry is pre-created).
    ctx.blocks.insert(f.entry, ctx.lf.entry);
    for (ob, _) in f.blocks.iter() {
        if ob != f.entry {
            let nb = ctx.lf.add_block();
            ctx.blocks.insert(ob, nb);
        }
    }

    // Lower blocks in dominator-tree preorder: every non-φ operand's
    // definition dominates its use, so it is lowered before the use (id
    // order is not sufficient — transformed functions create dominating
    // blocks with high ids).
    let dt = memoir_analysis::DomTree::compute(f);
    for ob in dt.preorder(f.entry) {
        let b = ctx.blk(ob);
        for &iid in &f.blocks[ob].insts.clone() {
            lower_inst(
                &mut ctx,
                b,
                iid,
                &f.insts[iid].kind.clone(),
                &f.insts[iid].results.clone(),
                fun_ids,
                stats,
            )?;
        }
    }

    // Patch φ incomings.
    for (lir_idx, incomings) in std::mem::take(&mut ctx.phi_patches) {
        let mut mapped: Vec<(Blk, Val)> = Vec::with_capacity(incomings.len());
        for (ob, ov) in &incomings {
            let lb = ctx.blk(*ob);
            // Incoming constants must be materialized in the
            // predecessor block (before its terminator).
            let lv = match ctx.map.get(ov) {
                Some(&v) => v,
                None => {
                    if let ValueDef::Const(c) = ctx.f.values[*ov].def {
                        let raw = match c {
                            Constant::Int(_, x) => x,
                            Constant::Bool(x) => x as i64,
                            Constant::Null(_) => 0,
                            // Float constants must not silently lower to
                            // 0: the non-φ path (`Ctx::val`) rejects
                            // them, and a φ incoming is no different.
                            Constant::Float(..) => {
                                return Err(LowerError::FloatUnsupported(f.name.clone()))
                            }
                        };
                        let at = ctx.lf.blocks[lb.0 as usize].insts.len().saturating_sub(1);
                        ctx.lf.insert_at(lb, at, Op::Const(raw), 1)[0]
                    } else {
                        panic!("phi incoming unresolved")
                    }
                }
            };
            mapped.push((lb, lv));
        }
        if let Op::Phi(incs) = &mut ctx.lf.insts[lir_idx].op {
            *incs = mapped;
        }
    }
    Ok(ctx.lf)
}

#[allow(clippy::too_many_lines)]
#[allow(clippy::too_many_arguments)]
fn lower_inst(
    ctx: &mut Ctx<'_>,
    b: Blk,
    iid: InstId,
    kind: &InstKind,
    results: &[ValueId],
    fun_ids: &HashMap<FuncId, Fun>,
    stats: &mut LowerStats,
) -> Result<(), LowerError> {
    macro_rules! v {
        ($x:expr) => {
            ctx.val(b, $x)?
        };
    }
    match kind {
        InstKind::Bin { op, lhs, rhs } => {
            let (a, c) = (v!(*lhs), v!(*rhs));
            let r = emit_bin(ctx, b, *op, a, c);
            ctx.map.insert(results[0], r);
        }
        InstKind::Cmp { op, lhs, rhs } => {
            let (a, c) = (v!(*lhs), v!(*rhs));
            let lop = match op {
                CmpOp::Eq => LCmp::Eq,
                CmpOp::Ne => LCmp::Ne,
                CmpOp::Lt => LCmp::Lt,
                CmpOp::Le => LCmp::Le,
                CmpOp::Gt => LCmp::Gt,
                CmpOp::Ge => LCmp::Ge,
            };
            let r = ctx.lf.push1(b, Op::Cmp(lop, a, c));
            ctx.map.insert(results[0], r);
        }
        InstKind::Cast { to, value } => {
            let x = v!(*value);
            let r = match ctx.m.types.get(*to) {
                Type::I8 => truncate_signed(ctx, b, x, 56),
                Type::I16 => truncate_signed(ctx, b, x, 48),
                Type::I32 => truncate_signed(ctx, b, x, 32),
                Type::U8 => mask(ctx, b, x, 0xFF),
                Type::U16 => mask(ctx, b, x, 0xFFFF),
                Type::U32 => mask(ctx, b, x, 0xFFFF_FFFF),
                Type::Bool => {
                    let zero = ctx.lf.push1(b, Op::Const(0));
                    ctx.lf.push1(b, Op::Cmp(LCmp::Ne, x, zero))
                }
                t if t.is_float() => return Err(LowerError::FloatUnsupported(ctx.f.name.clone())),
                _ => x,
            };
            ctx.map.insert(results[0], r);
        }
        InstKind::Select {
            cond,
            then_value,
            else_value,
        } => {
            let (c, t, e) = (v!(*cond), v!(*then_value), v!(*else_value));
            let one = ctx.lf.push1(b, Op::Const(1));
            let not = ctx.lf.push1(b, Op::Bin(LBin::Xor, c, one));
            let pt = ctx.lf.push1(b, Op::Bin(LBin::Mul, c, t));
            let pe = ctx.lf.push1(b, Op::Bin(LBin::Mul, not, e));
            let r = ctx.lf.push1(b, Op::Bin(LBin::Add, pt, pe));
            ctx.map.insert(results[0], r);
        }
        InstKind::Phi { incoming } => {
            let r = ctx.lf.push1(b, Op::Phi(vec![]));
            let lir_idx = ctx.lf.insts.len() - 1;
            ctx.phi_patches.push((lir_idx, incoming.clone()));
            ctx.map.insert(results[0], r);
        }
        InstKind::Call { callee, args } => match callee {
            Callee::Func(t) => {
                let callee_f = &ctx.m.funcs[*t];
                let mut lowered_args = Vec::with_capacity(args.len());
                for (k, &a) in args.iter().enumerate() {
                    let mut la = v!(a);
                    // By-value collection arguments copy at the call site
                    // (MUT value semantics).
                    let p = &callee_f.params[k];
                    if !p.by_ref && ctx.m.types.get(p.ty).is_collection() {
                        la = if matches!(ctx.m.types.get(p.ty), Type::Seq(_)) {
                            ctx.rt(b, "rt_seq_copy", vec![la], true).unwrap()
                        } else {
                            ctx.rt(b, "rt_assoc_copy", vec![la], true).unwrap()
                        };
                    }
                    lowered_args.push(la);
                }
                let res = ctx.lf.push(
                    b,
                    Op::Call {
                        func: fun_ids[t],
                        args: lowered_args,
                    },
                    results.len(),
                );
                for (r, lr) in results.iter().zip(res) {
                    ctx.map.insert(*r, lr);
                }
            }
            Callee::Extern(e) => {
                let name = ctx.m.externs[*e].name.clone();
                let lowered_args: Vec<Val> = args
                    .iter()
                    .map(|&a| ctx.val(b, a))
                    .collect::<Result<_, _>>()?;
                let res = ctx.lf.push(
                    b,
                    Op::CallRt {
                        name,
                        args: lowered_args,
                        has_result: !results.is_empty(),
                    },
                    results.len(),
                );
                for (r, lr) in results.iter().zip(res) {
                    ctx.map.insert(*r, lr);
                }
            }
        },
        InstKind::Jump { target } => {
            let t = ctx.blk(*target);
            ctx.lf.push0(b, Op::Jmp(t));
        }
        InstKind::Branch {
            cond,
            then_target,
            else_target,
        } => {
            let c = v!(*cond);
            let (tb, eb) = (ctx.blk(*then_target), ctx.blk(*else_target));
            ctx.lf.push0(
                b,
                Op::Br {
                    cond: c,
                    then_b: tb,
                    else_b: eb,
                },
            );
        }
        InstKind::Ret { values } => {
            let vs: Vec<Val> = values
                .iter()
                .map(|&x| ctx.val(b, x))
                .collect::<Result<_, _>>()?;
            ctx.lf.push0(b, Op::Ret(vs));
        }
        InstKind::Unreachable => {
            // Lower as a trapping division by zero guard-free return.
            let z = ctx.lf.push1(b, Op::Const(0));
            let one = ctx.lf.push1(b, Op::Const(1));
            let t = ctx.lf.push1(b, Op::Bin(LBin::Div, one, z));
            ctx.lf.push0(b, Op::Ret(vec![t]));
        }

        InstKind::NewSeq { len, .. } => {
            // §VI heap/stack selection: a non-escaping sequence with a
            // constant length lives on the stack — header and data in one
            // alloca, no runtime allocation.
            let const_len = ctx
                .f
                .value_const(*len)
                .and_then(memoir_ir::Constant::as_int)
                .filter(|&c| (0..=4096).contains(&c));
            let stack = ctx.placements.get(&iid) == Some(&Placement::Stack);
            match (stack, const_len) {
                (true, Some(c)) => {
                    stats.stack_seqs += 1;
                    // The repr analysis independently proving Inline is
                    // a strict subset of this §VI stack path (const len,
                    // non-escaping, never resized) — count it so the
                    // adaptive report can attribute the placement.
                    if matches!(ctx.reprs.get(&iid), Some(Repr::Inline { .. })) {
                        stats.inline_seqs += 1;
                    }
                    let hdr = ctx.lf.push1(b, Op::Alloca(3 + c as u32));
                    let three = ctx.lf.push1(b, Op::Const(3));
                    let data = ctx.lf.push1(
                        b,
                        Op::Gep {
                            base: hdr,
                            offset: three,
                        },
                    );
                    ctx.lf.push0(
                        b,
                        Op::Store {
                            addr: hdr,
                            value: data,
                        },
                    );
                    let one = ctx.lf.push1(b, Op::Const(1));
                    let two = ctx.lf.push1(b, Op::Const(2));
                    let lenp = ctx.lf.push1(
                        b,
                        Op::Gep {
                            base: hdr,
                            offset: one,
                        },
                    );
                    let capp = ctx.lf.push1(
                        b,
                        Op::Gep {
                            base: hdr,
                            offset: two,
                        },
                    );
                    let n = ctx.lf.push1(b, Op::Const(c));
                    ctx.lf.push0(
                        b,
                        Op::Store {
                            addr: lenp,
                            value: n,
                        },
                    );
                    ctx.lf.push0(
                        b,
                        Op::Store {
                            addr: capp,
                            value: n,
                        },
                    );
                    ctx.map.insert(results[0], hdr);
                }
                _ => {
                    stats.heap_seqs += 1;
                    let n = v!(*len);
                    let h = ctx.rt(b, "rt_seq_new", vec![n], true).unwrap();
                    ctx.map.insert(results[0], h);
                }
            }
        }
        InstKind::NewAssoc { .. } => {
            // Adaptive selection (DESIGN §16): a bounded-key assoc
            // lowers to a dense direct-indexed map in linear memory; the
            // handle is non-negative, so `rt_assoc_*` dispatch on sign.
            let h = if let Some(Repr::Dense { cap }) = ctx.reprs.get(&iid) {
                stats.dense_assocs += 1;
                let n = ctx.lf.push1(b, Op::Const(*cap as i64));
                ctx.rt(b, "rt_dense_new", vec![n], true).unwrap()
            } else {
                ctx.rt(b, "rt_assoc_new", vec![], true).unwrap()
            };
            ctx.map.insert(results[0], h);
        }
        InstKind::NewObj { obj } => {
            let nfields = ctx.m.types.object(*obj).fields.len().max(1);
            let n = ctx.lf.push1(b, Op::Const(nfields as i64));
            let h = ctx.rt(b, "rt_obj_new", vec![n], true).unwrap();
            ctx.map.insert(results[0], h);
        }
        InstKind::DeleteObj { obj } => {
            let o = v!(*obj);
            ctx.rt(b, "rt_obj_delete", vec![o], false);
        }
        InstKind::Read { c, idx } => {
            let h = v!(*c);
            let i = v!(*idx);
            let r = if ctx.is_seq(*c) {
                let addr = ctx.seq_elem_addr(b, h, i);
                ctx.lf.push1(b, Op::Load(addr))
            } else {
                ctx.rt(b, "rt_assoc_read", vec![h, i], true).unwrap()
            };
            ctx.map.insert(results[0], r);
        }
        InstKind::MutWrite { c, idx, value } => {
            let h = v!(*c);
            let i = v!(*idx);
            let x = v!(*value);
            if ctx.is_seq(*c) {
                let addr = ctx.seq_elem_addr(b, h, i);
                ctx.lf.push0(b, Op::Store { addr, value: x });
            } else {
                ctx.rt(b, "rt_assoc_write", vec![h, i, x], false);
            }
        }
        InstKind::MutRmw { c, idx, op, value } => {
            let h = v!(*c);
            let i = v!(*idx);
            let x = v!(*value);
            if ctx.is_seq(*c) {
                // One address computation for both halves — the fusion
                // payoff the interpreter's cost model charges as a
                // single storage pass.
                let addr = ctx.seq_elem_addr(b, h, i);
                let old = ctx.lf.push1(b, Op::Load(addr));
                let combined = emit_bin(ctx, b, *op, old, x);
                ctx.lf.push0(
                    b,
                    Op::Store {
                        addr,
                        value: combined,
                    },
                );
            } else {
                let opc = ctx.lf.push1(b, Op::Const(rmw_opcode(*op)));
                ctx.rt(b, "rt_assoc_rmw", vec![h, i, opc, x], false);
            }
        }
        InstKind::MutInsert { c, idx, value } => {
            let h = v!(*c);
            let i = v!(*idx);
            let x = match value {
                Some(v) => v!(*v),
                None => ctx.lf.push1(b, Op::Const(0)),
            };
            if ctx.is_seq(*c) {
                ctx.rt(b, "rt_seq_insert", vec![h, i, x], false);
            } else {
                // Insertion-order audit (MEMOIR `keys` determinism):
                // `rt_assoc_write` must append the key to the enumeration
                // order only when absent (overwrite keeps the original
                // position), `rt_assoc_remove` must drop it from the
                // order, and `rt_assoc_keys` must enumerate the current
                // membership in that order — so a remove + reinsert moves
                // the key to the END of the `keys` sequence. This matches
                // `memoir-runtime::Assoc` and the `memoir-interp` store;
                // `LirMachine`'s host tables implement the same contract
                // (see `lir::interp` and the `assoc_remove_reinsert_*`
                // regression tests).
                ctx.rt(b, "rt_assoc_write", vec![h, i, x], false);
            }
        }
        InstKind::MutInsertSeq { c, idx, src } => {
            let (h, i, s) = (v!(*c), v!(*idx), v!(*src));
            ctx.rt(b, "rt_seq_splice", vec![h, i, s], false);
        }
        InstKind::MutAppend { c, src } => {
            let (h, s) = (v!(*c), v!(*src));
            let one = ctx.lf.push1(b, Op::Const(1));
            let lenp = ctx.lf.push1(
                b,
                Op::Gep {
                    base: h,
                    offset: one,
                },
            );
            let len = ctx.lf.push1(b, Op::Load(lenp));
            ctx.rt(b, "rt_seq_splice", vec![h, len, s], false);
        }
        InstKind::MutRemove { c, idx } => {
            let (h, i) = (v!(*c), v!(*idx));
            if ctx.is_seq(*c) {
                ctx.rt(b, "rt_seq_remove", vec![h, i], false);
            } else {
                ctx.rt(b, "rt_assoc_remove", vec![h, i], false);
            }
        }
        InstKind::MutRemoveRange { c, from, to } => {
            let (h, x, y) = (v!(*c), v!(*from), v!(*to));
            ctx.rt(b, "rt_seq_remove_range", vec![h, x, y], false);
        }
        InstKind::MutSwap { c, from, to, at } => {
            let (h, x, y, k) = (v!(*c), v!(*from), v!(*to), v!(*at));
            ctx.rt(b, "rt_seq_swap_range", vec![h, x, y, k], false);
        }
        InstKind::MutSwap2 {
            a,
            from,
            to,
            b: b2,
            at,
        } => {
            let (ha, x, y, hb, k) = (v!(*a), v!(*from), v!(*to), v!(*b2), v!(*at));
            ctx.rt(b, "rt_seq_swap2", vec![ha, x, y, hb, k], false);
        }
        InstKind::MutSplit { c, from, to } => {
            let (h, x, y) = (v!(*c), v!(*from), v!(*to));
            let out = ctx.rt(b, "rt_seq_copy_range", vec![h, x, y], true).unwrap();
            ctx.rt(b, "rt_seq_remove_range", vec![h, x, y], false);
            ctx.map.insert(results[0], out);
        }
        InstKind::Copy { c } => {
            let h = v!(*c);
            let out = if ctx.is_seq(*c) {
                ctx.rt(b, "rt_seq_copy", vec![h], true).unwrap()
            } else {
                ctx.rt(b, "rt_assoc_copy", vec![h], true).unwrap()
            };
            ctx.map.insert(results[0], out);
        }
        InstKind::CopyRange { c, from, to } => {
            let (h, x, y) = (v!(*c), v!(*from), v!(*to));
            let out = ctx.rt(b, "rt_seq_copy_range", vec![h, x, y], true).unwrap();
            ctx.map.insert(results[0], out);
        }
        InstKind::Size { c } => {
            let h = v!(*c);
            let r = if ctx.is_seq(*c) {
                let one = ctx.lf.push1(b, Op::Const(1));
                let lenp = ctx.lf.push1(
                    b,
                    Op::Gep {
                        base: h,
                        offset: one,
                    },
                );
                ctx.lf.push1(b, Op::Load(lenp))
            } else {
                ctx.rt(b, "rt_assoc_size", vec![h], true).unwrap()
            };
            ctx.map.insert(results[0], r);
        }
        InstKind::Has { c, key } => {
            let (h, k) = (v!(*c), v!(*key));
            let r = ctx.rt(b, "rt_assoc_has", vec![h, k], true).unwrap();
            ctx.map.insert(results[0], r);
        }
        InstKind::Keys { c } => {
            let h = v!(*c);
            let r = ctx.rt(b, "rt_assoc_keys", vec![h], true).unwrap();
            ctx.map.insert(results[0], r);
        }
        InstKind::FieldRead { obj, field, .. } => {
            let o = v!(*obj);
            let off = ctx.lf.push1(b, Op::Const(*field as i64));
            let addr = ctx.lf.push1(
                b,
                Op::Gep {
                    base: o,
                    offset: off,
                },
            );
            let r = ctx.lf.push1(b, Op::Load(addr));
            ctx.map.insert(results[0], r);
        }
        InstKind::FieldWrite {
            obj, field, value, ..
        } => {
            let o = v!(*obj);
            let x = v!(*value);
            let off = ctx.lf.push1(b, Op::Const(*field as i64));
            let addr = ctx.lf.push1(
                b,
                Op::Gep {
                    base: o,
                    offset: off,
                },
            );
            ctx.lf.push0(b, Op::Store { addr, value: x });
        }
        // SSA collection ops never appear in mut form (verified upstream).
        other => {
            debug_assert!(
                !other.is_ssa_collection_op() && !matches!(other, InstKind::UsePhi { .. }),
                "SSA op {other:?} in mut form"
            );
        }
    }
    Ok(())
}

/// Emits a scalar binary op (the `InstKind::Bin` lowering, also reused
/// by the sequence `mut.rmw` combine step).
fn emit_bin(ctx: &mut Ctx<'_>, b: Blk, op: BinOp, a: Val, c: Val) -> Val {
    match op {
        BinOp::Add => ctx.lf.push1(b, Op::Bin(LBin::Add, a, c)),
        BinOp::Sub => ctx.lf.push1(b, Op::Bin(LBin::Sub, a, c)),
        BinOp::Mul => ctx.lf.push1(b, Op::Bin(LBin::Mul, a, c)),
        BinOp::Div => ctx.lf.push1(b, Op::Bin(LBin::Div, a, c)),
        BinOp::Rem => ctx.lf.push1(b, Op::Bin(LBin::Rem, a, c)),
        BinOp::And => ctx.lf.push1(b, Op::Bin(LBin::And, a, c)),
        BinOp::Or => ctx.lf.push1(b, Op::Bin(LBin::Or, a, c)),
        BinOp::Xor => ctx.lf.push1(b, Op::Bin(LBin::Xor, a, c)),
        BinOp::Shl => ctx.lf.push1(b, Op::Bin(LBin::Shl, a, c)),
        BinOp::Shr => ctx.lf.push1(b, Op::Bin(LBin::Shr, a, c)),
        BinOp::Min => {
            // min(a, c) = a < c ? a : c — lowered with a select-free
            // arithmetic trick: via compare and branchless blend is
            // overkill; use cmp + mul.
            let lt = ctx.lf.push1(b, Op::Cmp(LCmp::Lt, a, c));
            let one = ctx.lf.push1(b, Op::Const(1));
            let not = ctx.lf.push1(b, Op::Bin(LBin::Xor, lt, one));
            let pa = ctx.lf.push1(b, Op::Bin(LBin::Mul, lt, a));
            let pc = ctx.lf.push1(b, Op::Bin(LBin::Mul, not, c));
            ctx.lf.push1(b, Op::Bin(LBin::Add, pa, pc))
        }
        BinOp::Max => {
            let gt = ctx.lf.push1(b, Op::Cmp(LCmp::Gt, a, c));
            let one = ctx.lf.push1(b, Op::Const(1));
            let not = ctx.lf.push1(b, Op::Bin(LBin::Xor, gt, one));
            let pa = ctx.lf.push1(b, Op::Bin(LBin::Mul, gt, a));
            let pc = ctx.lf.push1(b, Op::Bin(LBin::Mul, not, c));
            ctx.lf.push1(b, Op::Bin(LBin::Add, pa, pc))
        }
    }
}

/// The integer opcode for `rt_assoc_rmw` — decoded by `apply_rmw` in
/// `lir::interp` (the two tables must stay in sync).
fn rmw_opcode(op: BinOp) -> i64 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Min => 10,
        BinOp::Max => 11,
    }
}

fn truncate_signed(ctx: &mut Ctx<'_>, b: Blk, x: Val, shift: i64) -> Val {
    let s = ctx.lf.push1(b, Op::Const(shift));
    let l = ctx.lf.push1(b, Op::Bin(LBin::Shl, x, s));
    ctx.lf.push1(b, Op::Bin(LBin::Shr, l, s))
}

fn mask(ctx: &mut Ctx<'_>, b: Blk, x: Val, m: i64) -> Val {
    let k = ctx.lf.push1(b, Op::Const(m));
    ctx.lf.push1(b, Op::Bin(LBin::And, x, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::LirMachine;
    use memoir_interp::{Interp, Value};
    use memoir_ir::ModuleBuilder;

    /// Differential: the same mut-form program computes the same result in
    /// the MEMOIR interpreter and after lowering to LIR.
    #[test]
    fn lowering_preserves_semantics() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |bb| {
            let i64t = bb.ty(Type::I64);
            let idxt = bb.ty(Type::Index);
            let count = bb.param("count", idxt);
            let zero = bb.index(0);
            let s = bb.new_seq(i64t, zero);
            let header = bb.block("header");
            let body = bb.block("body");
            let exit = bb.block("exit");
            let one = bb.index(1);
            bb.jump(header);
            bb.switch_to(header);
            let i = bb.phi_placeholder(idxt);
            let entry = bb.func.entry;
            bb.add_phi_incoming(i, entry, zero);
            let done = bb.cmp(CmpOp::Ge, i, count);
            bb.branch(done, exit, body);
            bb.switch_to(body);
            let iv = bb.cast(Type::I64, i);
            let sz = bb.size(s);
            bb.mut_insert(s, sz, Some(iv));
            let next = bb.add(i, one);
            let cur = bb.current_block();
            bb.add_phi_incoming(i, cur, next);
            bb.jump(header);
            bb.switch_to(exit);
            // Sum elements.
            let h2 = bb.block("h2");
            let b2 = bb.block("b2");
            let e2 = bb.block("e2");
            let zero64 = bb.i64(0);
            bb.jump(h2);
            bb.switch_to(h2);
            let j = bb.phi_placeholder(idxt);
            let acc = bb.phi_placeholder(i64t);
            bb.add_phi_incoming(j, exit, zero);
            bb.add_phi_incoming(acc, exit, zero64);
            let sz2 = bb.size(s);
            let done2 = bb.cmp(CmpOp::Ge, j, sz2);
            bb.branch(done2, e2, b2);
            bb.switch_to(b2);
            let x = bb.read(s, j);
            let acc2 = bb.add(acc, x);
            let jn = bb.add(j, one);
            let cur2 = bb.current_block();
            bb.add_phi_incoming(j, cur2, jn);
            bb.add_phi_incoming(acc, cur2, acc2);
            bb.jump(h2);
            bb.switch_to(e2);
            bb.returns(&[i64t]);
            bb.ret(vec![acc]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let lm = lower_module(&m).unwrap();
        for count in [0i64, 1, 5, 13] {
            let want = {
                let mut i = Interp::new(&m);
                i.run_by_name("main", vec![Value::Int(Type::Index, count)])
                    .unwrap()
            };
            let got = {
                let mut vm = LirMachine::new(&lm);
                vm.run_by_name("main", vec![count]).unwrap()
            };
            let want_i: Vec<i64> = want.iter().map(|v| v.as_int().unwrap()).collect();
            assert_eq!(want_i, got, "count={count}");
        }
    }

    /// Associative operations lower to opaque runtime calls.
    #[test]
    fn assoc_lowering_is_opaque_calls() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |bb| {
            let i64t = bb.ty(Type::I64);
            let a = bb.new_assoc(i64t, i64t);
            let k0 = bb.i64(0);
            let k1 = bb.i64(1);
            let ten = bb.i64(10);
            let eleven = bb.i64(11);
            bb.mut_write(a, k0, ten);
            bb.mut_write(a, k1, eleven);
            let r = bb.read(a, k0);
            bb.returns(&[i64t]);
            bb.ret(vec![r]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        let rt_calls = lm.funcs[0]
            .order()
            .iter()
            .filter(|(_, i)| matches!(lm.funcs[0].insts[i.0 as usize].op, Op::CallRt { .. }))
            .count();
        assert_eq!(rt_calls, 4, "new + 2 writes + read are all opaque");
        let mut vm = LirMachine::new(&lm);
        assert_eq!(vm.run_by_name("main", vec![]).unwrap(), vec![10]);
    }

    /// By-value collection args copy at the call site; by-ref args alias.
    #[test]
    fn call_value_semantics_preserved() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let byval = mb.func("byval", Form::Mut, |bb| {
            let s = bb.param("s", seqt);
            let zero = bb.index(0);
            let v = bb.i64(99);
            bb.mut_write(s, zero, v);
            bb.ret(vec![]);
        });
        let byref = mb.func("byref", Form::Mut, |bb| {
            let s = bb.param_ref("s", seqt);
            let zero = bb.index(0);
            let v = bb.i64(77);
            bb.mut_write(s, zero, v);
            bb.ret(vec![]);
        });
        mb.func("main", Form::Mut, |bb| {
            let n = bb.index(1);
            let s = bb.new_seq(i64t, n);
            let zero = bb.index(0);
            let v = bb.i64(1);
            bb.mut_write(s, zero, v);
            bb.call(Callee::Func(byval), vec![s], &[]);
            let a = bb.read(s, zero); // still 1
            bb.call(Callee::Func(byref), vec![s], &[]);
            let c = bb.read(s, zero); // 77
            let sum = bb.add(a, c);
            bb.returns(&[i64t]);
            bb.ret(vec![sum]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        let mut vm = LirMachine::new(&lm);
        assert_eq!(vm.run_by_name("main", vec![]).unwrap(), vec![78]);
    }

    /// §VI heap/stack selection: a non-escaping constant-length sequence
    /// lowers to a single `alloca` (no runtime allocation); an escaping
    /// one stays on the heap.
    #[test]
    fn stack_placement_for_local_sequences() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        mb.func("main", Form::Mut, |bb| {
            // Local scratch: stack-eligible.
            let n = bb.index(4);
            let scratch = bb.new_seq(i64t, n);
            let zero = bb.index(0);
            let v = bb.i64(9);
            bb.mut_write(scratch, zero, v);
            let r = bb.read(scratch, zero);
            // Escaping: returned, stays heap.
            let out = bb.new_seq(i64t, n);
            bb.mut_write(out, zero, r);
            bb.returns(&[seqt]);
            bb.ret(vec![out]);
        });
        let m = mb.finish();
        let (lm, stats) = lower_module_with_stats(&m).unwrap();
        assert_eq!(stats.stack_seqs, 1);
        assert_eq!(stats.heap_seqs, 1);
        let f = &lm.funcs[0];
        let allocas = f
            .order()
            .iter()
            .filter(|(_, i)| matches!(f.insts[i.0 as usize].op, Op::Alloca(_)))
            .count();
        assert_eq!(allocas, 1);
        // And it still runs: read back through the stack storage.
        let mut vm = LirMachine::new(&lm);
        let hdr = vm.run_by_name("main", vec![]).unwrap()[0];
        let data = vm.mem[hdr as usize];
        assert_eq!(vm.mem[data as usize], 9);
    }

    /// Stack-placed sequences may still grow: the helpers reallocate the
    /// data while the header stays on the stack.
    #[test]
    fn stack_sequence_can_grow() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        mb.func("main", Form::Mut, |bb| {
            let n = bb.index(1);
            let s = bb.new_seq(i64t, n);
            let zero = bb.index(0);
            let v0 = bb.i64(1);
            bb.mut_write(s, zero, v0);
            for k in 0..5 {
                let sz = bb.size(s);
                let vk = bb.i64(10 + k);
                bb.mut_insert(s, sz, Some(vk));
            }
            let five = bb.index(5);
            let last = bb.read(s, five);
            let szf = bb.size(s);
            let szi = bb.cast(Type::I64, szf);
            let sum = bb.add(last, szi);
            bb.returns(&[i64t]);
            bb.ret(vec![sum]);
        });
        let m = mb.finish();
        let (lm, stats) = lower_module_with_stats(&m).unwrap();
        assert_eq!(stats.stack_seqs, 1, "{stats:?}");
        let mut vm = LirMachine::new(&lm);
        assert_eq!(vm.run_by_name("main", vec![]).unwrap(), vec![14 + 6]);
    }

    /// Object fields lower to gep+load/store.
    #[test]
    fn field_access_lowering() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t",
                vec![
                    memoir_ir::Field {
                        name: "a".into(),
                        ty: i64t,
                    },
                    memoir_ir::Field {
                        name: "b".into(),
                        ty: i64t,
                    },
                ],
            )
            .unwrap();
        mb.func("main", Form::Mut, |bb| {
            let o = bb.new_obj(obj);
            let x = bb.i64(3);
            let y = bb.i64(4);
            bb.field_write(o, obj, 0, x);
            bb.field_write(o, obj, 1, y);
            let a = bb.field_read(o, obj, 0);
            let c = bb.field_read(o, obj, 1);
            let sum = bb.add(a, c);
            bb.returns(&[i64t]);
            bb.ret(vec![sum]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        let f = &lm.funcs[0];
        let loads = f
            .order()
            .iter()
            .filter(|(_, i)| matches!(f.insts[i.0 as usize].op, Op::Load(_)))
            .count();
        let stores = f
            .order()
            .iter()
            .filter(|(_, i)| matches!(f.insts[i.0 as usize].op, Op::Store { .. }))
            .count();
        assert_eq!(loads, 2);
        assert_eq!(stores, 2);
        let mut vm = LirMachine::new(&lm);
        assert_eq!(vm.run_by_name("main", vec![]).unwrap(), vec![7]);
    }

    /// The insertion-order contract audited at the `rt_assoc_*` lowering
    /// sites: `rt_assoc_write` appends the key to the enumeration order
    /// only when absent, `rt_assoc_remove` drops it — so a remove +
    /// reinsert moves the key to the **end** of `keys`. The MEMOIR
    /// interpreter and the lowered machine must agree on the exact
    /// order, not just the membership.
    #[test]
    fn assoc_remove_reinsert_moves_key_to_end() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let a = b.new_assoc(i64t, i64t);
            let k1 = b.i64(1);
            let k2 = b.i64(2);
            let v10 = b.i64(10);
            let v20 = b.i64(20);
            let v30 = b.i64(30);
            b.mut_insert(a, k1, Some(v10));
            b.mut_insert(a, k2, Some(v20));
            b.mut_remove(a, k1);
            b.mut_insert(a, k1, Some(v30)); // reinsert: now LAST in order
            let ks = b.keys(a);
            let zero = b.index(0);
            let one = b.index(1);
            let first = b.read(ks, zero);
            let second = b.read(ks, one);
            let val = b.read(a, k1);
            b.returns(&[i64t, i64t, i64t]);
            b.ret(vec![first, second, val]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let mut vm = Interp::new(&m);
        let r = vm.run_by_name("main", vec![]).unwrap();
        let want = [2i64, 1, 30];
        for (got, w) in r.iter().zip(want) {
            assert_eq!(got, &Value::Int(Type::I64, w), "interp order");
        }
        let lm = lower_module(&m).unwrap();
        let mut vm = LirMachine::new(&lm);
        assert_eq!(
            vm.run_by_name("main", vec![]).unwrap(),
            vec![2, 1, 30],
            "lowered order"
        );
    }

    /// A module still in SSA form is a structured [`LowerError`], never a
    /// panic: callers are expected to run `ssa-destruct` first, and the
    /// error names the offending function.
    #[test]
    fn ssa_form_is_rejected_with_context() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("still_ssa", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let one = b.i64(1);
            b.returns(&[i64t]);
            b.ret(vec![one]);
        });
        let m = mb.finish();
        let err = lower_module(&m).unwrap_err();
        assert_eq!(err, LowerError::NotMutForm("still_ssa".into()));
        assert!(err.to_string().contains("still_ssa"), "{err}");
    }

    /// Float parameters cannot be represented in the word-sized LIR and
    /// must surface as [`LowerError::FloatUnsupported`].
    #[test]
    fn float_param_is_rejected_with_context() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("floaty", Form::Mut, |b| {
            let f64t = b.ty(Type::F64);
            let x = b.param("x", f64t);
            b.returns(&[f64t]);
            b.ret(vec![x]);
        });
        let m = mb.finish();
        let err = lower_module(&m).unwrap_err();
        assert_eq!(err, LowerError::FloatUnsupported("floaty".into()));
        assert!(err.to_string().contains("floaty"), "{err}");
    }

    /// Regression for the φ-incoming path: a float constant feeding a φ
    /// used to lower silently to 0 through the patch loop; it must error
    /// exactly like the straight-line constant path does.
    #[test]
    fn float_phi_incoming_is_rejected_with_context() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("phif", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let f64t = b.ty(Type::F64);
            let x = b.param("x", i64t);
            let yes = b.block("yes");
            let no = b.block("no");
            let join = b.block("join");
            let zero = b.i64(0);
            let c = b.cmp(CmpOp::Gt, x, zero);
            b.branch(c, yes, no);
            b.switch_to(yes);
            b.jump(join);
            b.switch_to(no);
            b.jump(join);
            b.switch_to(join);
            let a = b.f64(1.5);
            let bv = b.f64(2.5);
            let p = b.phi(f64t, vec![(yes, a), (no, bv)]);
            b.returns(&[f64t]);
            b.ret(vec![p]);
        });
        let m = mb.finish();
        let err = lower_module(&m).unwrap_err();
        assert_eq!(err, LowerError::FloatUnsupported("phif".into()));
    }

    /// `mut.rmw` lowers to a single address computation on sequences
    /// (load + combine + store through one gep) and to `rt_assoc_rmw` on
    /// associative arrays; both agree with the MEMOIR interpreter.
    #[test]
    fn mut_rmw_lowering_matches_interp() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |bb| {
            let i64t = bb.ty(Type::I64);
            let four = bb.index(4);
            let s = bb.new_seq(i64t, four);
            let zero = bb.index(0);
            let ten = bb.i64(10);
            bb.mut_write(s, zero, ten);
            let seven = bb.i64(7);
            bb.mut_rmw(s, zero, BinOp::Add, seven); // s[0] = 17
            let a = bb.new_assoc(i64t, i64t);
            let k = bb.param("k", i64t); // unbounded key: stays hashtable
            let forty = bb.i64(40);
            bb.mut_write(a, k, forty);
            bb.mut_rmw(a, k, BinOp::Max, ten); // a[k] = max(40, 10)
            let x = bb.read(s, zero);
            let y = bb.read(a, k);
            let sum = bb.add(x, y);
            bb.returns(&[i64t]);
            bb.ret(vec![sum]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let want = {
            let mut i = Interp::new(&m);
            i.run_by_name("main", vec![Value::Int(Type::I64, 3)])
                .unwrap()[0]
                .as_int()
                .unwrap()
        };
        assert_eq!(want, 57);
        for adaptive in [false, true] {
            let run = lower_module_opts(
                &m,
                &LowerOptions {
                    adaptive,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut vm = LirMachine::new(&run.module);
            assert_eq!(
                vm.run_by_name("main", vec![3]).unwrap(),
                vec![want],
                "adaptive={adaptive}"
            );
        }
    }

    /// Adaptive selection lowers a bounded-key assoc to `rt_dense_new`;
    /// the result is byte-for-byte the same program output as the
    /// hashtable layout, and the stats report the choice.
    #[test]
    fn adaptive_dense_assoc_lowering_matches_default() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |bb| {
            let i64t = bb.ty(Type::I64);
            let a = bb.new_assoc(i64t, i64t);
            let h = bb.param("h", i64t);
            let mask = bb.i64(15);
            let k = bb.bin(BinOp::And, h, mask);
            let one = bb.i64(1);
            bb.mut_insert(a, k, Some(one));
            bb.mut_rmw(a, k, BinOp::Add, one);
            let other = bb.i64(3);
            let present = bb.has(a, other);
            let sz = bb.size(a);
            let szi = bb.cast(Type::I64, sz);
            let v = bb.read(a, k);
            let t = bb.add(v, szi);
            let pi = bb.cast(Type::I64, present);
            let sum = bb.add(t, pi);
            bb.returns(&[i64t]);
            bb.ret(vec![sum]);
        });
        let m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let base = lower_module_opts(&m, &LowerOptions::default()).unwrap();
        assert_eq!(base.stats.dense_assocs, 0);
        let adap = lower_module_opts(
            &m,
            &LowerOptions {
                adaptive: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(adap.stats.dense_assocs, 1, "{:?}", adap.stats);
        for hash in [0i64, 3, 16, 100, -5] {
            let a = LirMachine::new(&base.module)
                .run_by_name("main", vec![hash])
                .unwrap();
            let b = LirMachine::new(&adap.module)
                .run_by_name("main", vec![hash])
                .unwrap();
            assert_eq!(a, b, "hash={hash}");
        }
    }

    /// Sharded lowering is byte-identical to serial for every thread
    /// count, and a warm cache serves every function while leaving the
    /// output and the summed stats unchanged.
    #[test]
    fn sharded_and_cached_lowering_match_serial() {
        let mut mb = ModuleBuilder::new("m");
        for k in 0..5i64 {
            mb.func(&format!("f{k}"), Form::Mut, |bb| {
                let i64t = bb.ty(Type::I64);
                let four = bb.index(4);
                let s = bb.new_seq(i64t, four);
                let zero = bb.index(0);
                let x = bb.i64(10 + k);
                bb.mut_write(s, zero, x);
                let r = bb.read(s, zero);
                bb.returns(&[i64t]);
                bb.ret(vec![r]);
            });
        }
        let m = mb.finish();
        let serial = format!("{:?}", lower_module(&m).unwrap());
        for threads in [2, 4, 8] {
            let run = lower_module_opts(
                &m,
                &LowerOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(format!("{:?}", run.module), serial, "threads={threads}");
        }
        let opts = LowerOptions {
            threads: 4,
            cache: Some(passman::CompileCache::new()),
            ..Default::default()
        };
        let cold = lower_module_opts(&m, &opts).unwrap();
        assert_eq!((cold.cache.hits, cold.cache.misses), (0, 5));
        let warm = lower_module_opts(&m, &opts).unwrap();
        assert_eq!((warm.cache.hits, warm.cache.misses), (5, 0));
        assert_eq!(format!("{:?}", warm.module), serial);
        assert_eq!(warm.stats, cold.stats);
    }
}
