//! Heap/stack selection (paper §VI, Collection Lowering): a `new` operator
//! whose collection is dead at every exit of its containing function is
//! stack-allocated; everything else goes to the heap. The decision comes
//! from `memoir-analysis::escape`; this module reports it per module (the
//! actual low-level IR uses a bump allocator either way, so the decision
//! is observable as a report and in the `alloca`-vs-`malloc` choice of
//! future backends).

use memoir_analysis::{EscapeAnalysis, Placement};
use memoir_ir::Module;

/// Module-wide placement summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlacementReport {
    /// Allocation sites eligible for the stack.
    pub stack_sites: usize,
    /// Allocation sites requiring the heap.
    pub heap_sites: usize,
}

/// Computes the heap/stack placement of every allocation site.
pub fn placement_report(m: &Module) -> PlacementReport {
    let mut report = PlacementReport::default();
    for (_, f) in m.funcs.iter() {
        let esc = EscapeAnalysis::compute(m, f);
        for p in esc.placements.values() {
            match p {
                Placement::Stack => report.stack_sites += 1,
                Placement::Heap => report.heap_sites += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn report_counts_both_kinds() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let n = b.index(4);
            let local = b.new_seq(i64t, n); // stack
            let escaping = b.new_seq(i64t, n); // heap (returned)
            let zero = b.index(0);
            let v = b.i64(1);
            b.mut_write(local, zero, v);
            b.returns(&[seqt]);
            b.ret(vec![escaping]);
        });
        let m = mb.finish();
        let r = placement_report(&m);
        assert_eq!(r.stack_sites, 1);
        assert_eq!(r.heap_sites, 1);
    }
}
