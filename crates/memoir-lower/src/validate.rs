//! Cross-IR translation validation: interpreter agreement between the
//! MEMOIR module and its lowered low-level form on generated probe
//! inputs.
//!
//! This is the dynamic analogue of translation validation (cf. *Verifying
//! Peephole Rewriting In SSA Compiler IRs*): instead of proving the
//! lowering correct once, every lowered module is checked against its
//! source on a small battery of concrete inputs. For each function whose
//! signature is scalar (integer/bool/index parameters and results — no
//! collections, references, floats, or pointers), the probe runs
//! `memoir-interp` on the MEMOIR function and [`lir::LirMachine`] on the
//! lowered function with the same arguments and requires identical
//! results. Functions with non-scalar signatures are skipped (their
//! handles are not comparable across IRs); probes where the MEMOIR
//! interpreter itself traps (e.g. out-of-bounds on that input) are
//! skipped conservatively.

use lir::{LirMachine, Module as LModule};
use memoir_interp::{Interp, Value};
use memoir_ir::{Module, Type};

/// Default probe seeds: each seed `p` probes a function with arguments
/// `p + i` for parameter `i` (clamped to the parameter type's domain).
pub const DEFAULT_PROBES: &[i64] = &[0, 1, 3];

/// Interpreter fuel per probe execution, on either side.
pub const PROBE_FUEL: u64 = 10_000_000;

/// What a [`cross_validate`] run covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossCheckReport {
    /// Functions with probe-able (all-scalar) signatures.
    pub functions_checked: usize,
    /// Probe executions compared on both interpreters.
    pub probes_compared: usize,
    /// Probe executions skipped because the MEMOIR interpreter trapped.
    pub probes_skipped: usize,
}

/// Whether a function signature type can be probed with a plain integer.
fn probe_scalar(ty: Type) -> bool {
    matches!(
        ty,
        Type::I64
            | Type::I32
            | Type::I16
            | Type::I8
            | Type::U64
            | Type::U32
            | Type::U16
            | Type::U8
            | Type::Bool
            | Type::Index
    )
}

/// Clamps a raw probe value into the domain of a parameter type and
/// builds the MEMOIR interpreter value for it.
fn probe_value(ty: Type, raw: i64) -> (Value, i64) {
    match ty {
        Type::Bool => {
            let b = raw & 1 != 0;
            (Value::Bool(b), b as i64)
        }
        Type::Index | Type::U64 | Type::U32 | Type::U16 | Type::U8 => {
            let v = raw.abs();
            (Value::Int(ty, v), v)
        }
        _ => (Value::Int(ty, raw), raw),
    }
}

/// Checks interpreter agreement between `m` and its lowered form `lm` on
/// the given probe seeds; returns coverage counters, or a description of
/// the first divergence found.
pub fn cross_validate(
    m: &Module,
    lm: &LModule,
    probes: &[i64],
) -> Result<CrossCheckReport, String> {
    let mut report = CrossCheckReport::default();
    for (_, f) in m.funcs.iter() {
        let sig_ok = f
            .params
            .iter()
            .map(|p| m.types.get(p.ty))
            .chain(f.ret_tys.iter().map(|&t| m.types.get(t)))
            .all(probe_scalar);
        if !sig_ok {
            continue;
        }
        if lm.by_name(&f.name).is_none() {
            return Err(format!(
                "function `{}` is missing from the lowered module",
                f.name
            ));
        }
        report.functions_checked += 1;
        for &seed in probes {
            let mut memoir_args = Vec::with_capacity(f.params.len());
            let mut lir_args = Vec::with_capacity(f.params.len());
            for (i, p) in f.params.iter().enumerate() {
                let (v, raw) = probe_value(m.types.get(p.ty), seed + i as i64);
                memoir_args.push(v);
                lir_args.push(raw);
            }
            let memoir_result = Interp::new(m)
                .with_fuel(PROBE_FUEL)
                .run_by_name(&f.name, memoir_args);
            let expected: Vec<i64> = match memoir_result {
                // The source program traps on this input (or runs out of
                // probe fuel): no agreement obligation.
                Err(_) => {
                    report.probes_skipped += 1;
                    continue;
                }
                Ok(vals) => match vals.iter().map(Value::as_int).collect() {
                    Some(ints) => ints,
                    None => {
                        report.probes_skipped += 1;
                        continue;
                    }
                },
            };
            let got = LirMachine::new(lm)
                .with_fuel(PROBE_FUEL)
                .run_by_name(&f.name, lir_args.clone());
            match got {
                Err(trap) => {
                    return Err(format!(
                        "`{}`({:?}): memoir-interp returned {:?} but LirMachine trapped: {:?}",
                        f.name, lir_args, expected, trap
                    ));
                }
                Ok(got) if got != expected => {
                    return Err(format!(
                        "`{}`({:?}): memoir-interp returned {:?} but LirMachine returned {:?}",
                        f.name, lir_args, expected, got
                    ));
                }
                Ok(_) => report.probes_compared += 1,
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use memoir_ir::{BinOp, Form, ModuleBuilder, Type};

    fn scalar_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("addmul", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let y = b.param("y", i64t);
            let s = b.bin(BinOp::Add, x, y);
            let r = b.bin(BinOp::Mul, s, s);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        mb.finish()
    }

    #[test]
    fn agreement_on_scalar_function() {
        let m = scalar_module();
        let lm = lower_module(&m).unwrap();
        let rep = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap();
        assert_eq!(rep.functions_checked, 1);
        assert_eq!(rep.probes_compared, DEFAULT_PROBES.len());
        assert_eq!(rep.probes_skipped, 0);
    }

    #[test]
    fn divergence_is_reported() {
        let m = scalar_module();
        let mut lm = lower_module(&m).unwrap();
        // Sabotage the lowered function: drop the final multiply by
        // rewiring the return to the sum.
        let fun = lm.by_name("addmul").unwrap();
        let f = &mut lm.funcs[fun.0 as usize];
        let entry = f.entry;
        let last = *f.blocks[entry.0 as usize].insts.last().unwrap();
        let p0 = f.param(0);
        if let lir::Op::Ret(vals) = &mut f.insts[last.0 as usize].op {
            vals[0] = p0;
        } else {
            panic!("expected ret terminator");
        }
        let err = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap_err();
        assert!(err.contains("addmul"), "{err}");
        assert!(err.contains("LirMachine returned"), "{err}");
    }

    #[test]
    fn collection_signatures_are_skipped() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("seqy", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s = b.param("s", seqt);
            let n = b.size(s);
            b.returns(&[i64t]);
            b.ret(vec![n]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        let rep = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap();
        assert_eq!(rep.functions_checked, 0);
        assert_eq!(rep.probes_compared, 0);
    }
}
