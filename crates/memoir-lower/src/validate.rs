//! Cross-IR translation validation: prove-then-probe agreement between
//! the MEMOIR module and its lowered low-level form.
//!
//! This is translation validation (cf. *Verifying Peephole Rewriting In
//! SSA Compiler IRs*) in two tiers:
//!
//! 1. **Prove.** When a function's signature is scalar and its path/op
//!    counts fit the symbolic [`Budget`], the `symexec` oracle
//!    enumerates both sides' path sets over a shared term pool and
//!    discharges the function *probe-free* ([`symexec::prove_lowering`]).
//!    A symbolic divergence is only reported after its witness
//!    reproduces on the concrete interpreters, so proving never
//!    produces a false alarm.
//! 2. **Probe.** Functions the oracle cannot settle (budget exceeded,
//!    unsupported constructs, collection parameters) fall back to the
//!    dynamic check: argument vectors are *synthesized from the
//!    parameter types* ([`synth_args`]) — a seeded, deterministic draw
//!    from per-type value domains (boundary values plus small randoms,
//!    clamped to the type's width). The same synthesis is shared with
//!    the fuzz harness in `crates/reduce`, which uses it to probe
//!    individual functions before and after optimization — so the
//!    agreement probe and the fuzz oracle can't drift apart.
//!
//! For the cross-IR comparison only functions whose signature is scalar
//! (integer/bool/index parameters and results — no collections,
//! references, floats, or pointers) are checked: collection handles are
//! not comparable across IRs. The probe runs `memoir-interp` on the
//! MEMOIR function and [`lir::LirMachine`] on the lowered function with
//! the same arguments and requires identical results. Probes where the
//! MEMOIR interpreter itself traps (e.g. out-of-bounds on that input)
//! are skipped conservatively — and skipping is *accounted*: functions
//! that end up with neither a proof nor a single compared probe are
//! reported in [`CrossCheckReport::functions_skipped`], and a run that
//! covers nothing at all can be made a hard error
//! ([`ValidateOptions::require_coverage`]).

use lir::{LirMachine, Module as LModule};
use memoir_interp::{Collection, Interp, Key, Value};
use memoir_ir::{Module, ObjTypeId, Type, TypeId, TypeTable};
pub use symexec::Budget;

/// Default probe seeds: each seed synthesizes one typed argument vector
/// per probed function via [`synth_args`] (mixed with the function's
/// index, so different functions see different vectors).
pub const DEFAULT_PROBES: &[u64] = &[0, 1, 3];

/// Interpreter fuel per probe execution, on either side.
pub const PROBE_FUEL: u64 = 10_000_000;

/// What a [`cross_validate`] run covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrossCheckReport {
    /// Functions with checkable (all-scalar) signatures.
    pub functions_checked: usize,
    /// Functions discharged probe-free by the symbolic oracle.
    pub functions_proved: usize,
    /// Functions that fell back to probing and compared at least one
    /// probe.
    pub functions_probed: usize,
    /// Checkable functions that ended with *no* evidence at all: not
    /// proved, and zero probes compared (unsynthesizable parameters, or
    /// every probe trapped on the source side).
    pub functions_skipped: usize,
    /// Probe executions compared on both interpreters.
    pub probes_compared: usize,
    /// Probe executions skipped because the MEMOIR interpreter trapped.
    pub probes_skipped: usize,
}

/// Why cross-validation failed. Every variant is a *definite* problem:
/// inconclusive symbolic runs fall back to probing instead of erroring,
/// and probes the source traps on are skipped (and counted), not failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A scalar-signature source function has no counterpart in the
    /// lowered module.
    MissingFunction {
        /// The source function's name.
        function: String,
    },
    /// The two sides disagree on a concrete input — found by a probe, or
    /// by the symbolic oracle and then *confirmed* on both interpreters.
    Divergence {
        /// The diverging function's name.
        function: String,
        /// The argument vector that exhibits the disagreement.
        args: Vec<i64>,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// An associative probe argument used a non-scalar key, which has no
    /// well-defined interpreter materialization.
    NonScalarKey,
    /// The run was required to cover something
    /// ([`ValidateOptions::require_coverage`]) but proved and probed
    /// zero functions.
    NoCoverage,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::MissingFunction { function } => {
                write!(
                    f,
                    "function `{function}` is missing from the lowered module"
                )
            }
            ValidateError::Divergence {
                function,
                args,
                detail,
            } => write!(
                f,
                "`{function}`({args:?}): {detail} \
                 (see docs/REPRO_FORMAT.md for replaying fuzz artifacts)"
            ),
            ValidateError::NonScalarKey => {
                write!(f, "associative probe argument has a non-scalar key")
            }
            ValidateError::NoCoverage => {
                write!(
                    f,
                    "cross-check proved and probed zero functions (no coverage)"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Tuning for [`cross_validate_opts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidateOptions {
    /// Symbolic budget for the prove tier; `None` disables proving and
    /// every checkable function is probed.
    pub prove: Option<Budget>,
    /// Fail with [`ValidateError::NoCoverage`] when the run proves and
    /// probes zero functions (check-style runs should not silently pass
    /// on vacuous coverage).
    pub require_coverage: bool,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            prove: Some(Budget::default()),
            require_coverage: false,
        }
    }
}

/// A synthesized argument value, described independently of any
/// interpreter heap. Scalars carry their payload directly; collections
/// carry their element values and are materialized into a concrete
/// interpreter store by [`materialize`].
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeArg {
    /// An integer (or index) of the given IR type, already clamped to the
    /// type's domain.
    Int(Type, i64),
    /// A boolean.
    Bool(bool),
    /// A sequence with the given element values.
    Seq(Vec<ProbeArg>),
    /// An associative array with the given (distinct-key) entries, in
    /// insertion order.
    Assoc(Vec<(ProbeArg, ProbeArg)>),
    /// A freshly allocated object of the given type, with one value per
    /// field in declaration order.
    Obj(ObjTypeId, Vec<ProbeArg>),
    /// A null reference to the given object type (exercises the callee's
    /// null paths; probes where the source traps on it are skipped).
    NullRef(ObjTypeId),
}

impl ProbeArg {
    /// The scalar payload, if this argument is a scalar.
    pub fn as_scalar(&self) -> Option<i64> {
        match self {
            ProbeArg::Int(_, v) => Some(*v),
            ProbeArg::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }
}

/// Minimal deterministic generator (SplitMix64 step) so synthesis does
/// not depend on the fuzz crate (which depends on this one).
#[derive(Clone, Copy, Debug)]
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Mixes a probe seed with a per-function (or per-call-site) salt,
/// yielding the seed for one synthesized vector. Exposed so harnesses can
/// derive the same streams as [`cross_validate`].
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut m = Mix(seed ^ salt.wrapping_mul(0x2545f4914f6cdd1d));
    m.next()
}

/// Whether a function signature type can be probed with a plain integer
/// on both interpreters.
fn probe_scalar(ty: Type) -> bool {
    matches!(
        ty,
        Type::I64
            | Type::I32
            | Type::I16
            | Type::I8
            | Type::U64
            | Type::U32
            | Type::U16
            | Type::U8
            | Type::Bool
            | Type::Index
    )
}

/// Clamps a raw draw into the domain of an integer parameter type.
fn clamp_int(ty: Type, raw: i64) -> i64 {
    match ty {
        Type::I8 => raw as i8 as i64,
        Type::I16 => raw as i16 as i64,
        Type::I32 => raw as i32 as i64,
        Type::I64 => raw,
        Type::U8 => raw as u8 as i64,
        Type::U16 => raw as u16 as i64,
        Type::U32 => raw as u32 as i64,
        // The interpreters carry unsigned 64-bit payloads in an i64 word;
        // keep the sign bit clear so both sides agree on comparisons.
        Type::U64 => raw & i64::MAX,
        // Indices are used against collections: keep them small enough to
        // land in (and just outside) realistic bounds.
        Type::Index => raw.rem_euclid(17),
        _ => raw,
    }
}

/// Draws one scalar from the "interesting values" pool for a type:
/// boundaries (0, ±1, extremes) with high probability, small randoms
/// otherwise.
fn synth_scalar(ty: Type, rng: &mut Mix) -> ProbeArg {
    if ty == Type::Bool {
        return ProbeArg::Bool(rng.below(2) == 1);
    }
    let raw = match rng.below(8) {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => -1,
        4 => i64::MIN,
        5 => i64::MAX,
        _ => (rng.next() % 255) as i64 - 127,
    };
    ProbeArg::Int(ty, clamp_int(ty, raw))
}

/// Synthesizes one value of type `ty`, or `None` if the type is not
/// synthesizable (floats, pointers, inline objects, void).
fn synth_value(types: &TypeTable, ty: TypeId, rng: &mut Mix, depth: u32) -> Option<ProbeArg> {
    match types.get(ty) {
        t if probe_scalar(t) => Some(synth_scalar(t, rng)),
        Type::Ref(obj) => {
            // Mostly a fresh object with synthesized fields; occasionally
            // null, to probe the callee's null paths (source-side traps
            // are skipped, so null is always safe to draw). At the depth
            // limit null is forced, so recursive object types terminate.
            if depth >= 3 || rng.below(8) == 0 {
                return Some(ProbeArg::NullRef(obj));
            }
            let field_tys: Vec<TypeId> = types.object(obj).fields.iter().map(|f| f.ty).collect();
            let fields = field_tys
                .iter()
                .map(|&ft| synth_value(types, ft, rng, depth + 1))
                .collect::<Option<Vec<_>>>()?;
            Some(ProbeArg::Obj(obj, fields))
        }
        Type::Seq(elem) if depth < 3 => {
            let n = rng.below(5) as usize;
            let elems = (0..n)
                .map(|_| synth_value(types, elem, rng, depth + 1))
                .collect::<Option<Vec<_>>>()?;
            Some(ProbeArg::Seq(elems))
        }
        Type::Assoc(kt, vt) if depth < 3 => {
            // Keys must be scalar (hashable and directly comparable);
            // duplicates are dropped so insertion order is well-defined.
            if !probe_scalar(types.get(kt)) {
                return None;
            }
            let n = rng.below(5) as usize;
            let mut entries: Vec<(ProbeArg, ProbeArg)> = Vec::new();
            for _ in 0..n {
                let k = synth_scalar(types.get(kt), rng);
                let v = synth_value(types, vt, rng, depth + 1)?;
                if !entries.iter().any(|(ek, _)| *ek == k) {
                    entries.push((k, v));
                }
            }
            Some(ProbeArg::Assoc(entries))
        }
        _ => None,
    }
}

/// Synthesizes a typed argument vector for a parameter list from a seed.
/// Deterministic: the same `(types, param_tys, seed)` always yields the
/// same vector. Returns `None` if any parameter type is not
/// synthesizable.
///
/// ```
/// use memoir_ir::{Type, TypeTable};
/// use memoir_lower::synth_args;
///
/// let mut types = TypeTable::new();
/// let i64t = types.intern(Type::I64);
/// let seqt = types.seq_of(i64t);
///
/// let args = synth_args(&types, &[i64t, seqt], 7).unwrap();
/// assert_eq!(args.len(), 2);
/// // Same seed, same vector — probes replay exactly.
/// assert_eq!(synth_args(&types, &[i64t, seqt], 7).unwrap(), args);
/// ```
pub fn synth_args(types: &TypeTable, param_tys: &[TypeId], seed: u64) -> Option<Vec<ProbeArg>> {
    let mut rng = Mix(seed ^ 0xa076_1d64_78bd_642f);
    param_tys
        .iter()
        .map(|&t| synth_value(types, t, &mut rng, 0))
        .collect()
}

/// Projects an argument vector onto plain machine words for the
/// low-level interpreter. `None` if any argument is a collection (no
/// cross-IR representation).
pub fn scalar_args(args: &[ProbeArg]) -> Option<Vec<i64>> {
    args.iter().map(ProbeArg::as_scalar).collect()
}

/// Materializes a synthesized argument in a concrete interpreter heap
/// (collections are allocated in `interp`'s store). Fails with
/// [`ValidateError::NonScalarKey`] when an associative argument carries a
/// collection-valued key ([`synth_args`] never produces one, but
/// hand-built [`ProbeArg`]s can).
pub fn materialize(interp: &mut Interp<'_>, arg: &ProbeArg) -> Result<Value, ValidateError> {
    match arg {
        ProbeArg::Int(ty, v) => Ok(Value::Int(*ty, *v)),
        ProbeArg::Bool(b) => Ok(Value::Bool(*b)),
        ProbeArg::Seq(elems) => {
            let vals: Vec<Value> = elems
                .iter()
                .map(|e| materialize(interp, e))
                .collect::<Result<_, _>>()?;
            Ok(interp.alloc_seq(vals))
        }
        ProbeArg::Assoc(entries) => {
            let mut c = Collection::new_assoc();
            for (k, v) in entries {
                let kv = materialize(interp, k)?;
                let vv = materialize(interp, v)?;
                let key = Key::from_value(&kv).ok_or(ValidateError::NonScalarKey)?;
                if let Collection::Assoc { map, order } = &mut c {
                    if map.insert(key.clone(), vv).is_none() {
                        order.push(key);
                    }
                }
            }
            Ok(Value::Coll(interp.store.alloc_coll(c)))
        }
        ProbeArg::Obj(ty, fields) => {
            let vals: Vec<Value> = fields
                .iter()
                .map(|f| materialize(interp, f))
                .collect::<Result<_, _>>()?;
            let id = interp.store.alloc_obj(*ty, vals.len());
            interp.store.objects[id.0 as usize].fields = Some(vals);
            Ok(Value::Ref(*ty, Some(id)))
        }
        ProbeArg::NullRef(ty) => Ok(Value::Ref(*ty, None)),
    }
}

/// Checks agreement between `m` and its lowered form `lm` with the
/// default options: symbolic proving at the default [`Budget`], probe
/// fallback on the given seeds, no coverage requirement. Returns
/// coverage counters, or the first definite problem found.
pub fn cross_validate(
    m: &Module,
    lm: &LModule,
    probes: &[u64],
) -> Result<CrossCheckReport, ValidateError> {
    cross_validate_opts(m, lm, probes, &ValidateOptions::default())
}

/// [`cross_validate`] with explicit [`ValidateOptions`].
pub fn cross_validate_opts(
    m: &Module,
    lm: &LModule,
    probes: &[u64],
    opts: &ValidateOptions,
) -> Result<CrossCheckReport, ValidateError> {
    let mut report = CrossCheckReport::default();
    for (fidx, (_, f)) in m.funcs.iter().enumerate() {
        let sig_ok = f
            .params
            .iter()
            .map(|p| m.types.get(p.ty))
            .chain(f.ret_tys.iter().map(|&t| m.types.get(t)))
            .all(probe_scalar);
        if !sig_ok {
            continue;
        }
        if lm.by_name(&f.name).is_none() {
            return Err(ValidateError::MissingFunction {
                function: f.name.clone(),
            });
        }
        report.functions_checked += 1;

        // Tier 1: prove the function probe-free when the budget allows.
        // `Inconclusive` (budget, unsupported ops) falls through to the
        // probes; `Diverged` carries a witness already confirmed on both
        // concrete interpreters.
        if let Some(budget) = &opts.prove {
            match symexec::prove_lowering(m, lm, &f.name, budget) {
                symexec::FnVerdict::Proved => {
                    report.functions_proved += 1;
                    continue;
                }
                symexec::FnVerdict::Diverged { args, detail } => {
                    return Err(ValidateError::Divergence {
                        function: f.name.clone(),
                        args,
                        detail,
                    });
                }
                symexec::FnVerdict::Inconclusive(_) => {}
            }
        }

        // Tier 2: typed probes.
        let param_tys: Vec<TypeId> = f.params.iter().map(|p| p.ty).collect();
        let mut compared_here = 0usize;
        for &seed in probes {
            let Some(args) = synth_args(&m.types, &param_tys, mix_seed(seed, fidx as u64)) else {
                // Unsynthesizable parameter type: deterministic per
                // signature, so no other seed will fare better.
                break;
            };
            let Some(lir_args) = scalar_args(&args) else {
                break; // non-scalar argument (can't happen: sig_ok)
            };
            let mut interp = Interp::new(m).with_fuel(PROBE_FUEL);
            let memoir_args: Vec<Value> = args
                .iter()
                .map(|a| materialize(&mut interp, a))
                .collect::<Result<_, _>>()?;
            let memoir_result = interp.run_by_name(&f.name, memoir_args);
            let expected: Vec<i64> = match memoir_result {
                // The source program traps on this input (or runs out of
                // probe fuel): no agreement obligation.
                Err(_) => {
                    report.probes_skipped += 1;
                    continue;
                }
                Ok(vals) => match vals.iter().map(Value::as_int).collect() {
                    Some(ints) => ints,
                    None => {
                        report.probes_skipped += 1;
                        continue;
                    }
                },
            };
            let got = LirMachine::new(lm)
                .with_fuel(PROBE_FUEL)
                .run_by_name(&f.name, lir_args.clone());
            match got {
                Err(trap) => {
                    return Err(ValidateError::Divergence {
                        function: f.name.clone(),
                        args: lir_args,
                        detail: format!(
                            "memoir-interp returned {expected:?} but LirMachine trapped: {trap:?}"
                        ),
                    });
                }
                Ok(got) if got != expected => {
                    return Err(ValidateError::Divergence {
                        function: f.name.clone(),
                        args: lir_args,
                        detail: format!(
                            "memoir-interp returned {expected:?} but LirMachine returned {got:?}"
                        ),
                    });
                }
                Ok(_) => {
                    report.probes_compared += 1;
                    compared_here += 1;
                }
            }
        }
        if compared_here > 0 {
            report.functions_probed += 1;
        } else {
            // Checkable, but no proof and not a single compared probe:
            // this function contributed zero evidence. Report it instead
            // of silently moving on.
            report.functions_skipped += 1;
        }
    }
    if opts.require_coverage && report.functions_proved + report.functions_probed == 0 {
        return Err(ValidateError::NoCoverage);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use memoir_ir::{BinOp, Form, ModuleBuilder, Type};

    fn scalar_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("addmul", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let y = b.param("y", i64t);
            let s = b.bin(BinOp::Add, x, y);
            let r = b.bin(BinOp::Mul, s, s);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        mb.finish()
    }

    fn probe_only() -> ValidateOptions {
        ValidateOptions {
            prove: None,
            ..ValidateOptions::default()
        }
    }

    #[test]
    fn scalar_function_is_proved_probe_free() {
        let m = scalar_module();
        let lm = lower_module(&m).unwrap();
        let rep = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap();
        assert_eq!(rep.functions_checked, 1);
        assert_eq!(rep.functions_proved, 1);
        assert_eq!(rep.functions_probed, 0);
        assert_eq!(rep.functions_skipped, 0);
        assert_eq!(rep.probes_compared, 0, "proved functions are not probed");
    }

    #[test]
    fn agreement_on_scalar_function_probe_mode() {
        let m = scalar_module();
        let lm = lower_module(&m).unwrap();
        let rep = cross_validate_opts(&m, &lm, DEFAULT_PROBES, &probe_only()).unwrap();
        assert_eq!(rep.functions_checked, 1);
        assert_eq!(rep.functions_proved, 0);
        assert_eq!(rep.functions_probed, 1);
        assert_eq!(rep.probes_compared, DEFAULT_PROBES.len());
        assert_eq!(rep.probes_skipped, 0);
    }

    fn sabotage(lm: &mut LModule) {
        // Sabotage the lowered function: drop the final multiply by
        // rewiring the return to the sum.
        let fun = lm.by_name("addmul").unwrap();
        let f = &mut lm.funcs[fun.0 as usize];
        let entry = f.entry;
        let last = *f.blocks[entry.0 as usize].insts.last().unwrap();
        let p0 = f.param(0);
        if let lir::Op::Ret(vals) = &mut f.insts[last.0 as usize].op {
            vals[0] = p0;
        } else {
            panic!("expected ret terminator");
        }
    }

    #[test]
    fn divergence_is_reported_by_probes() {
        let m = scalar_module();
        let mut lm = lower_module(&m).unwrap();
        sabotage(&mut lm);
        let err = cross_validate_opts(&m, &lm, DEFAULT_PROBES, &probe_only()).unwrap_err();
        let ValidateError::Divergence {
            ref function,
            ref detail,
            ..
        } = err
        else {
            panic!("expected Divergence, got {err:?}");
        };
        assert_eq!(function, "addmul");
        assert!(detail.contains("LirMachine returned"), "{detail}");
        assert!(err.to_string().contains("docs/REPRO_FORMAT.md"), "{err}");
    }

    #[test]
    fn divergence_is_reported_by_the_symbolic_oracle_with_a_witness() {
        let m = scalar_module();
        let mut lm = lower_module(&m).unwrap();
        sabotage(&mut lm);
        let err = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap_err();
        let ValidateError::Divergence { function, args, .. } = err else {
            panic!("expected Divergence, got {err:?}");
        };
        assert_eq!(function, "addmul");
        // The symbolic witness is confirmed: re-run both engines on it.
        let mut interp = Interp::new(&m);
        let vals: Vec<Value> = args.iter().map(|&v| Value::Int(Type::I64, v)).collect();
        let expected = interp.run_by_name("addmul", vals).unwrap()[0]
            .as_int()
            .unwrap();
        let got = LirMachine::new(&lm).run_by_name("addmul", args).unwrap()[0];
        assert_ne!(expected, got);
    }

    #[test]
    fn missing_function_is_an_error() {
        let m = scalar_module();
        let mut lm = lower_module(&m).unwrap();
        let fun = lm.by_name("addmul").unwrap();
        lm.funcs[fun.0 as usize].name = "renamed".into();
        let err = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap_err();
        assert_eq!(
            err,
            ValidateError::MissingFunction {
                function: "addmul".into()
            }
        );
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn non_scalar_assoc_keys_refuse_materialization() {
        let m = scalar_module();
        let mut interp = Interp::new(&m);
        let bad = ProbeArg::Assoc(vec![(
            ProbeArg::Seq(vec![]), // a collection key: no materialization
            ProbeArg::Int(Type::I64, 1),
        )]);
        assert_eq!(
            materialize(&mut interp, &bad),
            Err(ValidateError::NonScalarKey)
        );
        assert!(ValidateError::NonScalarKey.to_string().contains("key"));
    }

    #[test]
    fn zero_coverage_fails_when_required() {
        // Only collection-signature functions: nothing is checkable.
        let mut mb = ModuleBuilder::new("m");
        mb.func("colly", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s = b.param("s", seqt);
            let n = b.size(s);
            let ni = b.cast(Type::I64, n);
            b.returns(&[i64t]);
            b.ret(vec![ni]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        let strict = ValidateOptions {
            require_coverage: true,
            ..ValidateOptions::default()
        };
        assert_eq!(
            cross_validate_opts(&m, &lm, DEFAULT_PROBES, &strict).unwrap_err(),
            ValidateError::NoCoverage
        );
        // The default is lenient: same module passes with counters only.
        let rep = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap();
        assert_eq!(rep.functions_checked, 0);
        assert_eq!(rep.probes_compared, 0);
    }

    #[test]
    fn skipped_functions_are_counted_not_silent() {
        // A scalar signature whose only probeable behavior traps: x / 0
        // would be needed; instead force skips via an always-trapping
        // body so every probe is skipped on the source side.
        let mut mb = ModuleBuilder::new("m");
        mb.func("trappy", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let x = b.param("x", i64t);
            let zero = b.i64(0);
            let q = b.bin(BinOp::Div, x, zero);
            b.returns(&[i64t]);
            b.ret(vec![q]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        // Probe-only mode: all probes trap on the source side, so the
        // function yields zero evidence and must be counted as skipped.
        let rep = cross_validate_opts(&m, &lm, DEFAULT_PROBES, &probe_only()).unwrap();
        assert_eq!(rep.functions_checked, 1);
        assert_eq!(rep.functions_probed, 0);
        assert_eq!(rep.functions_skipped, 1);
        assert_eq!(rep.probes_skipped, DEFAULT_PROBES.len());
        // The symbolic oracle *can* discharge it (the sole path traps on
        // both sides — no obligation), turning the skip into a proof.
        let rep = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap();
        assert_eq!(rep.functions_proved, 1);
        assert_eq!(rep.functions_skipped, 0);
    }

    #[test]
    fn collection_signatures_are_skipped() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("seqy", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let s = b.param("s", seqt);
            let n = b.size(s);
            b.returns(&[i64t]);
            b.ret(vec![n]);
        });
        let m = mb.finish();
        let lm = lower_module(&m).unwrap();
        let rep = cross_validate(&m, &lm, DEFAULT_PROBES).unwrap();
        assert_eq!(rep.functions_checked, 0);
        assert_eq!(rep.probes_compared, 0);
    }

    #[test]
    fn synthesis_is_deterministic_and_typed() {
        let mut types = TypeTable::new();
        let i8t = types.intern(Type::I8);
        let u16t = types.intern(Type::U16);
        let boolt = types.intern(Type::Bool);
        let idxt = types.intern(Type::Index);
        let seqt = types.seq_of(i8t);
        let assoct = types.assoc_of(u16t, seqt);
        let params = [i8t, u16t, boolt, idxt, seqt, assoct];
        for seed in 0..64 {
            let a = synth_args(&types, &params, seed).unwrap();
            let b = synth_args(&types, &params, seed).unwrap();
            assert_eq!(a, b, "seed {seed}");
            match (&a[0], &a[1], &a[2], &a[3], &a[4], &a[5]) {
                (
                    ProbeArg::Int(Type::I8, v8),
                    ProbeArg::Int(Type::U16, v16),
                    ProbeArg::Bool(_),
                    ProbeArg::Int(Type::Index, vi),
                    ProbeArg::Seq(elems),
                    ProbeArg::Assoc(entries),
                ) => {
                    assert!((i8::MIN as i64..=i8::MAX as i64).contains(v8));
                    assert!((0..=u16::MAX as i64).contains(v16));
                    assert!(*vi >= 0);
                    for e in elems {
                        assert!(matches!(e, ProbeArg::Int(Type::I8, _)));
                    }
                    let mut seen = Vec::new();
                    for (k, _) in entries {
                        assert!(matches!(k, ProbeArg::Int(Type::U16, _)));
                        assert!(!seen.contains(k), "duplicate key in {entries:?}");
                        seen.push(k.clone());
                    }
                }
                other => panic!("mis-typed synthesis: {other:?}"),
            }
        }
    }

    #[test]
    fn object_arguments_synthesize_and_probe() {
        use memoir_ir::Field;
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let inner = mb
            .module
            .types
            .define_object(
                "Inner",
                vec![
                    Field {
                        name: "u".into(),
                        ty: i64t,
                    },
                    Field {
                        name: "v".into(),
                        ty: i64t,
                    },
                ],
            )
            .unwrap();
        mb.func("getu", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let rt = b.types.ref_of(inner);
            let p = b.param("p", rt);
            let x = b.param("x", i64t);
            let u = b.field_read(p, inner, 0);
            let s = b.add(u, x);
            b.returns(&[i64t]);
            b.ret(vec![s]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("getu").unwrap()];
        let param_tys: Vec<TypeId> = f.params.iter().map(|p| p.ty).collect();
        let (mut ran, mut nulls) = (0, 0);
        for seed in 0..64 {
            let args = synth_args(&m.types, &param_tys, seed).unwrap();
            assert_eq!(args, synth_args(&m.types, &param_tys, seed).unwrap());
            match &args[0] {
                ProbeArg::Obj(ty, fields) => {
                    assert_eq!(*ty, inner);
                    assert_eq!(fields.len(), 2);
                    let u = fields[0].as_scalar().unwrap();
                    let x = args[1].as_scalar().unwrap();
                    let mut interp = Interp::new(&m);
                    let vals: Vec<Value> = args
                        .iter()
                        .map(|a| materialize(&mut interp, a).unwrap())
                        .collect();
                    let got = interp.run_by_name("getu", vals).unwrap()[0]
                        .as_int()
                        .unwrap();
                    assert_eq!(got, u.wrapping_add(x), "seed {seed}");
                    ran += 1;
                }
                ProbeArg::NullRef(ty) => {
                    // Null draws are part of the domain: the interpreter
                    // traps on the field read, and probes skip the trap.
                    assert_eq!(*ty, inner);
                    let mut interp = Interp::new(&m);
                    let vals: Vec<Value> = args
                        .iter()
                        .map(|a| materialize(&mut interp, a).unwrap())
                        .collect();
                    assert!(interp.run_by_name("getu", vals).is_err());
                    nulls += 1;
                }
                other => panic!("expected object arg, got {other:?}"),
            }
        }
        assert!(ran > 40, "objects under-sampled: {ran}");
        assert!(nulls > 0, "null refs never sampled");
    }

    #[test]
    fn unsupported_types_refuse_synthesis() {
        let mut types = TypeTable::new();
        let f64t = types.intern(Type::F64);
        let ptrt = types.intern(Type::Ptr);
        assert_eq!(synth_args(&types, &[f64t], 0), None);
        assert_eq!(synth_args(&types, &[ptrt], 0), None);
    }

    #[test]
    fn materialized_collections_run_through_the_interpreter() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("len2", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seqt = b.types.seq_of(i64t);
            let assoct = b.types.assoc_of(i64t, i64t);
            let s = b.param("s", seqt);
            let a = b.param("a", assoct);
            let n = b.size(s);
            let k = b.size(a);
            let ni = b.cast(Type::I64, n);
            let ki = b.cast(Type::I64, k);
            let total = b.add(ni, ki);
            b.returns(&[i64t]);
            b.ret(vec![total]);
        });
        let m = mb.finish();
        let f = &m.funcs[m.func_by_name("len2").unwrap()];
        let param_tys: Vec<TypeId> = f.params.iter().map(|p| p.ty).collect();
        let mut compared = 0;
        for seed in 0..32 {
            let args = synth_args(&m.types, &param_tys, seed).unwrap();
            let (ProbeArg::Seq(se), ProbeArg::Assoc(ae)) = (&args[0], &args[1]) else {
                panic!("expected collection args");
            };
            let expect = (se.len() + ae.len()) as i64;
            let mut interp = Interp::new(&m);
            let vals: Vec<Value> = args
                .iter()
                .map(|a| materialize(&mut interp, a).unwrap())
                .collect();
            let got = interp.run_by_name("len2", vals).unwrap()[0]
                .as_int()
                .unwrap();
            assert_eq!(got, expect, "seed {seed}");
            compared += 1;
        }
        assert_eq!(compared, 32);
    }
}
