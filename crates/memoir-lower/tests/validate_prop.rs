//! Property tests for the typed argument synthesizer
//! (`memoir_lower::validate`): every synthesized vector type-checks
//! against its parameter list, and synthesis is a pure function of
//! `(types, params, seed)` — the property the fuzz harness's
//! per-function probes and the lower stage's agreement probe both rely
//! on for exact replay.

use memoir_ir::{Type, TypeId, TypeTable};
use memoir_lower::{mix_seed, synth_args, ProbeArg};
use proptest::prelude::*;

/// A pool of synthesizable parameter types: all probe-able scalars plus
/// nested collection shapes (seq of scalar, seq of seq, assoc with
/// scalar and collection values).
fn pool() -> (TypeTable, Vec<TypeId>) {
    let mut types = TypeTable::new();
    let scalars: Vec<TypeId> = [
        Type::I64,
        Type::I32,
        Type::I16,
        Type::I8,
        Type::U64,
        Type::U32,
        Type::U16,
        Type::U8,
        Type::Bool,
        Type::Index,
    ]
    .iter()
    .map(|&t| types.intern(t))
    .collect();
    let seq_i64 = types.seq_of(scalars[0]);
    let seq_seq = types.seq_of(seq_i64);
    let assoc_scalar = types.assoc_of(scalars[6], scalars[3]);
    let assoc_seq = types.assoc_of(scalars[9], seq_i64);
    let mut pool = scalars;
    pool.extend([seq_i64, seq_seq, assoc_scalar, assoc_seq]);
    (types, pool)
}

/// Whether a scalar payload sits inside its type's value domain (the
/// synthesizer clamps; out-of-domain payloads would diverge between the
/// two interpreters' word representations).
fn in_domain(t: Type, v: i64) -> bool {
    match t {
        Type::I8 => i8::try_from(v).is_ok(),
        Type::I16 => i16::try_from(v).is_ok(),
        Type::I32 => i32::try_from(v).is_ok(),
        Type::U8 => (0..=u8::MAX as i64).contains(&v),
        Type::U16 => (0..=u16::MAX as i64).contains(&v),
        Type::U32 => (0..=u32::MAX as i64).contains(&v),
        Type::U64 | Type::Index => v >= 0,
        _ => true,
    }
}

/// Structural type check: does `arg` inhabit `ty`?
fn type_checks(types: &TypeTable, ty: TypeId, arg: &ProbeArg) -> bool {
    match (types.get(ty), arg) {
        (Type::Bool, ProbeArg::Bool(_)) => true,
        (t, ProbeArg::Int(at, v)) => t == *at && in_domain(t, *v),
        (Type::Seq(el), ProbeArg::Seq(elems)) => elems.iter().all(|e| type_checks(types, el, e)),
        (Type::Assoc(kt, vt), ProbeArg::Assoc(entries)) => {
            let keys_distinct = entries
                .iter()
                .enumerate()
                .all(|(i, (k, _))| entries[..i].iter().all(|(p, _)| p != k));
            keys_distinct
                && entries
                    .iter()
                    .all(|(k, v)| type_checks(types, kt, k) && type_checks(types, vt, v))
        }
        _ => false,
    }
}

proptest! {
    /// Every synthesized argument inhabits its declared parameter type —
    /// scalars land in their value domain, collections nest correctly,
    /// assoc keys are distinct.
    #[test]
    fn synthesized_vectors_type_check(
        idxs in proptest::collection::vec(0usize..14, 0..6),
        seed in any::<u64>(),
    ) {
        let (types, pool) = pool();
        let params: Vec<TypeId> = idxs.iter().map(|&i| pool[i]).collect();
        let args = synth_args(&types, &params, seed)
            .expect("every pool type is synthesizable");
        prop_assert_eq!(args.len(), params.len());
        for (ty, arg) in params.iter().zip(&args) {
            prop_assert!(
                type_checks(&types, *ty, arg),
                "{arg:?} does not inhabit {}",
                types.display(*ty)
            );
        }
    }

    /// Synthesis is deterministic per (mixed) seed: the exact property
    /// that lets a `.repro` with a `probe-seed:` replay bit-for-bit.
    #[test]
    fn synthesis_is_deterministic_per_seed(
        idxs in proptest::collection::vec(0usize..14, 0..6),
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let (types, pool) = pool();
        let params: Vec<TypeId> = idxs.iter().map(|&i| pool[i]).collect();
        let s = mix_seed(seed, salt);
        prop_assert_eq!(mix_seed(seed, salt), s);
        prop_assert_eq!(
            synth_args(&types, &params, s),
            synth_args(&types, &params, s)
        );
    }
}
