//! The `memoir-opt` command-line driver: parse textual MEMOIR IR, run a
//! pipeline spec over it, print the optimized module.
//!
//! ```text
//! memoir-opt --passes='ssa-construct,constprop,fixpoint<max=4>(simplify,dce),ssa-destruct' \
//!            --on-fault=skip --budget=pass-ms=500,growth=4.0 --report in.mir -o out.mir
//! ```

use memoir_opt::lowering::{compile_lowered_with, split_lowered_spec, LowerConfig};
use memoir_opt::pipeline::{
    compile_spec_with, default_spec, threads_from_env, OptConfig, OptLevel,
};
use passman::{Budgets, FaultPlan, FaultPolicy, PipelineSpec};
use std::io::{Read, Write};
use std::process::ExitCode;

const USAGE: &str = "\
memoir-opt — run a MEMOIR pass pipeline over textual IR

USAGE:
    memoir-opt [OPTIONS] [INPUT]

ARGS:
    INPUT...              input files of textual MEMOIR IR (default: stdin).
                          Several inputs form a job stream: each is compiled
                          through the same pipeline in order, and with
                          --cache they share one compile cache, so functions
                          repeated across jobs are not re-optimized

OPTIONS:
    --passes=SPEC         pipeline spec, e.g. 'ssa-construct,constprop,
                          fixpoint<max=4>(simplify,sink,dce),ssa-destruct';
                          per-pass budgets ride along as options
                          (dce<max-ms=50>, dee<max-growth=2.0>). The
                          pseudo-pass `lower` splits the pipeline: passes
                          after it run on the lowered low-level IR, e.g.
                          '...,ssa-destruct,lower,mem2reg,constfold,dce'.
                          `lower<max-ms=N>` budgets the stage,
                          `lower<no-cross-check>` skips the interpreter-
                          agreement probes (the lir verifier always runs)
    -O0                   preset: SSA round-trip only
    -O3                   preset: the full default pipeline (the default)
    --lower               preset: -O3, then `lower`, then the default lir
                          pipeline; output is low-level IR
    --on-fault=POLICY     abort (default) | skip | stop — what to do when a
                          pass panics, fails verification, or blows a budget
    --budget=LIST         pipeline-wide budgets:
                          pass-ms=N,pipeline-ms=N,growth=F,fixpoint=N
    --verify=on|off       force inter-pass IR verification (default: on in
                          debug builds, off in release)
    --inject=PLAN         test-only fault injection, e.g. panic@dce,
                          verify@#3, budget@dee#2, panic@simplify%1
                          (%N targets function N of a sharded pass)
    --threads=N           worker threads for function-sharded passes
                          (default: MEMOIR_THREADS, else 1 = serial;
                          results are identical to serial)
    --cache               share a fingerprint-keyed compile cache across
                          all jobs of this invocation: per-function pass
                          outputs, analyses, and lowered bodies of unchanged
                          functions are reused instead of recomputed
                          (MEMOIR_CACHE=1 enables the same cache globally)
    --report              print the per-pass report table to stderr
    -o FILE               write the optimized module to FILE (default: stdout)
    -h, --help            show this help
";

struct Cli {
    inputs: Vec<String>,
    output: Option<String>,
    spec: PipelineSpec,
    policy: FaultPolicy,
    budgets: Budgets,
    verify: Option<bool>,
    inject: Option<FaultPlan>,
    threads: Option<usize>,
    report: bool,
    cache: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        output: None,
        spec: default_spec(OptLevel::O3(OptConfig::all())),
        policy: FaultPolicy::Abort,
        budgets: Budgets::none(),
        verify: None,
        inject: None,
        threads: None,
        report: false,
        cache: false,
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match flag {
            "-h" | "--help" => return Ok(None),
            "--passes" => {
                cli.spec = PipelineSpec::parse(&value(&mut it)?)
                    .map_err(|e| format!("bad --passes spec: {e}"))?;
            }
            "-O0" => cli.spec = default_spec(OptLevel::O0),
            "-O3" => cli.spec = default_spec(OptLevel::O3(OptConfig::all())),
            "--lower" => {
                let memoir = default_spec(OptLevel::O3(OptConfig::all()));
                let lir = lir::passes::default_spec();
                cli.spec = PipelineSpec::parse(&format!("{memoir},lower,{lir}"))
                    .expect("default lowered spec is well-formed");
            }
            "--on-fault" => cli.policy = value(&mut it)?.parse()?,
            "--budget" => cli.budgets = Budgets::parse(&value(&mut it)?)?,
            "--verify" => {
                cli.verify = Some(match value(&mut it)?.as_str() {
                    "on" | "true" => true,
                    "off" | "false" => false,
                    other => return Err(format!("bad --verify value `{other}`")),
                })
            }
            "--inject" => cli.inject = Some(value(&mut it)?.parse()?),
            "--threads" => {
                cli.threads = Some(
                    value(&mut it)?
                        .parse::<usize>()
                        .map_err(|e| format!("bad --threads value: {e}"))?,
                )
            }
            "--report" => cli.report = true,
            "--cache" => cli.cache = true,
            "-o" | "--output" => cli.output = Some(value(&mut it)?),
            _ if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown option `{flag}` (try --help)"))
            }
            _ => cli.inputs.push(arg.clone()),
        }
    }
    Ok(Some(cli))
}

fn run(cli: Cli) -> Result<(), String> {
    let cache = if cli.cache {
        Some(passman::CompileCache::new())
    } else {
        memoir_opt::pipeline::cache_from_env()
    };
    if cli.inputs.len() > 1 && cli.output.is_some() {
        return Err("-o cannot be combined with more than one input".into());
    }
    let inputs: Vec<Option<&str>> = if cli.inputs.is_empty() {
        vec![None]
    } else {
        cli.inputs.iter().map(|p| Some(p.as_str())).collect()
    };
    for input in inputs {
        run_job(&cli, input, cache.clone())?;
    }
    Ok(())
}

/// Compiles one input through the shared pipeline and cache.
fn run_job(
    cli: &Cli,
    input: Option<&str>,
    cache: Option<passman::CompileCache>,
) -> Result<(), String> {
    let src = match input {
        None | Some("-") => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("reading stdin: {e}"))?;
            s
        }
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?
        }
    };
    let mut m = memoir_ir::parser::parse_module(&src).map_err(|e| format!("parsing input: {e}"))?;

    let lowered_pipeline = split_lowered_spec(&cli.spec)?;
    let (report, lowered) = match &lowered_pipeline {
        Some(lp) => {
            let cfg = LowerConfig {
                policy: cli.policy,
                budgets: cli.budgets,
                verify: cli.verify,
                inject: cli.inject.clone(),
                threads: cli.threads.unwrap_or_else(threads_from_env),
                cross_check: true,
                full_clone_snapshots: false,
                cache,
                adaptive: false,
            };
            let out = compile_lowered_with(&mut m, lp, &cfg)
                .map_err(|e| format!("pipeline failed: {e}"))?;
            (out.report, out.lowered)
        }
        None => {
            let report = compile_spec_with(&mut m, &cli.spec, |mut pm| {
                pm = pm.on_fault(cli.policy).with_budgets(cli.budgets);
                if let Some(v) = cli.verify {
                    pm = pm.verify_between_passes(v);
                }
                if let Some(plan) = cli.inject.clone() {
                    pm = pm.with_fault_injection(plan);
                }
                if let Some(n) = cli.threads {
                    pm = pm.with_threads(n);
                }
                if let Some(cache) = cache {
                    pm = pm.with_compile_cache(cache);
                }
                pm
            })
            .map_err(|e| format!("pipeline failed: {e}"))?;
            (report, None)
        }
    };

    for d in &report.run.degradations {
        eprintln!("memoir-opt: warning: {d}");
    }
    if report.run.stopped_early {
        eprintln!("memoir-opt: warning: pipeline stopped before completing the spec");
    }
    if lowered_pipeline.is_some() && lowered.is_none() {
        eprintln!(
            "memoir-opt: warning: lowering did not complete; emitting the optimized MEMOIR module"
        );
    }
    if cli.report {
        if let Some(path) = input {
            eprintln!("== {path}");
        }
        eprint!("{}", report.run.render_table());
        eprintln!("total {:.3}ms", report.total_ms());
    }

    let text = match &lowered {
        Some(lm) => lir::printer::print_module(lm),
        None => memoir_ir::printer::print_module(&m),
    };
    match cli.output.as_deref() {
        None | Some("-") => std::io::stdout()
            .write_all(text.as_bytes())
            .map_err(|e| format!("writing stdout: {e}"))?,
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))?,
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(None) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(cli)) => match run(cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("memoir-opt: error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("memoir-opt: error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
