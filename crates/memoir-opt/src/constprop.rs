//! Constant propagation and folding, including **element-level** constant
//! propagation along collection def-use chains.
//!
//! The scalar part is conventional folding. The collection part is the
//! paper's Listing 1 scenario: because MEMOIR represents a map update as
//! `A₁ = WRITE(A₀, k, v)`, a later `READ(A₂, k)` can walk the def-use
//! chain and, when keys are statically distinguishable, forward the stored
//! value — something the lowered form (opaque hash-table calls) can never
//! do. `SIZE` is likewise folded through the chain (`new Seq(n)` ⇒ `n`,
//! `insert` ⇒ `+1`, `remove` ⇒ `−1`).
//!
//! Field arrays get the same treatment block-locally (the load-store
//! propagation the paper credits to Extended Array SSA): a `field.read`
//! reached by a `field.write` through the *same reference value* with no
//! intervening write to that field array (through any reference — two
//! distinct SSA references may alias the same object) forwards the stored
//! value. Calls that may write the field (per the purity summaries) kill
//! the facts.

use memoir_ir::{BinOp, CmpOp, Constant, Function, InstKind, Module, Type, ValueDef, ValueId};
use std::collections::HashMap;

/// Statistics from one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConstPropStats {
    /// Scalar instructions folded to constants.
    pub scalars_folded: usize,
    /// Collection reads forwarded along def-use chains (Listing 1).
    pub element_reads_forwarded: usize,
    /// `size` queries folded.
    pub sizes_folded: usize,
    /// Conditional branches turned unconditional.
    pub branches_folded: usize,
}

/// Runs constant propagation over every function. Iterates to a local
/// fixed point.
pub fn constprop(m: &mut Module) -> ConstPropStats {
    constprop_with(m, &mut passman::AnalysisManager::new())
}

/// Like [`constprop`], but takes the purity summaries from a shared
/// [`passman::AnalysisManager`] instead of recomputing them per function
/// per fixpoint round. Constprop folds values and branch conditions
/// without adding or removing calls or field writes, so the summaries
/// fetched up front stay valid for the whole run.
pub fn constprop_with(m: &mut Module, am: &mut passman::AnalysisManager<Module>) -> ConstPropStats {
    let purity = am.get_module::<memoir_analysis::cached::CachedPurity>(m);
    let mut stats = ConstPropStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        loop {
            let round = run_function(m, fid, &purity);
            stats.scalars_folded += round.scalars_folded;
            stats.element_reads_forwarded += round.element_reads_forwarded;
            stats.sizes_folded += round.sizes_folded;
            stats.branches_folded += round.branches_folded;
            if round == ConstPropStats::default() {
                break;
            }
        }
    }
    stats
}

fn run_function(
    m: &mut Module,
    fid: memoir_ir::FuncId,
    purity: &memoir_analysis::Purity,
) -> ConstPropStats {
    let mut stats = ConstPropStats::default();
    let mut replacements: HashMap<ValueId, ValueId> = HashMap::new();
    let field_forwards = field_forwarding(m, fid, purity);
    let f = &m.funcs[fid];

    // Collect fold candidates first (immutable pass), then apply.
    #[derive(Clone)]
    enum Action {
        ReplaceResult(
            memoir_ir::BlockId,
            memoir_ir::InstId,
            ValueId,
            Constant,
            memoir_ir::TypeId,
        ),
        ForwardResult(memoir_ir::BlockId, memoir_ir::InstId, ValueId, ValueId),
        FoldBranch(memoir_ir::InstId, bool),
    }
    let mut actions: Vec<Action> = Vec::new();

    for (blk, iid) in f.inst_ids_in_order() {
        let inst = &f.insts[iid];
        match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                if let (Some(a), Some(b)) = (f.value_const(*lhs), f.value_const(*rhs)) {
                    if let Some(c) = fold_bin(*op, a, b) {
                        actions.push(Action::ReplaceResult(
                            blk,
                            iid,
                            inst.results[0],
                            c,
                            f.value_ty(inst.results[0]),
                        ));
                        continue;
                    }
                }
                // Identity simplifications: x+0, x*1, x-0.
                if let Some(b) = f.value_const(*rhs).and_then(Constant::as_int) {
                    let identity = matches!(
                        (op, b),
                        (BinOp::Add, 0)
                            | (BinOp::Sub, 0)
                            | (BinOp::Mul, 1)
                            | (BinOp::Or, 0)
                            | (BinOp::Xor, 0)
                            | (BinOp::Shl, 0)
                            | (BinOp::Shr, 0)
                    );
                    if identity {
                        actions.push(Action::ForwardResult(blk, iid, inst.results[0], *lhs));
                    }
                }
            }
            InstKind::Cmp { op, lhs, rhs } => {
                if let (Some(a), Some(b)) = (f.value_const(*lhs), f.value_const(*rhs)) {
                    if let Some(c) = fold_cmp(*op, a, b) {
                        actions.push(Action::ReplaceResult(
                            blk,
                            iid,
                            inst.results[0],
                            Constant::Bool(c),
                            f.value_ty(inst.results[0]),
                        ));
                    }
                } else if lhs == rhs && matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge) {
                    actions.push(Action::ReplaceResult(
                        blk,
                        iid,
                        inst.results[0],
                        Constant::Bool(true),
                        f.value_ty(inst.results[0]),
                    ));
                } else if lhs == rhs && matches!(op, CmpOp::Ne | CmpOp::Lt | CmpOp::Gt) {
                    actions.push(Action::ReplaceResult(
                        blk,
                        iid,
                        inst.results[0],
                        Constant::Bool(false),
                        f.value_ty(inst.results[0]),
                    ));
                }
            }
            InstKind::Cast { to, value } => {
                if let Some(c) = f.value_const(*value) {
                    if let Some(folded) = fold_cast(m.types.get(*to), c) {
                        actions.push(Action::ReplaceResult(
                            blk,
                            iid,
                            inst.results[0],
                            folded,
                            *to,
                        ));
                    }
                }
            }
            InstKind::Select {
                cond,
                then_value,
                else_value,
            } => {
                if let Some(Constant::Bool(b)) = f.value_const(*cond) {
                    let v = if b { *then_value } else { *else_value };
                    actions.push(Action::ForwardResult(blk, iid, inst.results[0], v));
                }
            }
            InstKind::Phi { incoming } => {
                // All incomings identical (or the φ itself) ⇒ forward.
                let mut uniq: Option<ValueId> = None;
                let mut ok = !incoming.is_empty();
                for (_, v) in incoming {
                    if *v == inst.results[0] {
                        continue;
                    }
                    match uniq {
                        None => uniq = Some(*v),
                        Some(u) if u == *v => {}
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    if let Some(u) = uniq {
                        actions.push(Action::ForwardResult(blk, iid, inst.results[0], u));
                    }
                }
            }
            InstKind::Branch { cond, .. } => {
                if let Some(Constant::Bool(b)) = f.value_const(*cond) {
                    actions.push(Action::FoldBranch(iid, b));
                }
            }
            // The collection def-use chain walks below assume value
            // semantics: in mut form a collection is a single mutable
            // value, so its chain stops at the allocation even though
            // MUT ops have changed the contents since. SSA form only.
            InstKind::Read { c, idx } if f.form == memoir_ir::Form::Ssa => {
                if let Some(v) = forward_read(f, *c, *idx, 64) {
                    actions.push(Action::ForwardResult(blk, iid, inst.results[0], v));
                    stats.element_reads_forwarded += 1;
                }
            }
            InstKind::FieldRead { .. } => {
                if let Some(&v) = field_forwards.get(&iid) {
                    actions.push(Action::ForwardResult(blk, iid, inst.results[0], v));
                    stats.element_reads_forwarded += 1;
                }
            }
            InstKind::Size { c } if f.form == memoir_ir::Form::Ssa => {
                if let Some(n) = fold_size(&m.types, f, *c, 64) {
                    actions.push(Action::ReplaceResult(
                        blk,
                        iid,
                        inst.results[0],
                        Constant::index(n),
                        f.value_ty(inst.results[0]),
                    ));
                    stats.sizes_folded += 1;
                }
            }
            _ => {}
        }
    }

    if actions.is_empty() {
        return stats;
    }
    let f = &mut m.funcs[fid];
    for action in actions {
        match action {
            Action::ReplaceResult(b, i, r, c, ty) => {
                let cv = f.constant(c, ty);
                replacements.insert(r, cv);
                f.remove_inst(b, i);
                stats.scalars_folded += 1;
            }
            Action::ForwardResult(b, i, r, v) => {
                replacements.insert(r, v);
                f.remove_inst(b, i);
            }
            Action::FoldBranch(iid, b) => {
                if let InstKind::Branch {
                    then_target,
                    else_target,
                    ..
                } = f.insts[iid].kind
                {
                    let target = if b { then_target } else { else_target };
                    f.insts[iid].kind = InstKind::Jump { target };
                    stats.branches_folded += 1;
                    // Remove now-stale φ incomings in the dropped target.
                    let dropped = if b { else_target } else { then_target };
                    if dropped != target {
                        let from = block_of(f, iid);
                        if let Some(from) = from {
                            for di in f.blocks[dropped].insts.clone() {
                                if let InstKind::Phi { incoming } = &mut f.insts[di].kind {
                                    incoming.retain(|(p, _)| *p != from);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    f.replace_uses_map(&replacements);
    stats
}

/// Block-local field-array load-store forwarding: maps forwardable
/// `field.read` instructions to the value last stored through the same
/// reference. Conservative about aliasing: a write through any *other*
/// reference to the same `(type, field)` kills that field array's facts,
/// and calls kill per their effect summaries.
fn field_forwarding(
    m: &Module,
    fid: memoir_ir::FuncId,
    purity: &memoir_analysis::Purity,
) -> HashMap<memoir_ir::InstId, ValueId> {
    use memoir_ir::{Callee, ObjTypeId};
    let f = &m.funcs[fid];
    let mut out = HashMap::new();
    for (_, block) in f.blocks.iter() {
        // (obj value, type, field) → stored value.
        let mut facts: HashMap<(ValueId, ObjTypeId, u32), ValueId> = HashMap::new();
        for &i in &block.insts {
            match &f.insts[i].kind {
                InstKind::FieldWrite {
                    obj,
                    obj_ty,
                    field,
                    value,
                } => {
                    // A write through `obj` invalidates facts held through
                    // any other reference to the same field array.
                    facts.retain(|&(o, t, fi), _| !(t == *obj_ty && fi == *field && o != *obj));
                    facts.insert((*obj, *obj_ty, *field), *value);
                }
                InstKind::FieldRead { obj, obj_ty, field } => {
                    if let Some(&v) = facts.get(&(*obj, *obj_ty, *field)) {
                        out.insert(i, v);
                    }
                }
                InstKind::DeleteObj { .. } => facts.clear(),
                InstKind::Call { callee, .. } => match callee {
                    Callee::Func(t) => {
                        let s = purity.summary(*t);
                        if s.opaque {
                            facts.clear();
                        } else {
                            facts.retain(|&(_, ty, fi), _| !s.writes_fields.contains(&(ty, fi)));
                        }
                    }
                    Callee::Extern(e) => {
                        if m.externs[*e].effects.opaque {
                            facts.clear();
                        }
                    }
                },
                _ => {}
            }
        }
    }
    out
}

fn block_of(f: &Function, inst: memoir_ir::InstId) -> Option<memoir_ir::BlockId> {
    f.blocks
        .iter()
        .find(|(_, b)| b.insts.contains(&inst))
        .map(|(id, _)| id)
}

/// Walks a collection def-use chain backwards looking for the value stored
/// at `idx` (Listing 1). Keys must be statically comparable constants for
/// the walk to step over an intervening write.
fn forward_read(f: &Function, c: ValueId, idx: ValueId, fuel: usize) -> Option<ValueId> {
    if fuel == 0 {
        return None;
    }
    let key = f.value_const(idx);
    let ValueDef::Inst(iid, _) = f.values[c].def else {
        return None;
    };
    match &f.insts[iid].kind {
        InstKind::Write {
            c: prev,
            idx: wkey,
            value,
        } => {
            if idx == *wkey {
                return Some(*value); // same SSA key value ⇒ must match
            }
            match (key, f.value_const(*wkey)) {
                (Some(a), Some(b)) if a != b => forward_read(f, *prev, idx, fuel - 1),
                _ => None,
            }
        }
        InstKind::Insert {
            c: prev,
            idx: wkey,
            value,
        } => {
            if idx == *wkey {
                return *value;
            }
            match (key, f.value_const(*wkey)) {
                (Some(a), Some(b)) if a != b => {
                    // For sequences an insert shifts indices; only walk
                    // through when the read index is strictly below the
                    // insertion point.
                    match (a.as_int(), b.as_int(), a.ty() == Type::Index) {
                        (Some(ka), Some(kb), true) if ka < kb => {
                            forward_read(f, *prev, idx, fuel - 1)
                        }
                        (_, _, false) => forward_read(f, *prev, idx, fuel - 1),
                        _ => None,
                    }
                }
                _ => None,
            }
        }
        InstKind::UsePhi { c: prev } | InstKind::Copy { c: prev } => {
            forward_read(f, *prev, idx, fuel - 1)
        }
        _ => None,
    }
}

/// Folds `size` through the collection chain when it is statically known.
/// Associative writes may grow the index space (writing an absent key
/// inserts it, §IV-B), so the walk only steps over sequence operations.
fn fold_size(types: &memoir_ir::TypeTable, f: &Function, c: ValueId, fuel: usize) -> Option<u64> {
    if fuel == 0 {
        return None;
    }
    let is_seq = |v: ValueId| matches!(types.get(f.value_ty(v)), Type::Seq(_));
    let ValueDef::Inst(iid, _) = f.values[c].def else {
        return None;
    };
    match &f.insts[iid].kind {
        InstKind::NewSeq { len, .. } => f
            .value_const(*len)
            .and_then(Constant::as_int)
            .map(|v| v as u64),
        InstKind::NewAssoc { .. } => Some(0),
        InstKind::Write { c: prev, .. } | InstKind::Swap { c: prev, .. } => {
            if is_seq(*prev) {
                fold_size(types, f, *prev, fuel - 1)
            } else {
                None
            }
        }
        InstKind::Insert { c: prev, .. } => {
            if is_seq(*prev) {
                fold_size(types, f, *prev, fuel - 1).map(|n| n + 1)
            } else {
                None
            }
        }
        InstKind::Remove { c: prev, .. } => {
            if is_seq(*prev) {
                fold_size(types, f, *prev, fuel - 1).map(|n| n.saturating_sub(1))
            } else {
                None
            }
        }
        InstKind::Copy { c: prev } | InstKind::UsePhi { c: prev } => {
            fold_size(types, f, *prev, fuel - 1)
        }
        _ => None,
    }
}

fn fold_bin(op: BinOp, a: Constant, b: Constant) -> Option<Constant> {
    match (a, b) {
        (Constant::Int(ty, x), Constant::Int(_, y)) => {
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_rem(y)
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32),
                BinOp::Shr => x.wrapping_shr(y as u32),
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            };
            Some(Constant::Int(ty, v))
        }
        (Constant::Bool(x), Constant::Bool(y)) => {
            let v = match op {
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                _ => return None,
            };
            Some(Constant::Bool(v))
        }
        (Constant::Float(ty, xb), Constant::Float(_, yb)) => {
            let (x, y) = (f64::from_bits(xb), f64::from_bits(yb));
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => return None,
            };
            Some(Constant::Float(ty, v.to_bits()))
        }
        _ => None,
    }
}

fn fold_cmp(op: CmpOp, a: Constant, b: Constant) -> Option<bool> {
    match (a, b) {
        (Constant::Int(ty, x), Constant::Int(_, y)) => {
            let ord = if matches!(
                ty,
                Type::U64 | Type::U32 | Type::U16 | Type::U8 | Type::Index
            ) {
                (x as u64).cmp(&(y as u64))
            } else {
                x.cmp(&y)
            };
            Some(apply_ord(op, ord))
        }
        (Constant::Bool(x), Constant::Bool(y)) => Some(apply_ord(op, x.cmp(&y))),
        (Constant::Float(_, xb), Constant::Float(_, yb)) => {
            let (x, y) = (f64::from_bits(xb), f64::from_bits(yb));
            Some(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            })
        }
        _ => None,
    }
}

fn apply_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

fn fold_cast(to: Type, c: Constant) -> Option<Constant> {
    match c {
        Constant::Int(_, v) if to.is_integer() => Some(Constant::Int(to, truncate(to, v))),
        Constant::Int(_, v) if to.is_float() => Some(Constant::Float(to, (v as f64).to_bits())),
        Constant::Bool(b) if to.is_integer() => Some(Constant::Int(to, b as i64)),
        Constant::Float(_, bits) if to.is_integer() => {
            Some(Constant::Int(to, truncate(to, f64::from_bits(bits) as i64)))
        }
        Constant::Float(_, bits) if to.is_float() => Some(Constant::Float(to, bits)),
        _ => None,
    }
}

fn truncate(t: Type, v: i64) -> i64 {
    match t {
        Type::I8 => v as i8 as i64,
        Type::U8 => v as u8 as i64,
        Type::I16 => v as i16 as i64,
        Type::U16 => v as u16 as i64,
        Type::I32 => v as i32 as i64,
        Type::U32 => v as u32 as i64,
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder};

    /// Listing 1: `map[0] = 10; map[1] = 11; return map[0];` folds to 10
    /// in MEMOIR SSA form.
    #[test]
    fn listing1_map_constant_propagates() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("work", Form::Ssa, |b| {
            let i32t = b.ty(Type::I32);
            let a0 = b.new_assoc(i32t, i32t);
            let k0 = b.i32(0);
            let k1 = b.i32(1);
            let v10 = b.i32(10);
            let v11 = b.i32(11);
            let a1 = b.write(a0, k0, v10);
            let a2 = b.write(a1, k1, v11);
            let r = b.read(a2, k0);
            b.returns(&[i32t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.element_reads_forwarded, 1);
        // The ret now returns the constant 10 directly.
        let f = &m.funcs[m.func_by_name("work").unwrap()];
        let mut returned = None;
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::Ret { values } = &f.insts[i].kind {
                returned = values.first().and_then(|&v| f.value_const(v));
            }
        }
        assert_eq!(returned, Some(Constant::i32(10)));
    }

    #[test]
    fn ambiguous_key_blocks_forwarding() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("work", Form::Ssa, |b| {
            let i32t = b.ty(Type::I32);
            let k_unknown = b.param("k", i32t);
            let a0 = b.new_assoc(i32t, i32t);
            let k0 = b.i32(0);
            let v10 = b.i32(10);
            let v11 = b.i32(11);
            let a1 = b.write(a0, k0, v10);
            let a2 = b.write(a1, k_unknown, v11); // may alias key 0
            let r = b.read(a2, k0);
            b.returns(&[i32t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.element_reads_forwarded, 0);
    }

    #[test]
    fn scalar_folding_chains() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let a = b.i64(6);
            let c = b.i64(7);
            let x = b.mul(a, c);
            let y = b.add(x, x);
            b.returns(&[b.func.value_ty(y)]);
            b.ret(vec![y]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert!(stats.scalars_folded >= 2);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let mut returned = None;
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::Ret { values } = &f.insts[i].kind {
                returned = values.first().and_then(|&v| f.value_const(v));
            }
        }
        assert_eq!(returned, Some(Constant::i64(84)));
    }

    #[test]
    fn size_folds_through_chain() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(3);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(1);
            let s1 = b.insert(s0, zero, Some(v));
            let s2 = b.write(s1, zero, v);
            let sz = b.size(s2);
            let idxt = b.ty(Type::Index);
            b.returns(&[idxt]);
            b.ret(vec![sz]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.sizes_folded, 1);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let mut returned = None;
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::Ret { values } = &f.insts[i].kind {
                returned = values.first().and_then(|&v| f.value_const(v));
            }
        }
        assert_eq!(returned, Some(Constant::index(4)));
    }

    #[test]
    fn constant_branch_becomes_jump() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::I64);
            let yes = b.block("yes");
            let no = b.block("no");
            let cond = b.bool(true);
            b.branch(cond, yes, no);
            b.switch_to(yes);
            let one = b.i64(1);
            b.returns(&[t]);
            b.ret(vec![one]);
            b.switch_to(no);
            let two = b.i64(2);
            b.ret(vec![two]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.branches_folded, 1);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        assert!(f
            .inst_ids_in_order()
            .iter()
            .any(|(_, i)| matches!(f.insts[*i].kind, InstKind::Jump { .. })));
    }

    /// Field-array load-store forwarding (the Extended-Array-SSA
    /// propagation of §VII-D's ConstantFold discussion).
    #[test]
    fn field_write_forwards_to_read() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t",
                vec![memoir_ir::Field {
                    name: "x".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        mb.func("f", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let v = b.i64(5);
            b.field_write(o, obj, 0, v);
            let r = b.field_read(o, obj, 0);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.element_reads_forwarded, 1);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::Ret { values } = &f.insts[i].kind {
                assert_eq!(f.value_const(values[0]), Some(Constant::i64(5)));
            }
        }
    }

    /// A write through a possibly-aliasing second reference kills the
    /// forwarding fact.
    #[test]
    fn aliasing_reference_blocks_field_forwarding() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t",
                vec![memoir_ir::Field {
                    name: "x".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        let ref_ty = mb.module.types.ref_of(obj);
        mb.func("f", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let p = b.param("p", ref_ty); // may alias o? (it cannot here,
                                          // but the analysis is per-value)
            let v5 = b.i64(5);
            let v9 = b.i64(9);
            b.field_write(o, obj, 0, v5);
            b.field_write(p, obj, 0, v9); // kills o's fact
            let r = b.field_read(o, obj, 0);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.element_reads_forwarded, 0);
    }

    /// An opaque extern call between write and read kills the fact.
    #[test]
    fn opaque_call_blocks_field_forwarding() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "t",
                vec![memoir_ir::Field {
                    name: "x".into(),
                    ty: i64t,
                }],
            )
            .unwrap();
        let ext = mb.module.add_extern(memoir_ir::ExternDecl {
            name: "io".into(),
            params: vec![],
            ret_tys: vec![],
            effects: memoir_ir::ExternEffects::unknown(),
        });
        mb.func("f", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let v = b.i64(5);
            b.field_write(o, obj, 0, v);
            b.call(memoir_ir::Callee::Extern(ext), vec![], &[]);
            let r = b.field_read(o, obj, 0);
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.element_reads_forwarded, 0);
    }

    /// In mut form a collection's def-use chain stops at its allocation,
    /// so size/read folding through the chain would ignore interleaved
    /// MUT ops — it must stay off until SSA construction.
    #[test]
    fn mut_form_blocks_collection_chain_folding() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let zero = b.index(0);
            let s = b.new_seq(i64t, zero);
            let v = b.i64(7);
            let sz0 = b.size(s);
            b.mut_insert(s, sz0, Some(v));
            let sz = b.size(s); // 1 at runtime; the chain says 0
            let r = b.read(s, zero); // 7 at runtime; the chain sees no write
            let szi = b.cast(Type::I64, sz);
            let out = b.add(szi, r);
            b.returns(&[i64t]);
            b.ret(vec![out]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.sizes_folded, 0, "mut-form size must not fold");
        assert_eq!(
            stats.element_reads_forwarded, 0,
            "mut-form read must not forward"
        );
    }

    #[test]
    fn same_operand_compare_folds() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let t = b.ty(Type::I64);
            let x = b.param("x", t);
            let e = b.cmp(CmpOp::Le, x, x);
            let boolt = b.ty(Type::Bool);
            b.returns(&[boolt]);
            b.ret(vec![e]);
        });
        let mut m = mb.finish();
        let stats = constprop(&mut m);
        assert_eq!(stats.scalars_folded, 1);
    }
}
