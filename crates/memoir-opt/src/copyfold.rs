//! USEφ construction and destruction (copy folding, §IV-B).
//!
//! `USEφ`s link reads of the same collection in control-flow order so that
//! sparse analyses can attach a lattice variable to each access. They are
//! not needed by every analysis and cost one instruction per read, so the
//! paper constructs them on demand and destructs them by copy folding.

use memoir_ir::{Form, InstKind, Module, ValueId};
use std::collections::HashMap;

/// Inserts a `USEφ` after every collection read (`read`, `has`, `size`),
/// rethreading later uses in the same block onto the new version. Returns
/// the number of USEφs constructed.
pub fn construct_use_phis(m: &mut Module) -> usize {
    let mut constructed = 0;
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Ssa {
            continue;
        }
        let f = &mut m.funcs[fid];
        for b in f.blocks.ids().collect::<Vec<_>>() {
            // Walk the block, inserting USEφ after each access and
            // renaming subsequent uses within the block.
            let mut pos = 0;
            while pos < f.blocks[b].insts.len() {
                let iid = f.blocks[b].insts[pos];
                let accessed: Option<ValueId> = match &f.insts[iid].kind {
                    InstKind::Read { c, .. } | InstKind::Has { c, .. } | InstKind::Size { c } => {
                        Some(*c)
                    }
                    _ => None,
                };
                if let Some(c) = accessed {
                    // Don't chain a USEφ onto another USEφ's operand twice
                    // in a row for the same access — each access gets one.
                    let ty = f.value_ty(c);
                    let (_, res) = f.insert_inst_at(b, pos + 1, InstKind::UsePhi { c }, &[ty]);
                    let new_v = res[0];
                    constructed += 1;
                    // Rename uses of `c` after the inserted USEφ in this
                    // block only (cross-block renaming would require full
                    // re-φ-insertion; block-local chains are what the
                    // per-access lattice needs).
                    for &later in f.blocks[b].insts.clone().iter().skip(pos + 2) {
                        let mut kind = f.insts[later].kind.clone();
                        let mut changed = false;
                        kind.visit_operands_mut(|v| {
                            if *v == c {
                                *v = new_v;
                                changed = true;
                            }
                        });
                        if changed {
                            f.insts[later].kind = kind;
                        }
                    }
                    pos += 2;
                } else {
                    pos += 1;
                }
            }
        }
    }
    constructed
}

/// Destructs every `USEφ` by copy folding: uses of the result are replaced
/// by the operand and the instruction is removed. Returns the number
/// folded.
pub fn destruct_use_phis(m: &mut Module) -> usize {
    let mut folded = 0;
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        let f = &mut m.funcs[fid];
        let mut replacements: HashMap<ValueId, ValueId> = HashMap::new();
        let mut removed = Vec::new();
        for (b, i) in f.inst_ids_in_order() {
            if let InstKind::UsePhi { c } = f.insts[i].kind {
                replacements.insert(f.insts[i].results[0], c);
                removed.push((b, i));
            }
        }
        folded += removed.len();
        for (b, i) in removed {
            f.remove_inst(b, i);
        }
        f.replace_uses_map(&replacements);
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{ModuleBuilder, Type};

    fn sample() -> memoir_ir::Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(2);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let one = b.index(1);
            let v = b.i64(3);
            let s1 = b.write(s0, zero, v);
            let s2 = b.write(s1, one, v);
            let a = b.read(s2, zero);
            let c = b.read(s2, one);
            let sum = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        mb.finish()
    }

    #[test]
    fn construct_then_destruct_is_identity_semantics() {
        let m0 = sample();
        let mut m = m0.clone();
        let n = construct_use_phis(&mut m);
        assert_eq!(n, 2, "one USEφ per read");
        memoir_ir::verifier::assert_valid(&m);
        // The second read consumes the first USEφ's result.
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let mut use_phi_results = Vec::new();
        let mut read_ops = Vec::new();
        for (_, i) in f.inst_ids_in_order() {
            match &f.insts[i].kind {
                InstKind::UsePhi { .. } => {
                    use_phi_results.push(f.insts[i].results[0]);
                }
                InstKind::Read { c, .. } => read_ops.push(*c),
                _ => {}
            }
        }
        assert_eq!(read_ops.len(), 2);
        assert_eq!(
            read_ops[1], use_phi_results[0],
            "reads are chained in CFG order"
        );

        let folded = destruct_use_phis(&mut m);
        assert_eq!(folded, 2);
        memoir_ir::verifier::assert_valid(&m);

        use memoir_interp::Interp;
        let mut i0 = Interp::new(&m0);
        let r0 = i0.run_by_name("f", vec![]).unwrap();
        let mut i1 = Interp::new(&m);
        let r1 = i1.run_by_name("f", vec![]).unwrap();
        assert_eq!(r0, r1);
    }
}
