//! Dead code elimination.
//!
//! Removes: pure instructions with no used results; unreachable blocks;
//! and — using the purity summaries — calls whose callee has no observable
//! effect and whose results are unused (`drop_effect_free_calls`, the
//! dead-call component of the DEE follow-up described in DESIGN.md §6).

use memoir_analysis::Purity;
use memoir_ir::{Callee, Effect, Form, InstKind, Module, ValueId};
use std::collections::HashSet;

/// Statistics from one DCE run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Pure instructions removed.
    pub insts_removed: usize,
    /// Unreachable blocks removed.
    pub blocks_removed: usize,
    /// Effect-free calls removed.
    pub calls_removed: usize,
}

/// Runs DCE on every function of the module.
pub fn dce(m: &mut Module) -> DceStats {
    dce_with(m, &mut passman::AnalysisManager::new())
}

/// Like [`dce`], but takes the purity summaries from a shared
/// [`passman::AnalysisManager`] so repeated pipeline runs (e.g. inside a
/// `fixpoint(...)` group) reuse them instead of rebuilding the call graph
/// each time.
pub fn dce_with(m: &mut Module, am: &mut passman::AnalysisManager<Module>) -> DceStats {
    let purity = am.get_module::<memoir_analysis::cached::CachedPurity>(m);
    let mut stats = DceStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        stats = add(stats, run_function(m, fid, &purity));
    }
    stats
}

fn add(a: DceStats, b: DceStats) -> DceStats {
    DceStats {
        insts_removed: a.insts_removed + b.insts_removed,
        blocks_removed: a.blocks_removed + b.blocks_removed,
        calls_removed: a.calls_removed + b.calls_removed,
    }
}

fn run_function(m: &mut Module, fid: memoir_ir::FuncId, purity: &Purity) -> DceStats {
    let mut stats = DceStats::default();
    loop {
        let f = &m.funcs[fid];
        // Used values.
        let mut used: HashSet<ValueId> = HashSet::new();
        for (_, i) in f.inst_ids_in_order() {
            f.insts[i].kind.visit_operands(|&v| {
                used.insert(v);
            });
        }
        // Find removable instructions.
        let mut to_remove: Vec<(memoir_ir::BlockId, memoir_ir::InstId)> = Vec::new();
        for (b, i) in f.inst_ids_in_order() {
            let inst = &f.insts[i];
            let any_used = inst.results.iter().any(|r| used.contains(r));
            if any_used {
                continue;
            }
            let removable = match inst.kind.effect() {
                Effect::Pure => true,
                Effect::ReadMem => true, // reads have no observable effect
                Effect::CallLike => {
                    if let InstKind::Call { callee, .. } = &inst.kind {
                        match callee {
                            Callee::Func(t) => {
                                let s = purity.summary(*t);
                                // A call whose by-ref writes cannot reach us
                                // (SSA form has no by-ref) and which is
                                // otherwise pure is removable.
                                let no_byref_effect =
                                    s.writes_params.is_empty() || m.funcs[fid].form == Form::Ssa;
                                s.writes_fields.is_empty()
                                    && !s.opaque
                                    && !s.allocates_objects
                                    && no_byref_effect
                            }
                            Callee::Extern(e) => {
                                let eff = m.externs[*e].effects;
                                !eff.opaque && !eff.writes_args
                            }
                        }
                    } else {
                        false
                    }
                }
                _ => false,
            };
            if removable {
                if matches!(inst.kind, InstKind::Call { .. }) {
                    stats.calls_removed += 1;
                } else {
                    stats.insts_removed += 1;
                }
                to_remove.push((b, i));
            }
        }
        if to_remove.is_empty() {
            break;
        }
        let f = &mut m.funcs[fid];
        for (b, i) in to_remove {
            f.remove_inst(b, i);
        }
    }

    // Remove unreachable blocks (replace their contents with
    // `unreachable` so ids stay stable and φs drop their edges).
    let f = &mut m.funcs[fid];
    let reachable: HashSet<memoir_ir::BlockId> = f.reverse_postorder().into_iter().collect();
    let all: Vec<memoir_ir::BlockId> = f.blocks.ids().collect();
    for b in all {
        if reachable.contains(&b) || f.blocks[b].insts.is_empty() {
            continue;
        }
        stats.blocks_removed += 1;
        // Remove φ incomings that referenced this block.
        for other in f.blocks.ids().collect::<Vec<_>>() {
            for i in f.blocks[other].insts.clone() {
                if let InstKind::Phi { incoming } = &mut f.insts[i].kind {
                    incoming.retain(|(p, _)| *p != b);
                }
            }
        }
        f.blocks[b].insts.clear();
        let (_, _) = f.append_inst(b, InstKind::Unreachable, &[]);
    }
    stats
}

/// Removes calls that cannot affect the observable live state — used after
/// DEE to prune recursion into fully-dead ranges. A call is dropped when
/// the callee's summary is effect-free apart from mutating by-ref
/// arguments that the *caller* never reads afterwards.
pub fn drop_effect_free_calls(m: &mut Module) -> usize {
    let before = count_calls(m);
    dce(m);
    count_calls(m).saturating_sub(before)
}

fn count_calls(m: &Module) -> usize {
    m.funcs
        .iter()
        .map(|(_, f)| {
            f.inst_ids_in_order()
                .iter()
                .filter(|(_, i)| matches!(f.insts[*i].kind, InstKind::Call { .. }))
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Form, ModuleBuilder, Type};

    #[test]
    fn unused_pure_insts_removed() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let x = b.i64(1);
            let y = b.i64(2);
            let _dead = b.add(x, y);
            let _dead2 = b.mul(x, y);
            let live = b.add(y, y);
            let t = b.ty(Type::I64);
            b.returns(&[t]);
            b.ret(vec![live]);
        });
        let mut m = mb.finish();
        let stats = dce(&mut m);
        assert_eq!(stats.insts_removed, 2);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        assert_eq!(f.live_inst_count(), 2); // add + ret
    }

    #[test]
    fn transitively_dead_chain_removed() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let x = b.i64(1);
            let a = b.add(x, x); // dead via chain
            let c = b.mul(a, a); // only user of a, itself dead
            let _ = c;
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = dce(&mut m);
        assert_eq!(stats.insts_removed, 2);
    }

    #[test]
    fn dead_collection_chain_removed() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(4);
            let s0 = b.new_seq(i64t, n);
            let zero = b.index(0);
            let v = b.i64(1);
            let _s1 = b.write(s0, zero, v); // never read
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = dce(&mut m);
        assert_eq!(stats.insts_removed, 2, "write and allocation both die");
    }

    #[test]
    fn pure_call_with_unused_result_removed() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let helper = mb.func("helper", Form::Ssa, |b| {
            let x = b.param("x", i64t);
            let y = b.add(x, x);
            b.returns(&[i64t]);
            b.ret(vec![y]);
        });
        mb.func("main", Form::Ssa, |b| {
            let x = b.i64(3);
            let _unused = b.call(memoir_ir::Callee::Func(helper), vec![x], &[i64t]);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = dce(&mut m);
        assert_eq!(stats.calls_removed, 1);
    }

    #[test]
    fn opaque_extern_call_kept() {
        let mut mb = ModuleBuilder::new("m");
        let ext = mb.module.add_extern(memoir_ir::ExternDecl {
            name: "io".into(),
            params: vec![],
            ret_tys: vec![],
            effects: memoir_ir::ExternEffects::unknown(),
        });
        mb.func("main", Form::Ssa, |b| {
            b.call(memoir_ir::Callee::Extern(ext), vec![], &[]);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = dce(&mut m);
        assert_eq!(stats.calls_removed, 0);
    }

    #[test]
    fn unreachable_block_cleared() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let dead = b.block("dead");
            b.ret(vec![]);
            b.switch_to(dead);
            let x = b.i64(1);
            let y = b.add(x, x);
            let _ = y;
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = dce(&mut m);
        assert_eq!(stats.blocks_removed, 1);
    }
}
