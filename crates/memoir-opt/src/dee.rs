//! Dead Element Elimination (paper §V, Alg. 2; Listings 2–4).
//!
//! Using the live range analysis, DEE rewrites sequence construction and
//! access to operate only on the live slice:
//!
//! * **Intra-function (strict) DEE** — for a `WRITE`/`INSERT`/`SWAP` whose
//!   result's *sound* live range `[ℓ : u)` is materializable and not full,
//!   the operation is guarded so it only executes when its target index
//!   intersects the live slice (Alg. 2's rewrite, followed by constant
//!   folding and simplification). This mode is fully
//!   semantics-preserving.
//! * **Call specialization (escape) DEE** — the mcf path (Listing 4): a
//!   call whose returned sequence has a bounded live range in the caller
//!   is redirected to a specialized clone taking `%a`/`%b` bounds. Inside
//!   the clone, writes reaching only the caller-visible state are guarded
//!   against `[%a : %b)`, recursive calls thread the bounds, an
//!   entry guard returns immediately when the live slice is empty, and —
//!   when a write-range summary is available — recursive calls whose
//!   write region cannot intersect the live slice are skipped entirely.
//!   This turns mcf's qsort from `O(n log n)` into `O(n + B log B)`
//!   (§VII-C). Escape mode preserves the *live slice* of the result (the
//!   paper's correctness model for mcf; see DESIGN.md §6): elements
//!   outside `[%a : %b)` may hold stale values.

use crate::materialize::{Materializer, Point};
use memoir_analysis::cached::CachedDefUse;
use memoir_analysis::exprtree::{Expr, Term};
use memoir_analysis::idxrange::IndexRanges;
use memoir_analysis::liverange::{live_ranges, LiveRangeConfig};
use memoir_analysis::range::Range;
use memoir_ir::{
    BlockId, Callee, Form, FuncId, Function, InstId, InstKind, Module, Type, TypeId, ValueId,
};
use passman::AnalysisManager;
use std::collections::HashMap;

/// Statistics from a DEE run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeeStats {
    /// Writes wrapped in live-range guards.
    pub writes_guarded: usize,
    /// Inserts wrapped in live-range guards.
    pub inserts_guarded: usize,
    /// Swaps rewritten to the three-way guarded form (Listing 4).
    pub swaps_guarded: usize,
    /// Operations dropped outright (live range statically empty).
    pub ops_dropped: usize,
    /// Functions cloned with `%a`/`%b` live-range parameters.
    pub functions_specialized: usize,
    /// Call sites redirected to specializations.
    pub calls_specialized: usize,
    /// Recursive calls guarded by write-range/live-range intersection
    /// tests (the recursion pruning that yields the complexity win).
    pub recursive_calls_pruned: usize,
}

/// Runs strict (fully semantics-preserving) intra-function DEE on every
/// SSA function.
pub fn dee_strict(m: &mut Module) -> DeeStats {
    dee_strict_with(m, &mut AnalysisManager::new())
}

/// Runs strict DEE, sharing def-use chains through `am` and invalidating
/// only the functions it actually rewrote.
pub fn dee_strict_with(m: &mut Module, am: &mut AnalysisManager<Module>) -> DeeStats {
    let mut stats = DeeStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Ssa {
            continue;
        }
        stats = merge(stats, dee_function(m, fid, &LiveRangeConfig::sound(), am));
    }
    stats
}

/// Intra-function DEE under a given live-range configuration: drops
/// operations whose result is never observed, and guards writes/inserts
/// whose live slice is a materializable strict sub-range.
fn dee_function(
    m: &mut Module,
    fid: FuncId,
    cfg: &LiveRangeConfig,
    am: &mut AnalysisManager<Module>,
) -> DeeStats {
    let mut stats = DeeStats::default();
    let lr = live_ranges(m, fid, cfg);

    enum Site {
        Drop(InstId),
        GuardWrite(InstId, Range),
        GuardInsert(InstId, Range),
    }
    let mut sites = Vec::new();
    {
        let du = am.get::<CachedDefUse>(m, fid);
        let f = &m.funcs[fid];
        for (_, i) in f.inst_ids_in_order() {
            let inst = &f.insts[i];
            let Some(&result) = inst.results.first() else {
                continue;
            };
            if !matches!(m.types.get(f.value_ty(result)), Type::Seq(_)) {
                continue;
            }
            let range = lr.range(result);
            if range.mentions_caller() || range.is_full() {
                continue;
            }
            match &inst.kind {
                InstKind::Write { .. } => {
                    if range.is_empty_const() && du.use_count(result) > 0 {
                        sites.push(Site::Drop(i));
                    } else if !range.is_empty_const() {
                        sites.push(Site::GuardWrite(i, range));
                    }
                }
                InstKind::Insert { .. } => {
                    // An insert changes the index space; only a fully dead
                    // result may be dropped, and guarding requires the
                    // suffix to be dead too (hi bound only, Alg. 2).
                    if range.is_empty_const() && du.use_count(result) > 0 {
                        sites.push(Site::Drop(i));
                    } else if !range.is_empty_const() && !range_mentions_end(&range) {
                        sites.push(Site::GuardInsert(i, range));
                    }
                }
                _ => {}
            }
        }
    }

    for site in sites {
        match site {
            Site::Drop(inst) => {
                let f = &mut m.funcs[fid];
                let Some((b, _)) = find_inst(f, inst) else {
                    continue;
                };
                // Read the forward-to operand *now*: an earlier drop in
                // this batch may already have rewritten it (capturing it
                // at site-collection time forwarded uses to a value whose
                // definition was just removed).
                let fwd = match &f.insts[inst].kind {
                    InstKind::Write { c, .. } | InstKind::Insert { c, .. } => *c,
                    _ => continue,
                };
                let result = f.insts[inst].results[0];
                f.replace_all_uses(result, fwd);
                f.remove_inst(b, inst);
                stats.ops_dropped += 1;
            }
            Site::GuardWrite(inst, range) => {
                if let Some((lo_v, hi_v)) = materialize_bounds(m, fid, inst, &range) {
                    guard_write(m, fid, inst, lo_v, hi_v);
                    stats.writes_guarded += 1;
                }
            }
            Site::GuardInsert(inst, range) => {
                if let Some((lo_v, hi_v)) = materialize_bounds(m, fid, inst, &range) {
                    let _ = lo_v;
                    guard_insert(m, fid, inst, lo_v, hi_v);
                    stats.inserts_guarded += 1;
                }
            }
        }
    }
    if stats != DeeStats::default() {
        am.invalidate(fid);
    }
    stats
}

/// Materializes a live range's bounds immediately before `inst`,
/// providing `size(S0)` for the symbolic `end`.
fn materialize_bounds(
    m: &mut Module,
    fid: FuncId,
    inst: InstId,
    range: &Range,
) -> Option<(ValueId, ValueId)> {
    let index_ty = m.types.intern(Type::Index);
    let f = &mut m.funcs[fid];
    let (block, pos) = find_inst(f, inst)?;
    let source = match &f.insts[inst].kind {
        InstKind::Write { c, .. } | InstKind::Insert { c, .. } | InstKind::Swap { c, .. } => *c,
        _ => return None,
    };
    // Negative symbolic lower bounds denote the same liveness as zero
    // and would wrap as unsigned indices.
    let range = range.clamp_lo_zero();
    let mut point = Point { block, index: pos };
    let mut mat = Materializer::new(f, index_ty);
    if range_mentions_end(&range) {
        let (_, sz) = mat_insert_size(mat.f, point, source, index_ty);
        mat.end_value = Some(sz);
        point.index += 1;
        mat.refresh();
    }
    let (lo_v, n1) = mat.materialize(&range.lo, point)?;
    point.index += n1;
    let (hi_v, _) = mat.materialize(&range.hi, point)?;
    Some((lo_v, hi_v))
}

/// Options for call-specialization DEE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeeOptions {
    /// Guard element writes/swaps against `[%a : %b)` (the faithful
    /// Listing 4 rewrite). Guarded half-swaps may leave stale values in
    /// the dead region, so results are exact only for the *live slice*
    /// (the paper's mcf correctness model). With this off, the
    /// specialization keeps only the entry guard and recursion pruning —
    /// a partial quicksort — which is exact whenever the caller observes
    /// only the live window.
    pub guard_element_writes: bool,
}

impl Default for DeeOptions {
    fn default() -> Self {
        DeeOptions {
            guard_element_writes: true,
        }
    }
}

impl DeeOptions {
    /// The provably-exact pruning-only mode.
    pub fn exact() -> Self {
        DeeOptions {
            guard_element_writes: false,
        }
    }
}

/// Runs call-specialization DEE (the paper's mcf methodology): for every
/// call whose returned sequence has a bounded live range in the caller,
/// create a `[%a : %b)`-specialized callee clone and redirect the call.
pub fn dee_specialize_calls(m: &mut Module) -> DeeStats {
    dee_specialize_calls_with(m, DeeOptions::default())
}

/// [`dee_specialize_calls`] with explicit [`DeeOptions`].
pub fn dee_specialize_calls_with(m: &mut Module, opts: DeeOptions) -> DeeStats {
    let mut stats = DeeStats::default();
    let mut specializations: HashMap<FuncId, FuncId> = HashMap::new();

    // Examine every call site in every SSA function.
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Ssa {
            continue;
        }
        // Caller-side liveness under the paper-methodology configuration
        // (callee reads are accounted by the specialization; see
        // LiveRangeConfig::paper and DESIGN.md §6).
        let lr = live_ranges(m, fid, &LiveRangeConfig::paper());
        // Collect candidate call sites: (block, inst, target, result index,
        // live range, seq argument position).
        struct Candidate {
            block: BlockId,
            inst: InstId,
            target: FuncId,
            range: Range,
            arg_pos: usize,
        }
        let mut candidates = Vec::new();
        {
            let f = &m.funcs[fid];
            for (b, i) in f.inst_ids_in_order() {
                let InstKind::Call {
                    callee: Callee::Func(target),
                    args,
                } = &f.insts[i].kind
                else {
                    continue;
                };
                if *target == fid {
                    continue; // self-recursive sites are handled inside clones
                }
                if m.funcs[*target].form != Form::Ssa {
                    continue;
                }
                // Find a seq-typed result whose live range is bounded.
                for (ri, &r) in f.insts[i].results.iter().enumerate() {
                    if !matches!(m.types.get(f.value_ty(r)), Type::Seq(_)) {
                        continue;
                    }
                    let range = lr.range(r).clamp_lo_zero();
                    if range.is_full() || range.is_empty_const() || range.mentions_caller() {
                        continue;
                    }
                    // The returned seq must alias a parameter of the callee
                    // (so bounds apply to the threaded storage).
                    let Some(param_pos) = ret_param_root(m, *target, ri) else {
                        continue;
                    };
                    if args.get(param_pos).is_none() {
                        continue;
                    }
                    candidates.push(Candidate {
                        block: b,
                        inst: i,
                        target: *target,
                        range,
                        arg_pos: param_pos,
                    });
                    break; // one specialization per call
                }
            }
        }

        for cand in candidates {
            // Build or reuse the specialization.
            let spec = match specializations.get(&cand.target) {
                Some(&s) => s,
                None => {
                    let s = match specialize_function(m, cand.target, &mut stats, opts) {
                        Some(s) => s,
                        None => continue,
                    };
                    specializations.insert(cand.target, s);
                    stats.functions_specialized += 1;
                    s
                }
            };
            // Materialize ℓ and u before the call in the caller.
            let index_ty = m.types.intern(Type::Index);
            let f = &mut m.funcs[fid];
            let Some(pos) = f.blocks[cand.block]
                .insts
                .iter()
                .position(|&x| x == cand.inst)
            else {
                continue;
            };
            // `end` in the caller range refers to the result's index
            // space; sequences flowing through a specializable callee keep
            // their length (the callee mutates the threaded storage), so
            // size(arg) materializes it.
            let arg = match &f.insts[cand.inst].kind {
                InstKind::Call { args, .. } => args[cand.arg_pos],
                _ => continue,
            };
            let needs_end = range_mentions_end(&cand.range);
            let mut point = Point {
                block: cand.block,
                index: pos,
            };
            let mut mat = Materializer::new(f, index_ty);
            if needs_end {
                let (_, res) = mat_insert_size(mat.f, point, arg, index_ty);
                mat.end_value = Some(res);
                point.index += 1;
                mat.refresh();
            }
            let Some((lo_v, n1)) = mat.materialize(&cand.range.lo, point) else {
                continue;
            };
            point.index += n1;
            let Some((hi_v, n2)) = mat.materialize(&cand.range.hi, point) else {
                continue;
            };
            let _ = n2;
            // Redirect the call.
            let f = &mut m.funcs[fid];
            if let InstKind::Call { callee, args } = &mut f.insts[cand.inst].kind {
                *callee = Callee::Func(spec);
                args.push(lo_v);
                args.push(hi_v);
                stats.calls_specialized += 1;
            }
        }
    }
    stats
}

fn mat_insert_size(
    f: &mut Function,
    point: Point,
    seq: ValueId,
    index_ty: TypeId,
) -> (InstId, ValueId) {
    let (iid, res) = f.insert_inst_at(
        point.block,
        point.index,
        InstKind::Size { c: seq },
        &[index_ty],
    );
    (iid, res[0])
}

fn range_mentions_end(r: &Range) -> bool {
    fn mentions(e: &Expr) -> bool {
        match e {
            Expr::Affine(a) => a.terms.contains_key(&Term::End),
            Expr::Min(es) | Expr::Max(es) => es.iter().any(mentions),
            Expr::Unknown => false,
        }
    }
    mentions(&r.lo) || mentions(&r.hi)
}

/// Which parameter the callee's `ret` position `ri` structurally roots at
/// (every ret site must agree).
fn ret_param_root(m: &Module, fid: FuncId, ri: usize) -> Option<usize> {
    let f = &m.funcs[fid];
    let mut root: Option<usize> = None;
    for (_, i) in f.inst_ids_in_order() {
        if let InstKind::Ret { values } = &f.insts[i].kind {
            let v = *values.get(ri)?;
            let p = trace_param(f, v, &mut Vec::new())?;
            match (root, p) {
                (_, usize::MAX) => {}
                (None, p) => root = Some(p),
                (Some(r), p) if r == p => {}
                _ => return None,
            }
        }
    }
    root
}

fn trace_param(f: &Function, v: ValueId, visiting: &mut Vec<ValueId>) -> Option<usize> {
    if visiting.contains(&v) {
        return Some(usize::MAX); // agnostic (cycle)
    }
    match &f.values[v].def {
        memoir_ir::ValueDef::Param(i) => Some(*i as usize),
        memoir_ir::ValueDef::Const(_) => None,
        memoir_ir::ValueDef::Inst(iid, ri) => {
            visiting.push(v);
            let r = match &f.insts[*iid].kind {
                InstKind::Write { c, .. }
                | InstKind::Insert { c, .. }
                | InstKind::InsertSeq { c, .. }
                | InstKind::Remove { c, .. }
                | InstKind::RemoveRange { c, .. }
                | InstKind::Swap { c, .. }
                | InstKind::UsePhi { c } => trace_param(f, *c, visiting),
                InstKind::Swap2 { a, b, .. } => {
                    trace_param(f, if *ri == 0 { *a } else { *b }, visiting)
                }
                InstKind::Phi { incoming } => {
                    let mut root = None;
                    let mut ok = true;
                    for (_, inc) in incoming {
                        match trace_param(f, *inc, visiting) {
                            Some(usize::MAX) => {}
                            Some(p) => match root {
                                None => root = Some(p),
                                Some(r) if r == p => {}
                                _ => {
                                    ok = false;
                                    break;
                                }
                            },
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        root.or(Some(usize::MAX))
                    } else {
                        None
                    }
                }
                InstKind::Call { args, .. } => {
                    // Through recursion: the self-call returns the threaded
                    // arg (position matches because the clone preserves ret
                    // structure). Approximate by tracing the arg at the
                    // same position when arities line up.
                    args.get(*ri as usize)
                        .and_then(|&a| trace_param(f, a, visiting))
                }
                _ => None,
            };
            visiting.pop();
            r
        }
    }
}

fn merge(a: DeeStats, b: DeeStats) -> DeeStats {
    DeeStats {
        writes_guarded: a.writes_guarded + b.writes_guarded,
        inserts_guarded: a.inserts_guarded + b.inserts_guarded,
        swaps_guarded: a.swaps_guarded + b.swaps_guarded,
        ops_dropped: a.ops_dropped + b.ops_dropped,
        functions_specialized: a.functions_specialized + b.functions_specialized,
        calls_specialized: a.calls_specialized + b.calls_specialized,
        recursive_calls_pruned: a.recursive_calls_pruned + b.recursive_calls_pruned,
    }
}

// ======================================================================
// Specialization (escape mode)
// ======================================================================

/// Clones `fid` into `fid__dee` with two extra `index` params `%a`, `%b`,
/// guards its writes against `[%a : %b)`, threads the bounds through
/// recursive calls, and prunes recursion outside the live slice.
fn specialize_function(
    m: &mut Module,
    fid: FuncId,
    stats: &mut DeeStats,
    opts: DeeOptions,
) -> Option<FuncId> {
    // Write-range summary over params, for recursion pruning.
    let summary = write_range_summary(m, fid);

    let mut g = m.funcs[fid].clone();
    g.name = format!("{}__dee", g.name);
    let index_ty = m.types.intern(Type::Index);
    let a_param = g.add_param("dee_a", index_ty, false);
    let b_param = g.add_param("dee_b", index_ty, false);
    let spec_id = m.funcs.push(g);

    // Redirect self-calls to the specialization, threading %a/%b; insert
    // pruning guards where the summary proves non-intersection.
    retarget_self_calls(m, fid, spec_id, a_param, b_param, summary.as_ref(), stats);

    // Entry guard: if %a >= %b, nothing inside the live slice can change —
    // return the inputs unchanged (valid because every write will be
    // guarded below and recursion threads the same empty slice).
    insert_entry_guard(m, spec_id, a_param, b_param);

    // Guard writes against [%a : %b) using the escape live ranges
    // (Listing 4 mode only).
    if !opts.guard_element_writes {
        return Some(spec_id);
    }
    let changed = guard_writes(m, spec_id, a_param, b_param, stats);
    if !changed {
        // Nothing was guardable — drop the idea (leave the clone; DCE of
        // unused functions is out of scope, the clone is simply unused).
        return Some(spec_id);
    }
    Some(spec_id)
}

/// Computes a symbolic summary `[lo : hi)` (over parameter values) of the
/// indices this function may write, or `None` if unresolvable.
fn write_range_summary(m: &Module, fid: FuncId) -> Option<Range> {
    let f = &m.funcs[fid];
    let idx = IndexRanges::new(f);
    let mut acc: Option<Range> = None;
    let join = |r: Range, acc: &mut Option<Range>| {
        *acc = Some(match acc.take() {
            None => r,
            Some(prev) => prev.join(&r),
        });
    };
    for (_, i) in f.inst_ids_in_order() {
        match &f.insts[i].kind {
            InstKind::Write { c, idx: k, .. }
            | InstKind::Rmw { c, idx: k, .. }
            | InstKind::MutRmw { c, idx: k, .. }
                if is_seq(m, f, *c) =>
            {
                let r = idx.range_of(*k);
                if r.lo == Expr::Unknown || r.hi == Expr::Unknown {
                    return None;
                }
                let r = normalize_to_params(f, &r)?;
                if !params_only(f, &r) {
                    return None;
                }
                join(r, &mut acc);
            }
            InstKind::Swap { c, from, to, at } if is_seq(m, f, *c) => {
                let rf = idx.range_of(*from);
                let rt = idx.range_of(*to);
                let ra = idx.range_of(*at);
                for r in [&rf, &rt, &ra] {
                    if r.lo == Expr::Unknown || r.hi == Expr::Unknown {
                        return None;
                    }
                }
                // Written region: [from.lo : to.hi) ∪ [at.lo : at.hi + (to-from).width)
                // approximated by [min(from.lo, at.lo) : max(to.hi, at.hi + width)).
                // For single-element swaps (to = from+1), at-range width is 1.
                let first = Range::new(rf.lo.clone(), rt.hi.clone());
                let width_hint = 1; // conservative for the common element swap
                let second = Range::new(ra.lo.clone(), ra.hi.offset(width_hint - 1));
                let joined = normalize_to_params(f, &first.join(&second))?;
                if !params_only(f, &joined) {
                    return None;
                }
                join(joined, &mut acc);
            }
            InstKind::Insert { c, .. }
            | InstKind::InsertSeq { c, .. }
            | InstKind::Remove { c, .. }
            | InstKind::RemoveRange { c, .. }
            | InstKind::Swap2 { a: c, .. }
                if is_seq(m, f, *c) =>
            {
                return None; // index-space changes defeat the summary
            }
            InstKind::Call {
                callee: Callee::Func(t),
                ..
            } if *t == fid => {
                // Self recursion: assume the recursive write range is the
                // substituted summary; since the summary we are computing
                // must *contain* it and qsort-style recursion narrows its
                // range, the parent range covers it. (Optimistic;验证d by
                // the range check below being over params.)
            }
            InstKind::Call {
                callee: Callee::Func(_),
                ..
            } => return None,
            _ => {}
        }
    }
    acc
}

fn is_seq(m: &Module, f: &Function, v: ValueId) -> bool {
    matches!(m.types.get(f.value_ty(v)), Type::Seq(_))
}

/// Whether every value mentioned by a range is a parameter.
fn params_only(f: &Function, r: &Range) -> bool {
    r.lo.values()
        .iter()
        .chain(r.hi.values().iter())
        .all(|&v| matches!(f.values[v].def, memoir_ir::ValueDef::Param(_)))
}

/// Expands a value into an expression over function parameters and
/// constants, following `add`/`sub`-by-constant and `min`/`max` chains
/// (e.g. `pivot = hi - 1` becomes `hi - 1`). `None` when the value is not
/// expressible.
fn param_affine(f: &Function, v: ValueId, depth: usize) -> Option<Expr> {
    if depth == 0 {
        return None;
    }
    if let Some(c) = f.value_const(v).and_then(memoir_ir::Constant::as_int) {
        return Some(Expr::constant(c));
    }
    match &f.values[v].def {
        memoir_ir::ValueDef::Param(_) => Some(Expr::value(v)),
        memoir_ir::ValueDef::Const(_) => None,
        memoir_ir::ValueDef::Inst(iid, _) => match &f.insts[*iid].kind {
            InstKind::Bin {
                op: memoir_ir::BinOp::Add,
                lhs,
                rhs,
            } => {
                let a = param_affine(f, *lhs, depth - 1)?;
                let b = param_affine(f, *rhs, depth - 1)?;
                Some(a.add_expr(&b))
            }
            InstKind::Bin {
                op: memoir_ir::BinOp::Sub,
                lhs,
                rhs,
            } => {
                let a = param_affine(f, *lhs, depth - 1)?;
                let c = f.value_const(*rhs).and_then(memoir_ir::Constant::as_int)?;
                Some(a.offset(-c))
            }
            InstKind::Bin {
                op: memoir_ir::BinOp::Min,
                lhs,
                rhs,
            } => {
                let a = param_affine(f, *lhs, depth - 1)?;
                let b = param_affine(f, *rhs, depth - 1)?;
                Some(Expr::min2(a, b))
            }
            InstKind::Bin {
                op: memoir_ir::BinOp::Max,
                lhs,
                rhs,
            } => {
                let a = param_affine(f, *lhs, depth - 1)?;
                let b = param_affine(f, *rhs, depth - 1)?;
                Some(Expr::max2(a, b))
            }
            _ => None,
        },
    }
}

/// Rewrites a range's bounds into param-affine form; `None` when any
/// mentioned value is not expressible over the parameters.
fn normalize_to_params(f: &Function, r: &Range) -> Option<Range> {
    let rewrite = |e: &Expr| -> Option<Expr> {
        let out = e.substitute(&|t| {
            if let Term::Value(v) = t {
                if !matches!(f.values[v].def, memoir_ir::ValueDef::Param(_)) {
                    // Failure is signalled by Unknown (substitute has no
                    // error channel); checked below.
                    return Some(param_affine(f, v, 8).unwrap_or(Expr::Unknown));
                }
            }
            None
        });
        if out == Expr::Unknown || contains_unknown(&out) {
            None
        } else {
            Some(out)
        }
    };
    Some(Range::new(rewrite(&r.lo)?, rewrite(&r.hi)?))
}

fn contains_unknown(e: &Expr) -> bool {
    match e {
        Expr::Unknown => true,
        Expr::Min(es) | Expr::Max(es) => es.iter().any(contains_unknown),
        Expr::Affine(_) => false,
    }
}

/// Redirects self-calls of the original inside the clone to the clone,
/// appending `%a`/`%b`, and — when a write summary is available — wraps
/// the call in an intersection guard.
fn retarget_self_calls(
    m: &mut Module,
    original: FuncId,
    spec: FuncId,
    a_param: ValueId,
    b_param: ValueId,
    summary: Option<&Range>,
    stats: &mut DeeStats,
) {
    // Pass 1: retarget and collect sites for pruning.
    let mut prune_sites: Vec<InstId> = Vec::new();
    {
        let g = &mut m.funcs[spec];
        for (_, i) in g.inst_ids_in_order() {
            if let InstKind::Call { callee, args } = &mut g.insts[i].kind {
                if *callee == Callee::Func(original) {
                    *callee = Callee::Func(spec);
                    args.push(a_param);
                    args.push(b_param);
                    prune_sites.push(i);
                }
            }
        }
    }
    let Some(summary) = summary else { return };

    // Pass 2: guard each recursive call with the intersection test
    //   call is needed iff  sub_lo < %b  and  %a < sub_hi
    // where [sub_lo : sub_hi) is the summary substituted with the call's
    // actual arguments.
    let index_ty = m.types.intern(Type::Index);
    let bool_ty = m.types.intern(Type::Bool);
    for call_inst in prune_sites {
        let g = &m.funcs[spec];
        let Some((block, pos)) = find_inst(g, call_inst) else {
            continue;
        };
        let InstKind::Call { args, .. } = &g.insts[call_inst].kind else {
            continue;
        };
        let args = args.clone();
        // Substitute params → actual args in the summary.
        let params = g.param_values.clone();
        let subst = |t: Term| -> Option<Expr> {
            if let Term::Value(v) = t {
                if let Some(pi) = params.iter().position(|&p| p == v) {
                    return args.get(pi).map(|&a| Expr::value(a));
                }
            }
            None
        };
        let sub = summary.substitute(&subst);
        if sub.lo == Expr::Unknown || sub.hi == Expr::Unknown {
            continue;
        }
        // Results of the call must be forwardable when skipped: each
        // result's value when skipped is the corresponding threaded arg
        // (position-aligned, as in trace_param).
        let results = m.funcs[spec].insts[call_inst].results.clone();
        let fallbacks: Vec<ValueId> = results
            .iter()
            .enumerate()
            .map(|(ri, _)| args.get(ri).copied())
            .collect::<Option<Vec<_>>>()
            .unwrap_or_default();
        if fallbacks.len() != results.len() {
            continue;
        }
        // Check the fallback types match.
        {
            let g = &m.funcs[spec];
            if !results
                .iter()
                .zip(&fallbacks)
                .all(|(&r, &fb)| g.value_ty(r) == g.value_ty(fb))
            {
                continue;
            }
        }

        // Materialize sub.lo and sub.hi before the call.
        let g = &mut m.funcs[spec];
        let mut point = Point { block, index: pos };
        let mut mat = Materializer::new(g, index_ty);
        let Some((lo_v, n1)) = mat.materialize(&sub.lo, point) else {
            continue;
        };
        point.index += n1;
        let Some((hi_v, n2)) = mat.materialize(&sub.hi, point) else {
            continue;
        };
        point.index += n2;

        // cond = (lo_v < %b) and (%a < hi_v)
        let g = &mut m.funcs[spec];
        let (_, c1) = g.insert_inst_at(
            block,
            point.index,
            InstKind::Cmp {
                op: memoir_ir::CmpOp::Lt,
                lhs: lo_v,
                rhs: b_param,
            },
            &[bool_ty],
        );
        let (_, c2) = g.insert_inst_at(
            block,
            point.index + 1,
            InstKind::Cmp {
                op: memoir_ir::CmpOp::Lt,
                lhs: a_param,
                rhs: hi_v,
            },
            &[bool_ty],
        );
        let (_, cond) = g.insert_inst_at(
            block,
            point.index + 2,
            InstKind::Bin {
                op: memoir_ir::BinOp::And,
                lhs: c1[0],
                rhs: c2[0],
            },
            &[bool_ty],
        );
        let call_pos = point.index + 3;
        // Split: block keeps [0..call_pos), `do_call` holds the call,
        // `cont` holds the rest; φs merge results with fallbacks.
        let (do_call, cont) = isolate_inst(g, block, call_pos, cond[0]);
        // Add φs in cont for each result.
        for (ri, &r) in results.iter().enumerate() {
            let ty = g.value_ty(r);
            let (_, phi) = g.insert_inst_at(
                cont,
                ri,
                InstKind::Phi {
                    incoming: vec![(do_call, r), (block, fallbacks[ri])],
                },
                &[ty],
            );
            let phi_v = phi[0];
            // Replace uses of r (except in the φ itself) with φ.
            replace_uses_except(g, r, phi_v, cont, ri);
        }
        stats.recursive_calls_pruned += 1;
    }
}

/// Splits `block` so that the instruction at `pos` sits alone in a new
/// block executed only when `cond` holds; returns (guarded-block,
/// continuation-block). `block` ends with `br cond, guarded, cont`.
fn isolate_inst(f: &mut Function, block: BlockId, pos: usize, cond: ValueId) -> (BlockId, BlockId) {
    let guarded = f.add_block("dee_call");
    let cont = f.add_block("dee_cont");
    let tail: Vec<InstId> = f.blocks[block].insts.drain(pos..).collect();
    let (inst, rest) = tail.split_first().expect("instruction at pos");
    f.blocks[guarded].insts.push(*inst);
    f.blocks[cont].insts.extend(rest.iter().copied());
    // Fix φs in successors that referenced `block` as predecessor.
    let succs: Vec<BlockId> = rest
        .last()
        .map(|&t| f.insts[t].kind.successors())
        .unwrap_or_default();
    for s in succs {
        for i in f.blocks[s].insts.clone() {
            if let InstKind::Phi { incoming } = &mut f.insts[i].kind {
                for (p, _) in incoming.iter_mut() {
                    if *p == block {
                        *p = cont;
                    }
                }
            }
        }
    }
    f.append_inst(
        block,
        InstKind::Branch {
            cond,
            then_target: guarded,
            else_target: cont,
        },
        &[],
    );
    f.append_inst(guarded, InstKind::Jump { target: cont }, &[]);
    (guarded, cont)
}

fn find_inst(f: &Function, inst: InstId) -> Option<(BlockId, usize)> {
    for (b, block) in f.blocks.iter() {
        if let Some(pos) = block.insts.iter().position(|&i| i == inst) {
            return Some((b, pos));
        }
    }
    None
}

fn replace_uses_except(
    f: &mut Function,
    from: ValueId,
    to: ValueId,
    skip_block: BlockId,
    skip_pos: usize,
) {
    for (b, block) in f
        .blocks
        .iter()
        .map(|(b, bl)| (b, bl.insts.clone()))
        .collect::<Vec<_>>()
    {
        for (pos, i) in block.iter().enumerate() {
            if b == skip_block && pos == skip_pos {
                continue;
            }
            let mut kind = f.insts[*i].kind.clone();
            let mut changed = false;
            kind.visit_operands_mut(|v| {
                if *v == from {
                    *v = to;
                    changed = true;
                }
            });
            if changed {
                f.insts[*i].kind = kind;
            }
        }
    }
}

/// Inserts `if %a >= %b: return <params>` at the entry of the clone,
/// returning the threaded parameters for collection results (valid only
/// when every ret position roots at a param — checked; otherwise no guard
/// is inserted).
fn insert_entry_guard(m: &mut Module, spec: FuncId, a_param: ValueId, b_param: ValueId) {
    // Determine per-ret fallbacks.
    let nrets = m.funcs[spec].ret_tys.len();
    let mut fallbacks = Vec::with_capacity(nrets);
    for ri in 0..nrets {
        match ret_param_root(m, spec, ri) {
            Some(p) if p != usize::MAX => fallbacks.push(m.funcs[spec].param_values[p]),
            _ => return, // cannot guard
        }
    }
    let bool_ty = m.types.intern(Type::Bool);
    let g = &mut m.funcs[spec];
    // Type check the fallbacks.
    for (ri, &fb) in fallbacks.iter().enumerate() {
        if g.value_ty(fb) != g.ret_tys[ri] {
            return;
        }
    }
    let old_entry = g.entry;
    // New entry block: guard, then jump into the old entry.
    let new_entry = g.add_block("dee_entry");
    let early = g.add_block("dee_early_ret");
    let (_, cond) = {
        let (iid, res) = g.append_inst(
            new_entry,
            InstKind::Cmp {
                op: memoir_ir::CmpOp::Ge,
                lhs: a_param,
                rhs: b_param,
            },
            &[bool_ty],
        );
        (iid, res)
    };
    g.append_inst(
        new_entry,
        InstKind::Branch {
            cond: cond[0],
            then_target: early,
            else_target: old_entry,
        },
        &[],
    );
    g.append_inst(early, InstKind::Ret { values: fallbacks }, &[]);
    g.entry = new_entry;
}

/// Guards every write-class op whose escape live range mentions the
/// caller context. Returns whether anything changed.
fn guard_writes(
    m: &mut Module,
    spec: FuncId,
    a_param: ValueId,
    b_param: ValueId,
    stats: &mut DeeStats,
) -> bool {
    let lr = live_ranges(m, spec, &LiveRangeConfig::escape());
    let mut sites: Vec<(InstId, GuardKind)> = Vec::new();
    {
        let f = &m.funcs[spec];
        for (_, i) in f.inst_ids_in_order() {
            let inst = &f.insts[i];
            let Some(&result) = inst.results.first() else {
                continue;
            };
            if !matches!(m.types.get(f.value_ty(result)), Type::Seq(_)) {
                continue;
            }
            let range = lr.range(result);
            if !range.mentions_caller() {
                continue;
            }
            match &inst.kind {
                InstKind::Write { .. } => sites.push((i, GuardKind::Write)),
                InstKind::Swap { .. } => sites.push((i, GuardKind::Swap)),
                InstKind::Insert { .. } => sites.push((i, GuardKind::Insert)),
                _ => {}
            }
        }
    }
    let changed = !sites.is_empty();
    for (inst, kind) in sites {
        match kind {
            GuardKind::Write => {
                guard_write(m, spec, inst, a_param, b_param);
                stats.writes_guarded += 1;
            }
            GuardKind::Insert => {
                guard_insert(m, spec, inst, a_param, b_param);
                stats.inserts_guarded += 1;
            }
            GuardKind::Swap => {
                guard_swap(m, spec, inst, a_param, b_param);
                stats.swaps_guarded += 1;
            }
        }
    }
    changed
}

enum GuardKind {
    Write,
    Insert,
    Swap,
}

/// `S1 = WRITE(S0, i, v)` →
/// `if (a <= i && i < b) { S1' = WRITE(S0, i, v) } ; S1 = φ(S1', S0)`.
fn guard_write(m: &mut Module, fid: FuncId, inst: InstId, a: ValueId, b: ValueId) {
    let bool_ty = m.types.intern(Type::Bool);
    let f = &mut m.funcs[fid];
    let Some((block, pos)) = find_inst(f, inst) else {
        return;
    };
    let InstKind::Write { c: s0, idx, .. } = f.insts[inst].kind else {
        return;
    };
    let result = f.insts[inst].results[0];

    let (_, c1) = f.insert_inst_at(
        block,
        pos,
        InstKind::Cmp {
            op: memoir_ir::CmpOp::Le,
            lhs: a,
            rhs: idx,
        },
        &[bool_ty],
    );
    let (_, c2) = f.insert_inst_at(
        block,
        pos + 1,
        InstKind::Cmp {
            op: memoir_ir::CmpOp::Lt,
            lhs: idx,
            rhs: b,
        },
        &[bool_ty],
    );
    let (_, cond) = f.insert_inst_at(
        block,
        pos + 2,
        InstKind::Bin {
            op: memoir_ir::BinOp::And,
            lhs: c1[0],
            rhs: c2[0],
        },
        &[bool_ty],
    );
    let (guarded, cont) = isolate_inst(f, block, pos + 3, cond[0]);
    // φ merging the written and unwritten versions.
    let ty = f.value_ty(result);
    let (_, phi) = f.insert_inst_at(
        cont,
        0,
        InstKind::Phi {
            incoming: vec![(guarded, result), (block, s0)],
        },
        &[ty],
    );
    replace_uses_except_value(f, result, phi[0], cont, 0);
}

/// `S1 = INSERT(S0, i, v)` → guarded by `i < b` (Alg. 2).
fn guard_insert(m: &mut Module, fid: FuncId, inst: InstId, _a: ValueId, b: ValueId) {
    let bool_ty = m.types.intern(Type::Bool);
    let f = &mut m.funcs[fid];
    let Some((block, pos)) = find_inst(f, inst) else {
        return;
    };
    let InstKind::Insert { c: s0, idx, .. } = f.insts[inst].kind else {
        return;
    };
    let result = f.insts[inst].results[0];
    let (_, cond) = f.insert_inst_at(
        block,
        pos,
        InstKind::Cmp {
            op: memoir_ir::CmpOp::Lt,
            lhs: idx,
            rhs: b,
        },
        &[bool_ty],
    );
    let (guarded, cont) = isolate_inst(f, block, pos + 1, cond[0]);
    let ty = f.value_ty(result);
    let (_, phi) = f.insert_inst_at(
        cont,
        0,
        InstKind::Phi {
            incoming: vec![(guarded, result), (block, s0)],
        },
        &[ty],
    );
    replace_uses_except_value(f, result, phi[0], cont, 0);
}

/// Listing 4's three-way swap guard. The swap `S1 = SWAP(S0, i, i+1, j)`
/// (the element form) becomes:
///
/// ```text
/// if  i∈[a,b) and j∈[a,b):  S1 = SWAP(S0, i, i+1, j)
/// elif i∈[a,b):             %jv = READ(S0, j); S1 = WRITE(S0, i, %jv)
/// elif j∈[a,b):             %iv = READ(S0, i); S1 = WRITE(S0, j, %iv)
/// else:                     S1 = S0
/// ```
fn guard_swap(m: &mut Module, fid: FuncId, inst: InstId, a: ValueId, b: ValueId) {
    let bool_ty = m.types.intern(Type::Bool);
    let f = &mut m.funcs[fid];
    let Some((block, pos)) = find_inst(f, inst) else {
        return;
    };
    let InstKind::Swap {
        c: s0, from, at, ..
    } = f.insts[inst].kind
    else {
        return;
    };
    let result = f.insts[inst].results[0];
    let seq_ty = f.value_ty(result);
    let elem_ty = match m.types.get(seq_ty) {
        Type::Seq(e) => e,
        _ => return,
    };

    // Predicates.
    let in_range = |f: &mut Function, blk: BlockId, p: usize, x: ValueId| -> (usize, ValueId) {
        let (_, c1) = f.insert_inst_at(
            blk,
            p,
            InstKind::Cmp {
                op: memoir_ir::CmpOp::Le,
                lhs: a,
                rhs: x,
            },
            &[bool_ty],
        );
        let (_, c2) = f.insert_inst_at(
            blk,
            p + 1,
            InstKind::Cmp {
                op: memoir_ir::CmpOp::Lt,
                lhs: x,
                rhs: b,
            },
            &[bool_ty],
        );
        let (_, c) = f.insert_inst_at(
            blk,
            p + 2,
            InstKind::Bin {
                op: memoir_ir::BinOp::And,
                lhs: c1[0],
                rhs: c2[0],
            },
            &[bool_ty],
        );
        (p + 3, c[0])
    };
    let (p, from_live) = in_range(f, block, pos, from);
    let (p, to_live) = in_range(f, block, p, at);
    let (_, both) = f.insert_inst_at(
        block,
        p,
        InstKind::Bin {
            op: memoir_ir::BinOp::And,
            lhs: from_live,
            rhs: to_live,
        },
        &[bool_ty],
    );
    let both = both[0];
    let swap_pos = p + 1;

    // Build the diamond: block → {bb_swap | bb_check1}; bb_check1 →
    // {bb_w1 | bb_check2}; bb_check2 → {bb_w2 | cont-edge} … all joining
    // at cont with a φ of 4 versions.
    let bb_swap = f.add_block("dee_swap");
    let bb_check1 = f.add_block("dee_chk1");
    let bb_w1 = f.add_block("dee_w1");
    let bb_check2 = f.add_block("dee_chk2");
    let bb_w2 = f.add_block("dee_w2");
    let cont = f.add_block("dee_cont");

    // Move the swap and the tail.
    let tail: Vec<InstId> = f.blocks[block].insts.drain(swap_pos..).collect();
    let (swap_inst, rest) = tail.split_first().expect("swap at position");
    debug_assert_eq!(*swap_inst, inst);
    f.blocks[bb_swap].insts.push(inst);
    f.blocks[cont].insts.extend(rest.iter().copied());
    // Successor φs now come from cont.
    let succs: Vec<BlockId> = rest
        .last()
        .map(|&t| f.insts[t].kind.successors())
        .unwrap_or_default();
    for s in succs {
        for i2 in f.blocks[s].insts.clone() {
            if let InstKind::Phi { incoming } = &mut f.insts[i2].kind {
                for (pb, _) in incoming.iter_mut() {
                    if *pb == block {
                        *pb = cont;
                    }
                }
            }
        }
    }
    f.append_inst(
        block,
        InstKind::Branch {
            cond: both,
            then_target: bb_swap,
            else_target: bb_check1,
        },
        &[],
    );
    f.append_inst(bb_swap, InstKind::Jump { target: cont }, &[]);

    // bb_check1: if from_live → write in-range half at `from`.
    f.append_inst(
        bb_check1,
        InstKind::Branch {
            cond: from_live,
            then_target: bb_w1,
            else_target: bb_check2,
        },
        &[],
    );
    let (_, jv) = f.append_inst(bb_w1, InstKind::Read { c: s0, idx: at }, &[elem_ty]);
    let (_, w1) = f.append_inst(
        bb_w1,
        InstKind::Write {
            c: s0,
            idx: from,
            value: jv[0],
        },
        &[seq_ty],
    );
    f.append_inst(bb_w1, InstKind::Jump { target: cont }, &[]);

    // bb_check2: if to_live → write in-range half at `at`.
    f.append_inst(
        bb_check2,
        InstKind::Branch {
            cond: to_live,
            then_target: bb_w2,
            else_target: cont,
        },
        &[],
    );
    let (_, iv) = f.append_inst(bb_w2, InstKind::Read { c: s0, idx: from }, &[elem_ty]);
    let (_, w2) = f.append_inst(
        bb_w2,
        InstKind::Write {
            c: s0,
            idx: at,
            value: iv[0],
        },
        &[seq_ty],
    );
    f.append_inst(bb_w2, InstKind::Jump { target: cont }, &[]);

    // φ at cont over the four versions.
    let (_, phi) = f.insert_inst_at(
        cont,
        0,
        InstKind::Phi {
            incoming: vec![
                (bb_swap, result),
                (bb_w1, w1[0]),
                (bb_w2, w2[0]),
                (bb_check2, s0),
            ],
        },
        &[seq_ty],
    );
    replace_uses_except_value(f, result, phi[0], cont, 0);
}

fn replace_uses_except_value(
    f: &mut Function,
    from: ValueId,
    to: ValueId,
    skip_block: BlockId,
    skip_pos: usize,
) {
    replace_uses_except(f, from, to, skip_block, skip_pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{constprop, dce, simplify};
    use memoir_interp::{Interp, Value};
    use memoir_ir::{CmpOp, ModuleBuilder};

    /// Build: write constants into indices 0..8, read back only [0:3).
    fn partial_read_module() -> Module {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let n = b.index(8);
            let s0 = b.new_seq(i64t, n);
            let mut s = s0;
            for k in 0..8 {
                let ik = b.index(k);
                let vk = b.i64((10 + k) as i64);
                s = b.write(s, ik, vk);
            }
            let i0 = b.index(0);
            let i2 = b.index(2);
            let a = b.read(s, i0);
            let c = b.read(s, i2);
            let sum = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        mb.finish()
    }

    /// Strict DEE + cleanup removes the five dead writes entirely.
    #[test]
    fn strict_dee_eliminates_dead_writes() {
        let mut m = partial_read_module();
        let baseline = {
            let mut i = Interp::new(&m);
            i.run_by_name("main", vec![]).unwrap()
        };
        let stats = dee_strict(&mut m);
        assert!(stats.writes_guarded >= 5, "{stats:?}");
        memoir_ir::verifier::assert_valid(&m);
        // Cleanup per the paper: constant folding simplifies the guards,
        // then DCE removes the dead arms.
        constprop(&mut m);
        simplify(&mut m);
        dce(&mut m);
        memoir_ir::verifier::assert_valid(&m);

        let f = &m.funcs[m.func_by_name("main").unwrap()];
        let writes = f
            .inst_ids_in_order()
            .iter()
            .filter(|(_, i)| matches!(f.insts[*i].kind, InstKind::Write { .. }))
            .count();
        assert_eq!(writes, 3, "only the live-slice writes remain");

        let mut i = Interp::new(&m);
        let out = i.run_by_name("main", vec![]).unwrap();
        assert_eq!(out, baseline);
        assert_eq!(out, vec![Value::Int(Type::I64, 10 + 12)]);
    }

    /// Call specialization: the callee fills the whole sequence, but the
    /// caller only observes a prefix; the specialized callee writes only
    /// the live slice.
    #[test]
    fn call_specialization_bounds_callee_writes() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        let idxt = mb.module.types.intern(Type::Index);
        // fill(s) -> s': s'[i] = i*10 for all i.
        let fill = mb.func("fill", Form::Ssa, |b| {
            let s_in = b.param("s", seqt);
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            let zero = b.index(0);
            let one = b.index(1);
            let sz = b.size(s_in);
            b.jump(header);
            b.switch_to(header);
            let i = b.phi_placeholder(idxt);
            let s_phi = b.phi_placeholder(seqt);
            let entry = b.func.entry;
            b.add_phi_incoming(i, entry, zero);
            b.add_phi_incoming(s_phi, entry, s_in);
            let done = b.cmp(CmpOp::Ge, i, sz);
            b.branch(done, exit, body);
            b.switch_to(body);
            let ten = b.index(10);
            let v = b.mul(i, ten);
            let vi = b.cast(Type::I64, v);
            let s2 = b.write(s_phi, i, vi);
            let next = b.add(i, one);
            let bb = b.current_block();
            b.add_phi_incoming(i, bb, next);
            b.add_phi_incoming(s_phi, bb, s2);
            b.jump(header);
            b.switch_to(exit);
            b.returns(&[seqt]);
            b.ret(vec![s_phi]);
        });
        mb.func("main", Form::Ssa, |b| {
            let n = b.index(8);
            let s = b.new_seq(i64t, n);
            let filled = b.call(Callee::Func(fill), vec![s], &[seqt])[0];
            let i0 = b.index(0);
            let i1 = b.index(1);
            let a = b.read(filled, i0);
            let c = b.read(filled, i1);
            let sum = b.add(a, c);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let mut m = mb.finish();
        memoir_ir::verifier::assert_valid(&m);
        let baseline = {
            let mut i = Interp::new(&m);
            i.run_by_name("main", vec![]).unwrap()
        };

        let stats = dee_specialize_calls(&mut m);
        assert_eq!(stats.functions_specialized, 1, "{stats:?}");
        assert_eq!(stats.calls_specialized, 1, "{stats:?}");
        assert!(stats.writes_guarded >= 1, "{stats:?}");
        memoir_ir::verifier::assert_valid(&m);

        // Observable semantics preserved, and the specialized callee now
        // performs only the live-slice writes (2 instead of 8).
        let mut i = Interp::new(&m);
        let out = i.run_by_name("main", vec![]).unwrap();
        assert_eq!(out, baseline);
        assert_eq!(i.stats.seq_writes, 2, "dead writes skipped at runtime");
    }

    /// The entry guard returns inputs unchanged for an empty live slice.
    #[test]
    fn empty_slice_entry_guard() {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let seqt = mb.module.types.seq_of(i64t);
        mb.func("touch", Form::Ssa, |b| {
            let s_in = b.param("s", seqt);
            let zero = b.index(0);
            let v = b.i64(1);
            let s1 = b.write(s_in, zero, v);
            b.returns(&[seqt]);
            b.ret(vec![s1]);
        });
        let mut m = mb.finish();
        let fid = m.func_by_name("touch").unwrap();
        let mut stats = DeeStats::default();
        let spec = specialize_function(&mut m, fid, &mut stats, DeeOptions::default()).unwrap();
        memoir_ir::verifier::assert_valid(&m);

        // Call the specialization directly with an empty slice [5, 5).
        let mut i = Interp::new(&m);
        let s = i.alloc_seq(vec![Value::Int(Type::I64, 7)]);
        let out = i
            .run(
                spec,
                vec![
                    s.clone(),
                    Value::Int(Type::Index, 5),
                    Value::Int(Type::Index, 5),
                ],
            )
            .unwrap();
        // The sequence is unchanged: element 0 still 7.
        let elems = i.seq_values(&out[0]).unwrap();
        assert_eq!(elems, vec![Value::Int(Type::I64, 7)]);
        assert_eq!(i.stats.seq_writes, 0);

        // And with a live slice [0, 1) the write happens.
        let mut i2 = Interp::new(&m);
        let s2 = i2.alloc_seq(vec![Value::Int(Type::I64, 7)]);
        let out2 = i2
            .run(
                spec,
                vec![s2, Value::Int(Type::Index, 0), Value::Int(Type::Index, 1)],
            )
            .unwrap();
        let elems2 = i2.seq_values(&out2[0]).unwrap();
        assert_eq!(elems2, vec![Value::Int(Type::I64, 1)]);
    }
}
