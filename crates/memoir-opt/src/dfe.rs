//! Dead Field Elimination (paper §V).
//!
//! A field array that is never read — and whose owning objects are never
//! passed to unknown code under partial compilation — is dead: all writes
//! to it are removed and the field is eliminated from the type definition,
//! shrinking every object of that type (§VII-C reports this shrinking
//! mcf's hot object to 56 bytes, packing more objects per cache line).

use memoir_ir::{InstKind, Module, ObjTypeId};
use std::collections::HashSet;

/// Statistics from a DFE run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DfeStats {
    /// `(type, field-name)` pairs eliminated.
    pub fields_eliminated: Vec<(String, String)>,
    /// Field writes removed.
    pub writes_removed: usize,
}

/// Runs dead field elimination over the whole module.
pub fn dfe(m: &mut Module) -> DfeStats {
    dfe_with(m, &mut passman::AnalysisManager::new())
}

/// Like [`dfe`], but takes the [`TypeEscape`](memoir_analysis::TypeEscape)
/// analysis — which types
/// reach unknown code and must keep their layout — from a shared
/// [`passman::AnalysisManager`] instead of rescanning every extern call
/// site itself.
pub fn dfe_with(m: &mut Module, am: &mut passman::AnalysisManager<Module>) -> DfeStats {
    let mut stats = DfeStats::default();

    // Types whose references reach unknown code (externs that read args).
    let escape = am.get_module::<memoir_analysis::cached::CachedTypeEscape>(m);

    // 1. Which (type, field) pairs are read anywhere?
    let mut read: HashSet<(ObjTypeId, u32)> = HashSet::new();
    for (_, f) in m.funcs.iter() {
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::FieldRead { obj_ty, field, .. } = &f.insts[i].kind {
                read.insert((*obj_ty, *field));
            }
        }
    }

    // 2. Per type, find dead fields (written or not — an unread field is
    // dead either way; removing an unwritten one is also profitable).
    // Process types one at a time because removal shifts field indices.
    loop {
        let mut victim: Option<(ObjTypeId, u32)> = None;
        'outer: for (ty, obj) in m.types.objects() {
            if escape.escapes(ty) {
                continue;
            }
            for fi in 0..obj.fields.len() as u32 {
                if !read.contains(&(ty, fi)) {
                    victim = Some((ty, fi));
                    break 'outer;
                }
            }
        }
        let Some((ty, field)) = victim else { break };
        let fname = m.types.object(ty).fields[field as usize].name.clone();
        let tname = m.types.object(ty).name.clone();
        stats.writes_removed += remove_field(m, ty, field);
        stats.fields_eliminated.push((tname, fname));
        // Re-index the read set for this type.
        read = read
            .into_iter()
            .filter_map(|(t, fi)| {
                if t != ty {
                    Some((t, fi))
                } else if fi == field {
                    None
                } else if fi > field {
                    Some((t, fi - 1))
                } else {
                    Some((t, fi))
                }
            })
            .collect();
    }
    stats
}

/// Removes `field` of `ty` from the type definition and every access,
/// shifting higher field indices down. Returns the number of writes
/// removed.
pub fn remove_field(m: &mut Module, ty: ObjTypeId, field: u32) -> usize {
    let mut removed = 0;
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        let f = &mut m.funcs[fid];
        let mut to_remove = Vec::new();
        for (b, i) in f.inst_ids_in_order() {
            match &mut f.insts[i].kind {
                InstKind::FieldWrite {
                    obj_ty, field: fi, ..
                }
                | InstKind::FieldRead {
                    obj_ty, field: fi, ..
                } if *obj_ty == ty => {
                    if *fi == field {
                        to_remove.push((b, i));
                    } else if *fi > field {
                        *fi -= 1;
                    }
                }
                _ => {}
            }
        }
        removed += to_remove.len();
        for (b, i) in to_remove {
            f.remove_inst(b, i);
        }
    }
    let mut fields = m.types.object(ty).fields.clone();
    fields.remove(field as usize);
    m.types
        .set_fields(ty, fields)
        .expect("removing a field keeps the type valid");
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{Callee, Field, Form, ModuleBuilder, Type};

    fn module_with_fields() -> (Module, ObjTypeId) {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let i16t = mb.module.types.intern(Type::I16);
        let obj = mb
            .module
            .types
            .define_object(
                "arc",
                vec![
                    Field {
                        name: "cost".into(),
                        ty: i64t,
                    },
                    Field {
                        name: "scratch".into(),
                        ty: i16t,
                    }, // written, never read
                    Field {
                        name: "flow".into(),
                        ty: i64t,
                    },
                ],
            )
            .unwrap();
        mb.func("main", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let c = b.i64(5);
            b.field_write(o, obj, 0, c);
            let s = b.int(Type::I16, 1);
            b.field_write(o, obj, 1, s);
            let fl = b.i64(2);
            b.field_write(o, obj, 2, fl);
            let rc = b.field_read(o, obj, 0);
            let rf = b.field_read(o, obj, 2);
            let sum = b.add(rc, rf);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        (mb.finish(), obj)
    }

    #[test]
    fn unread_field_eliminated_and_indices_shift() {
        let (mut m, obj) = module_with_fields();
        let before_size = m.types.object_layout(obj).size;
        let baseline = {
            let mut i = memoir_interp::Interp::new(&m);
            i.run_by_name("main", vec![]).unwrap()
        };
        let stats = dfe(&mut m);
        assert_eq!(
            stats.fields_eliminated,
            vec![("arc".into(), "scratch".into())]
        );
        assert_eq!(stats.writes_removed, 1);
        memoir_ir::verifier::assert_valid(&m);
        assert!(m.types.object_layout(obj).size < before_size);
        assert_eq!(m.types.object(obj).fields.len(), 2);

        let mut i = memoir_interp::Interp::new(&m);
        let out = i.run_by_name("main", vec![]).unwrap();
        assert_eq!(out, baseline);
    }

    #[test]
    fn read_fields_survive() {
        let (mut m, obj) = module_with_fields();
        dfe(&mut m);
        let names: Vec<&str> = m
            .types
            .object(obj)
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["cost", "flow"]);
    }

    #[test]
    fn escaping_type_is_protected() {
        let (mut m, obj) = module_with_fields();
        // Declare an extern that receives a reference to the object type.
        let ref_ty = m.types.ref_of(obj);
        let ext = m.add_extern(memoir_ir::ExternDecl {
            name: "inspect".into(),
            params: vec![ref_ty],
            ret_tys: vec![],
            effects: memoir_ir::ExternEffects::pure_reader(),
        });
        // Add a call to it from main.
        let fid = m.func_by_name("main").unwrap();
        let f = &mut m.funcs[fid];
        // The object ref is the result of the first instruction.
        let (entry, first) = f.inst_ids_in_order()[0];
        let obj_ref = f.insts[first].results[0];
        let pos = 1;
        f.insert_inst_at(
            entry,
            pos,
            InstKind::Call {
                callee: Callee::Extern(ext),
                args: vec![obj_ref],
            },
            &[],
        );
        let stats = dfe(&mut m);
        assert!(
            stats.fields_eliminated.is_empty(),
            "unknown code may read any field"
        );
    }
}
