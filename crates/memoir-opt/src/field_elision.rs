//! Field Elision (paper §V).
//!
//! Converts a field of an object type into a key-value pair stored in an
//! associative array `Assoc<&T, U>`, reducing the memory of
//! possibly-unused fields and improving the spatial locality of the
//! remaining ones. Unlike data-structure splicing, no pointer field is
//! added — the collection replaces it (§V).
//!
//! The transformation (per the paper): construct `A_{T.a} = new
//! Assoc<&T, U>` at the beginning of the program's entry function; replace
//! every reference to the field array `F_{T.a}` with `A_{T.a}`; where the
//! field array was used across functions, add a parameter threading the
//! assoc (the ARGφ rewrite); finally remove field `a` from `T`.
//!
//! This pass runs on the **mut form** (layout transformations are
//! position-independent; see DESIGN.md §6): the assoc parameter threads
//! by-reference exactly like a C++ `&` parameter.

use crate::dfe::remove_field;
use memoir_ir::{Callee, Form, FuncId, InstKind, Module, ObjTypeId, TypeId, ValueId};
use std::collections::{HashMap, HashSet};

/// Statistics from field elision.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FieldElisionStats {
    /// `(type, field)` pairs elided.
    pub fields_elided: Vec<(String, String)>,
    /// Functions that gained a threaded assoc parameter.
    pub functions_threaded: usize,
    /// Field accesses rewritten to assoc accesses.
    pub accesses_rewritten: usize,
}

/// Errors from field elision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElisionError {
    /// The module has no entry function to host the assoc allocation.
    NoEntryFunction,
    /// The module is not in mut form.
    NotMutForm,
    /// The object type's references reach unknown code.
    EscapesToUnknown(String),
}

impl std::fmt::Display for ElisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElisionError::NoEntryFunction => write!(f, "module has no entry function"),
            ElisionError::NotMutForm => write!(f, "field elision runs on the mut form"),
            ElisionError::EscapesToUnknown(t) => {
                write!(f, "references to `{t}` reach unknown code")
            }
        }
    }
}

impl std::error::Error for ElisionError {}

/// Elides every field below the affinity `threshold` (see
/// [`memoir_analysis::Affinity`]).
pub fn auto_field_elision(
    m: &mut Module,
    threshold: f64,
) -> Result<FieldElisionStats, ElisionError> {
    auto_field_elision_with(m, threshold, &mut passman::AnalysisManager::new())
}

/// Like [`auto_field_elision`], but derives the affinity analysis through
/// a shared [`passman::AnalysisManager`]: cached while the module is
/// untouched (so a pipeline that already computed affinity pays nothing),
/// invalidated after every elision rewrite.
pub fn auto_field_elision_with(
    m: &mut Module,
    threshold: f64,
    am: &mut passman::AnalysisManager<Module>,
) -> Result<FieldElisionStats, ElisionError> {
    use memoir_analysis::cached::CachedAffinity;
    let mut stats = FieldElisionStats::default();
    let types: Vec<ObjTypeId> = m.types.objects().map(|(t, _)| t).collect();
    for ty in types {
        // Candidates shift as fields are removed: take them one at a time.
        loop {
            let cands = am
                .get_module::<CachedAffinity>(m)
                .elision_candidates(ty, threshold);
            let Some(&field) = cands.first() else { break };
            let s = field_elision(m, ty, field)?;
            am.invalidate_all();
            stats.fields_elided.extend(s.fields_elided);
            stats.functions_threaded += s.functions_threaded;
            stats.accesses_rewritten += s.accesses_rewritten;
        }
    }
    Ok(stats)
}

/// Elides one specific field of one type.
pub fn field_elision(
    m: &mut Module,
    ty: ObjTypeId,
    field: u32,
) -> Result<FieldElisionStats, ElisionError> {
    let entry = m.entry.ok_or(ElisionError::NoEntryFunction)?;
    if !m.all_in_form(Form::Mut) {
        return Err(ElisionError::NotMutForm);
    }
    let mut stats = FieldElisionStats::default();
    let tname = m.types.object(ty).name.clone();
    let fname = m.types.object(ty).fields[field as usize].name.clone();

    // The assoc type.
    let ref_ty = m.types.ref_of(ty);
    let val_ty = m.types.object(ty).fields[field as usize].ty;
    let assoc_ty = m.types.assoc_of(ref_ty, val_ty);

    // Which functions touch the field (directly or through calls)?
    let mut needs: HashSet<FuncId> = HashSet::new();
    for (fid, f) in m.funcs.iter() {
        for (_, i) in f.inst_ids_in_order() {
            if let InstKind::FieldRead {
                obj_ty, field: fi, ..
            }
            | InstKind::FieldWrite {
                obj_ty, field: fi, ..
            } = &f.insts[i].kind
            {
                if *obj_ty == ty && *fi == field {
                    needs.insert(fid);
                }
            }
        }
    }
    // Close over callers.
    loop {
        let mut grew = false;
        for (fid, f) in m.funcs.iter() {
            if needs.contains(&fid) {
                continue;
            }
            for (_, i) in f.inst_ids_in_order() {
                if let InstKind::Call {
                    callee: Callee::Func(t),
                    ..
                } = &f.insts[i].kind
                {
                    if needs.contains(t) {
                        needs.insert(fid);
                        grew = true;
                        break;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    // The local assoc value per function: the allocation in the entry
    // function, a new by-ref parameter elsewhere.
    let mut local_assoc: HashMap<FuncId, ValueId> = HashMap::new();
    {
        // Allocate at the top of the entry function.
        let f = &mut m.funcs[entry];
        let (_, res) = f.insert_inst_at(
            f.entry,
            0,
            InstKind::NewAssoc {
                key: ref_ty,
                value: val_ty,
            },
            &[assoc_ty],
        );
        f.values[res[0]].name = Some(format!("A_{tname}_{fname}"));
        local_assoc.insert(entry, res[0]);
    }
    for &fid in &needs {
        if fid == entry {
            continue;
        }
        let f = &mut m.funcs[fid];
        let pv = f.add_param(format!("A_{tname}_{fname}"), assoc_ty, true);
        local_assoc.insert(fid, pv);
        stats.functions_threaded += 1;
    }

    // Rewrite accesses and call sites.
    let all_funcs: Vec<FuncId> = m.funcs.ids().collect();
    for fid in all_funcs {
        let in_needs = needs.contains(&fid) || fid == entry;
        let Some(&assoc) = local_assoc.get(&fid) else {
            // Functions outside `needs` may still call into `needs` only
            // if... they can't: closure added all callers. Those that call
            // no needing function are untouched.
            continue;
        };
        let _ = in_needs;
        let f = &mut m.funcs[fid];
        for (b, i) in f.inst_ids_in_order() {
            let kind = f.insts[i].kind.clone();
            match kind {
                InstKind::FieldRead {
                    obj,
                    obj_ty,
                    field: fi,
                } if obj_ty == ty && fi == field => {
                    f.insts[i].kind = InstKind::Read { c: assoc, idx: obj };
                    stats.accesses_rewritten += 1;
                }
                InstKind::FieldWrite {
                    obj,
                    obj_ty,
                    field: fi,
                    value,
                } if obj_ty == ty && fi == field => {
                    f.insts[i].kind = InstKind::MutWrite {
                        c: assoc,
                        idx: obj,
                        value,
                    };
                    stats.accesses_rewritten += 1;
                }
                InstKind::Call {
                    callee: Callee::Func(t),
                    mut args,
                } if needs.contains(&t) => {
                    args.push(assoc);
                    f.insts[i].kind = InstKind::Call {
                        callee: Callee::Func(t),
                        args,
                    };
                }
                _ => {
                    let _ = b;
                }
            }
        }
    }

    // Remove the field from the type (also shifts access indices).
    remove_field(m, ty, field);
    stats.fields_elided.push((tname, fname));
    Ok(stats)
}

/// The element value type of an elided field's assoc (test helper).
pub fn elided_assoc_ty(m: &mut Module, ty: ObjTypeId, val_ty: TypeId) -> TypeId {
    let r = m.types.ref_of(ty);
    m.types.assoc_of(r, val_ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};
    use memoir_ir::{Field, ModuleBuilder, Type};

    /// An object with a hot `cost` and a cold `note`; a helper function
    /// reads the cold field so threading is exercised.
    fn build() -> (Module, ObjTypeId) {
        let mut mb = ModuleBuilder::new("m");
        let i64t = mb.module.types.intern(Type::I64);
        let obj = mb
            .module
            .types
            .define_object(
                "arc",
                vec![
                    Field {
                        name: "cost".into(),
                        ty: i64t,
                    },
                    Field {
                        name: "note".into(),
                        ty: i64t,
                    },
                ],
            )
            .unwrap();
        let ref_ty = mb.module.types.ref_of(obj);
        let helper = mb.func("get_note", Form::Mut, |b| {
            let o = b.param("o", ref_ty);
            let v = b.field_read(o, obj, 1);
            b.returns(&[i64t]);
            b.ret(vec![v]);
        });
        mb.func("main", Form::Mut, |b| {
            let o = b.new_obj(obj);
            let c = b.i64(100);
            b.field_write(o, obj, 0, c);
            let n = b.i64(7);
            b.field_write(o, obj, 1, n);
            let rc = b.field_read(o, obj, 0);
            let rn = b.call(Callee::Func(helper), vec![o], &[i64t])[0];
            let sum = b.add(rc, rn);
            b.returns(&[i64t]);
            b.ret(vec![sum]);
        });
        let mut m = mb.finish();
        m.entry = m.func_by_name("main");
        (m, obj)
    }

    #[test]
    fn elision_preserves_semantics_and_shrinks_object() {
        let (mut m, obj) = build();
        let before_size = m.types.object_layout(obj).size;
        let baseline = {
            let mut i = Interp::new(&m);
            i.run_by_name("main", vec![]).unwrap()
        };
        let stats = field_elision(&mut m, obj, 1).unwrap();
        assert_eq!(stats.fields_elided, vec![("arc".into(), "note".into())]);
        assert_eq!(stats.functions_threaded, 1, "helper gains the assoc param");
        assert!(stats.accesses_rewritten >= 2);
        memoir_ir::verifier::assert_valid(&m);
        assert!(m.types.object_layout(obj).size < before_size);

        let mut i = Interp::new(&m);
        let out = i.run_by_name("main", vec![]).unwrap();
        assert_eq!(out, baseline);
        assert_eq!(out, vec![Value::Int(Type::I64, 107)]);
        // The elided accesses now go through an assoc.
        assert!(i.stats.assoc_ops >= 2);
    }

    #[test]
    fn auto_elision_picks_low_affinity_field() {
        let (mut m, obj) = build();
        // `note` is accessed alone in the helper, `cost` co-accessed in
        // main... both have mixed patterns; use a permissive threshold and
        // just check the pass runs and verifies.
        let stats = auto_field_elision(&mut m, 0.6).unwrap();
        memoir_ir::verifier::assert_valid(&m);
        let _ = (stats, obj);
    }

    #[test]
    fn requires_entry_function() {
        let (mut m, obj) = build();
        m.entry = None;
        assert_eq!(
            field_elision(&mut m, obj, 1).unwrap_err(),
            ElisionError::NoEntryFunction
        );
    }
}
