//! Collection-op fusion: collapses chains of collection operations over
//! the same SSA collection version into fused composite ops.
//!
//! Three rule families, all restricted to SSA form (mut-form chains stop
//! at the allocation and say nothing about contents):
//!
//! 1. **Read-modify-write fusion.** The pipeline
//!    `a = read(c₀, i); v = bin(op, a, b); c₁ = write(c₀, i, v)` over the
//!    *same* version `c₀` and the *same* index value `i` collapses into
//!    the fused `c₁ = rmw(c₀, i, op, b)` ([`InstKind::Rmw`]), which
//!    touches storage once instead of twice. Legality comes from the
//!    def-use chains: the read and the bin must be single-use (feeding
//!    only the chain), and the second bin operand must already be
//!    available at the read (dominance), because the fused op is placed
//!    at the read's position. Placing it there preserves the trap point:
//!    `rmw` traps exactly when the read would (the write on the same
//!    version/index can introduce no further trap), and it never extends
//!    an associative key space because the read-half requires the key to
//!    be present. For non-commutative `op` the read must be the left
//!    operand; commutative ops accept either side.
//!
//! 2. **Query folding through version chains.** `size(new_seq(n)) → n`
//!    (even for non-constant `n`), `size(new_assoc()) → 0`, and
//!    `has(write(c₀, k, v), k) → true` (an associative write always
//!    leaves `k` present). Only scalar results are forwarded, so no
//!    collection live range grows and SSA destruction stays copy-free.
//!
//! 3. **Dominance-based CSE of redundant queries.** `size`/`has`/`read`
//!    recomputations whose operand chains reach the same canonical
//!    version with the same key are merged into the dominating
//!    occurrence (scoped value numbering over the dominator tree). The
//!    canonical version walks through chain steps that provably preserve
//!    the query's answer: `rmw` preserves sizes and key sets outright;
//!    `write` preserves a *different* key's element when the two keys
//!    are definitely unequal — same-constant comparison or disjoint
//!    [`IndexRanges`] element-level range
//!    lattices; `copy`/`use-phi` preserve everything. Queries are
//!    deleted, never re-pointed at older versions, so fusion cannot
//!    lengthen a collection live range (which would make SSA destruction
//!    insert copies).

use memoir_analysis::{DefUse, DomTree, IndexRanges};
use memoir_ir::{
    BlockId, Constant, Function, InstId, InstKind, Module, Type, TypeTable, ValueDef, ValueId,
};
use std::collections::HashMap;

/// Statistics from one fusion run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// `read; bin; write` pipelines fused into `rmw`.
    pub rmws_fused: usize,
    /// Queries folded through version chains (`size(new_seq(n))→n`,
    /// `size(new_assoc())→0`, `has(write(c,k,v),k)→true`).
    pub queries_folded: usize,
    /// Redundant `size`/`has`/`read` recomputations merged into a
    /// dominating occurrence.
    pub queries_merged: usize,
}

impl FusionStats {
    fn changed(&self) -> bool {
        *self != FusionStats::default()
    }

    fn absorb(&mut self, o: FusionStats) {
        self.rmws_fused += o.rmws_fused;
        self.queries_folded += o.queries_folded;
        self.queries_merged += o.queries_merged;
    }
}

/// Runs fusion over every SSA-form function of the module.
pub fn fuse(m: &mut Module) -> FusionStats {
    let mut stats = FusionStats::default();
    let Module {
        ref types,
        ref mut funcs,
        ..
    } = *m;
    for fid in funcs.ids().collect::<Vec<_>>() {
        stats.absorb(fuse_function(types, &mut funcs[fid]));
    }
    stats
}

/// Runs fusion on one function to a local fixed point. No-op on
/// mut-form functions.
pub fn fuse_function(types: &TypeTable, f: &mut Function) -> FusionStats {
    let mut stats = FusionStats::default();
    if f.form != memoir_ir::Form::Ssa {
        return stats;
    }
    // Each round recomputes def-use/dominance; rounds expose each other
    // (an rmw shortens chains that then CSE). Bounded for safety.
    for _ in 0..8 {
        let round = run_round(types, f);
        stats.absorb(round);
        if !round.changed() {
            return stats;
        }
    }
    stats
}

struct Cx<'a> {
    f: &'a Function,
    dom: DomTree,
    /// Instruction position: block + index within the block.
    pos: HashMap<InstId, (BlockId, usize)>,
}

impl Cx<'_> {
    /// Whether instruction `a` strictly precedes `b` in execution order
    /// (same-block order, or block dominance).
    fn inst_dominates(&self, a: InstId, b: InstId) -> bool {
        let (Some(&(ba, ia)), Some(&(bb, ib))) = (self.pos.get(&a), self.pos.get(&b)) else {
            return false;
        };
        if ba == bb {
            ia < ib
        } else {
            self.dom.dominates(ba, bb)
        }
    }

    /// Whether `v` is available (defined) strictly before instruction
    /// `at` executes.
    fn available_at(&self, v: ValueId, at: InstId) -> bool {
        match self.f.values[v].def {
            ValueDef::Param(_) | ValueDef::Const(_) => true,
            ValueDef::Inst(di, _) => self.inst_dominates(di, at),
        }
    }
}

fn run_round(types: &TypeTable, f: &mut Function) -> FusionStats {
    let mut stats = FusionStats::default();
    let order = f.inst_ids_in_order();
    let mut pos = HashMap::new();
    {
        let mut counters: HashMap<BlockId, usize> = HashMap::new();
        for &(b, i) in &order {
            let c = counters.entry(b).or_insert(0);
            pos.insert(i, (b, *c));
            *c += 1;
        }
    }
    let cx = Cx {
        f,
        dom: DomTree::compute(f),
        pos,
    };
    let du = DefUse::compute(f);
    let idx = IndexRanges::new(f);

    // ---- Rule 1: read-modify-write fusion -------------------------------
    //
    // Collect candidate (read, bin, write) triples first, then apply.
    struct RmwCand {
        read_iid: InstId,
        read_res: ValueId,
        bin_iid: InstId,
        bin_block: BlockId,
        write_iid: InstId,
        write_block: BlockId,
        write_res: ValueId,
        c0: ValueId,
        i: ValueId,
        op: memoir_ir::BinOp,
        b_operand: ValueId,
    }
    let mut cands: Vec<RmwCand> = Vec::new();
    let mut claimed: std::collections::HashSet<InstId> = std::collections::HashSet::new();
    for &(wblk, wiid) in &order {
        let InstKind::Write { c, idx: wi, value } = f.insts[wiid].kind else {
            continue;
        };
        // value = bin(op, lhs, rhs), single-use.
        let ValueDef::Inst(bin_iid, _) = f.values[value].def else {
            continue;
        };
        let InstKind::Bin { op, lhs, rhs } = f.insts[bin_iid].kind else {
            continue;
        };
        if du.use_count(value) != 1 {
            continue;
        }
        // One side is read(c, wi) with the same SSA version and index.
        let is_matching_read = |v: ValueId| -> Option<InstId> {
            let ValueDef::Inst(riid, _) = f.values[v].def else {
                return None;
            };
            match f.insts[riid].kind {
                InstKind::Read { c: rc, idx: ri } if rc == c && ri == wi => Some(riid),
                _ => None,
            }
        };
        let (read_res, b_operand) = if let Some(r) = is_matching_read(lhs) {
            (Some((r, lhs)), rhs)
        } else if op.is_commutative() {
            match is_matching_read(rhs) {
                Some(r) => (Some((r, rhs)), lhs),
                None => (None, lhs),
            }
        } else {
            (None, lhs)
        };
        let Some((read_iid, read_res)) = read_res else {
            continue;
        };
        if read_res == b_operand || du.use_count(read_res) != 1 {
            continue;
        }
        // The fused op replaces the read in place, so the other bin
        // operand must already be defined there.
        if !cx.available_at(b_operand, read_iid) {
            continue;
        }
        if claimed.contains(&read_iid) || claimed.contains(&bin_iid) || claimed.contains(&wiid) {
            continue;
        }
        claimed.extend([read_iid, bin_iid, wiid]);
        let Some(&(bin_block, _)) = cx.pos.get(&bin_iid) else {
            continue;
        };
        cands.push(RmwCand {
            read_iid,
            read_res,
            bin_iid,
            bin_block,
            write_iid: wiid,
            write_block: wblk,
            write_res: f.insts[wiid].results[0],
            c0: c,
            i: wi,
            op,
            b_operand,
        });
    }

    // ---- Rule 2: query folds (scalar-only forwarding) -------------------
    enum Fold {
        /// Replace the query result with an existing value, drop the inst.
        Forward(BlockId, InstId, ValueId, ValueId),
        /// Replace the query result with a constant, drop the inst.
        Const(BlockId, InstId, ValueId, Constant),
    }
    let mut folds: Vec<Fold> = Vec::new();
    for &(blk, iid) in &order {
        if claimed.contains(&iid) {
            continue;
        }
        match f.insts[iid].kind {
            InstKind::Size { c } => match chain_def(f, c) {
                Some(InstKind::NewSeq { len, .. }) => {
                    folds.push(Fold::Forward(blk, iid, f.insts[iid].results[0], len));
                }
                Some(InstKind::NewAssoc { .. }) => {
                    folds.push(Fold::Const(
                        blk,
                        iid,
                        f.insts[iid].results[0],
                        Constant::index(0),
                    ));
                }
                _ => {}
            },
            InstKind::Has { c, key } => {
                if let Some(InstKind::Write { idx: wk, .. }) = chain_def(f, c) {
                    if wk == key {
                        folds.push(Fold::Const(
                            blk,
                            iid,
                            f.insts[iid].results[0],
                            Constant::Bool(true),
                        ));
                    }
                } else if let Some(InstKind::NewAssoc { .. }) = chain_def(f, c) {
                    folds.push(Fold::Const(
                        blk,
                        iid,
                        f.insts[iid].results[0],
                        Constant::Bool(false),
                    ));
                }
            }
            _ => {}
        }
    }

    // ---- Rule 3: dominance-scoped CSE of size/has/read ------------------
    let folded_or_claimed: std::collections::HashSet<InstId> = claimed
        .iter()
        .copied()
        .chain(folds.iter().map(|a| match a {
            Fold::Forward(_, i, _, _) | Fold::Const(_, i, _, _) => *i,
        }))
        .collect();
    let mut merges: Vec<(BlockId, InstId, ValueId, ValueId)> = Vec::new();
    {
        let mut avail: HashMap<QueryKey, ValueId> = HashMap::new();
        cse_block(
            types,
            f,
            &idx,
            &cx,
            f.entry,
            &folded_or_claimed,
            &mut avail,
            &mut merges,
        );
    }

    // ---- Apply ----------------------------------------------------------
    let mut replacements: HashMap<ValueId, ValueId> = HashMap::new();
    for cand in cands {
        f.insts[cand.read_iid].kind = InstKind::Rmw {
            c: cand.c0,
            idx: cand.i,
            op: cand.op,
            value: cand.b_operand,
        };
        // The result becomes the new collection version.
        f.values[cand.read_res].ty = f.value_ty(cand.c0);
        f.remove_inst(cand.bin_block, cand.bin_iid);
        f.remove_inst(cand.write_block, cand.write_iid);
        replacements.insert(cand.write_res, cand.read_res);
        stats.rmws_fused += 1;
    }
    for fold in folds {
        match fold {
            Fold::Forward(b, i, r, v) => {
                replacements.insert(r, v);
                f.remove_inst(b, i);
                stats.queries_folded += 1;
            }
            Fold::Const(b, i, r, c) => {
                let ty = f.value_ty(r);
                let cv = f.constant(c, ty);
                replacements.insert(r, cv);
                f.remove_inst(b, i);
                stats.queries_folded += 1;
            }
        }
    }
    for (b, i, r, v) in merges {
        replacements.insert(r, v);
        f.remove_inst(b, i);
        stats.queries_merged += 1;
    }
    f.replace_uses_map(&replacements);
    stats
}

/// The defining instruction kind of a value, if instruction-defined.
fn chain_def(f: &Function, v: ValueId) -> Option<InstKind> {
    match f.values[v].def {
        ValueDef::Inst(iid, _) => Some(f.insts[iid].kind.clone()),
        _ => None,
    }
}

/// Canonical key of a query operand for CSE: either a shared SSA value or
/// a constant (so distinct SSA constants with equal payloads still match).
#[derive(Clone, PartialEq, Eq, Hash)]
enum KeyRepr {
    Value(ValueId),
    Const(ConstKey),
}

/// Hashable constant (floats by bit pattern, matching runtime key
/// identity semantics).
#[derive(Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Int(Type, i64),
    Bool(bool),
    Float(Type, u64),
    Null,
}

fn key_repr(f: &Function, v: ValueId) -> KeyRepr {
    match f.value_const(v) {
        Some(Constant::Int(t, x)) => KeyRepr::Const(ConstKey::Int(t, x)),
        Some(Constant::Bool(b)) => KeyRepr::Const(ConstKey::Bool(b)),
        Some(Constant::Float(t, bits)) => KeyRepr::Const(ConstKey::Float(t, bits)),
        Some(Constant::Null(_)) => KeyRepr::Const(ConstKey::Null),
        _ => KeyRepr::Value(v),
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum QueryKey {
    Size(ValueId),
    Has(ValueId, KeyRepr),
    Read(ValueId, KeyRepr),
}

/// Whether two key/index values are *definitely* unequal: distinct
/// constants, or disjoint element-level range lattices.
fn definitely_unequal(f: &Function, idx: &IndexRanges<'_>, a: ValueId, b: ValueId) -> bool {
    if let (Some(ca), Some(cb)) = (f.value_const(a), f.value_const(b)) {
        return ca != cb;
    }
    // Disjoint constant ranges (hi is exclusive).
    let (ra, rb) = (idx.range_of(a), idx.range_of(b));
    match (
        ra.lo.as_const(),
        ra.hi.as_const(),
        rb.lo.as_const(),
        rb.hi.as_const(),
    ) {
        (Some(_), Some(ahi), Some(blo), Some(_)) if ahi <= blo => true,
        (Some(alo), Some(_), Some(_), Some(bhi)) if bhi <= alo => true,
        _ => false,
    }
}

/// Walks `c` backwards through chain steps that preserve the query's
/// answer, returning the canonical (oldest equivalent) version.
fn canonical_version(
    types: &TypeTable,
    f: &Function,
    idx: &IndexRanges<'_>,
    q: &QueryKind,
    mut c: ValueId,
) -> ValueId {
    let is_seq = |v: ValueId| matches!(types.get(f.value_ty(v)), Type::Seq(_));
    for _ in 0..64 {
        let ValueDef::Inst(iid, _) = f.values[c].def else {
            return c;
        };
        let next = match (&f.insts[iid].kind, q) {
            // Copies and use-φs preserve contents wholesale.
            (InstKind::Copy { c: p } | InstKind::UsePhi { c: p }, _) => *p,
            // rmw preserves sizes and key sets; it changes exactly one
            // element, so reads of definitely-different keys pass too.
            (InstKind::Rmw { c: p, .. }, QueryKind::Size | QueryKind::Has(_)) => *p,
            (InstKind::Rmw { c: p, idx: j, .. }, QueryKind::Read(k))
                if definitely_unequal(f, idx, *j, *k) =>
            {
                *p
            }
            // A sequence write preserves size; an associative write may
            // grow the key space, so size does not pass through it.
            (InstKind::Write { c: p, .. }, QueryKind::Size) if is_seq(*p) => *p,
            (InstKind::Swap { c: p, .. }, QueryKind::Size) if is_seq(*p) => *p,
            // A write preserves `has k` / `read k` for definitely
            // different keys (sequence writes never shift indices).
            (InstKind::Write { c: p, idx: j, .. }, QueryKind::Has(k) | QueryKind::Read(k))
                if definitely_unequal(f, idx, *j, *k) =>
            {
                *p
            }
            _ => return c,
        };
        c = next;
    }
    c
}

enum QueryKind {
    Size,
    Has(ValueId),
    Read(ValueId),
}

/// Scoped value numbering over the dominator tree: children inherit the
/// parent block's available queries; siblings do not see each other.
#[allow(clippy::too_many_arguments)]
fn cse_block(
    types: &TypeTable,
    f: &Function,
    idx: &IndexRanges<'_>,
    cx: &Cx<'_>,
    block: BlockId,
    skip: &std::collections::HashSet<InstId>,
    avail: &mut HashMap<QueryKey, ValueId>,
    merges: &mut Vec<(BlockId, InstId, ValueId, ValueId)>,
) {
    let added: Vec<QueryKey> = {
        let mut added = Vec::new();
        for &iid in &f.blocks[block].insts {
            if skip.contains(&iid) {
                continue;
            }
            let key = match &f.insts[iid].kind {
                InstKind::Size { c } => Some(QueryKey::Size(canonical_version(
                    types,
                    f,
                    idx,
                    &QueryKind::Size,
                    *c,
                ))),
                InstKind::Has { c, key } => Some(QueryKey::Has(
                    canonical_version(types, f, idx, &QueryKind::Has(*key), *c),
                    key_repr(f, *key),
                )),
                InstKind::Read { c, idx: i } => Some(QueryKey::Read(
                    canonical_version(types, f, idx, &QueryKind::Read(*i), *c),
                    key_repr(f, *i),
                )),
                _ => None,
            };
            let Some(key) = key else { continue };
            let res = f.insts[iid].results[0];
            match avail.get(&key) {
                Some(&prior) if prior != res => {
                    merges.push((block, iid, res, prior));
                }
                Some(_) => {}
                None => {
                    avail.insert(key.clone(), res);
                    added.push(key);
                }
            }
        }
        added
    };
    // Recurse into dominated children.
    if let Some(kids) = cx.dom.children.get(&block) {
        for &b in &kids.clone() {
            cse_block(types, f, idx, cx, b, skip, avail, merges);
        }
    }
    for key in added {
        avail.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_ir::{BinOp, Form, ModuleBuilder};

    fn kinds(f: &Function) -> Vec<&'static str> {
        f.inst_ids_in_order()
            .into_iter()
            .map(|(_, i)| match f.insts[i].kind {
                InstKind::Read { .. } => "read",
                InstKind::Write { .. } => "write",
                InstKind::Rmw { .. } => "rmw",
                InstKind::Bin { .. } => "bin",
                InstKind::Size { .. } => "size",
                InstKind::Has { .. } => "has",
                _ => "other",
            })
            .collect()
    }

    #[test]
    fn read_bin_write_fuses_to_rmw() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let seq_ty = b.types.seq_of(i64t);
            let s = b.param("s", seq_ty);
            let i = b.index(2);
            let a = b.read(s, i);
            let one = b.i64(1);
            let v = b.add(a, one);
            let s1 = b.write(s, i, v);
            b.returns(&[seq_ty]);
            b.ret(vec![s1]);
        });
        let mut m = mb.finish();
        let stats = fuse(&mut m);
        assert_eq!(stats.rmws_fused, 1);
        let f = &m.funcs[m.func_by_name("f").unwrap()];
        let ks = kinds(f);
        assert!(ks.contains(&"rmw"), "fused: {ks:?}");
        assert!(!ks.contains(&"read") && !ks.contains(&"write"));
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn commutative_swap_fuses_reversed_operands() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let seq_ty = b.types.seq_of(i64t);
            let s = b.param("s", seq_ty);
            let delta = b.param("d", i64t);
            let i = b.index(0);
            let a = b.read(s, i);
            let v = b.add(delta, a); // read on the rhs
            let s1 = b.write(s, i, v);
            b.returns(&[seq_ty]);
            b.ret(vec![s1]);
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m).rmws_fused, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn non_commutative_rhs_read_does_not_fuse() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let seq_ty = b.types.seq_of(i64t);
            let s = b.param("s", seq_ty);
            let x = b.param("x", i64t);
            let i = b.index(0);
            let a = b.read(s, i);
            let v = b.sub(x, a); // x - elem: not elem - x
            let s1 = b.write(s, i, v);
            b.returns(&[seq_ty]);
            b.ret(vec![s1]);
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m).rmws_fused, 0);
    }

    #[test]
    fn multi_use_read_does_not_fuse() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let seq_ty = b.types.seq_of(i64t);
            let s = b.param("s", seq_ty);
            let i = b.index(0);
            let a = b.read(s, i);
            let one = b.i64(1);
            let v = b.add(a, one);
            let s1 = b.write(s, i, v);
            b.returns(&[seq_ty, i64t]);
            b.ret(vec![s1, a]); // `a` escapes: fusing would lose it
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m).rmws_fused, 0);
    }

    #[test]
    fn assoc_rmw_fuses() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let assoc_ty = b.types.assoc_of(i64t, i64t);
            let a0 = b.param("a", assoc_ty);
            let k = b.param("k", i64t);
            let amt = b.param("amt", i64t);
            let x = b.read(a0, k);
            let v = b.add(x, amt);
            let a1 = b.write(a0, k, v);
            b.returns(&[assoc_ty]);
            b.ret(vec![a1]);
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m).rmws_fused, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn size_of_new_seq_folds_to_len() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let n = b.param("n", idxt);
            let s = b.new_seq(i64t, n);
            let sz = b.size(s);
            b.returns(&[idxt]);
            b.ret(vec![sz]);
        });
        let mut m = mb.finish();
        let stats = fuse(&mut m);
        assert_eq!(stats.queries_folded, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn has_after_write_folds_true() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let boolt = b.ty(Type::Bool);
            let assoc_ty = b.types.assoc_of(i64t, i64t);
            let a0 = b.param("a", assoc_ty);
            let k = b.param("k", i64t);
            let v = b.i64(1);
            let a1 = b.write(a0, k, v);
            let h = b.has(a1, k);
            b.returns(&[boolt]);
            b.ret(vec![h]);
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m).queries_folded, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn redundant_size_merges_through_rmw() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let idxt = b.ty(Type::Index);
            let seq_ty = b.types.seq_of(i64t);
            let s = b.param("s", seq_ty);
            let i = b.index(0);
            let one = b.i64(1);
            let sz0 = b.size(s);
            let s1 = b.rmw(s, i, BinOp::Add, one);
            let sz1 = b.size(s1); // same size as sz0
            let total = b.add(sz0, sz1);
            b.returns(&[idxt]);
            b.ret(vec![total]);
        });
        let mut m = mb.finish();
        let stats = fuse(&mut m);
        assert_eq!(stats.queries_merged, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn read_cse_respects_possibly_equal_keys() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let assoc_ty = b.types.assoc_of(i64t, i64t);
            let a0 = b.param("a", assoc_ty);
            let k = b.param("k", i64t);
            let j = b.param("j", i64t); // may equal k
            let r0 = b.read(a0, k);
            let v = b.i64(9);
            let a1 = b.write(a0, j, v);
            let r1 = b.read(a1, k); // NOT redundant: j may alias k
            let out = b.add(r0, r1);
            b.returns(&[i64t]);
            b.ret(vec![out]);
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m).queries_merged, 0);
    }

    #[test]
    fn read_cse_through_definitely_unequal_write() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Ssa, |b| {
            let i64t = b.ty(Type::I64);
            let assoc_ty = b.types.assoc_of(i64t, i64t);
            let a0 = b.param("a", assoc_ty);
            let k0 = b.i64(0);
            let k1 = b.i64(1);
            let r0 = b.read(a0, k0);
            let v = b.i64(9);
            let a1 = b.write(a0, k1, v);
            let r1 = b.read(a1, k0); // redundant: keys 0 and 1 differ
            let out = b.add(r0, r1);
            b.returns(&[i64t]);
            b.ret(vec![out]);
        });
        let mut m = mb.finish();
        let stats = fuse(&mut m);
        assert_eq!(stats.queries_merged, 1);
        memoir_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn mut_form_is_untouched() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("f", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let seq_ty = b.types.seq_of(i64t);
            let s = b.param_ref("s", seq_ty);
            let i = b.index(0);
            let a = b.read(s, i);
            let one = b.i64(1);
            let v = b.add(a, one);
            b.mut_write(s, i, v);
            b.returns(&[]);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        assert_eq!(fuse(&mut m), FusionStats::default());
    }
}
