//! Key folding (paper §VII-C, applied to deepsjeng together with field
//! elision).
//!
//! When every key flowing into an associative array is produced by a
//! widening `cast` from one common narrower type, the array can be retyped
//! to the narrower key directly and the casts removed. Widening integer
//! casts are injective, so identity equality of keys is preserved
//! (§IV-D). This is our reading of the paper's (undescribed) "key
//! folding": deepsjeng's elided 16-bit field keys a table that needs no
//! 64-bit key storage.
//!
//! Runs on the mut form.

use memoir_ir::{Form, FuncId, InstId, InstKind, Module, Type, ValueDef, ValueId};

/// Statistics from a key-folding run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyFoldStats {
    /// Associative arrays retyped to a narrower key.
    pub assocs_folded: usize,
    /// Casts bypassed at access sites.
    pub casts_removed: usize,
}

/// Whether `from` → `to` is a widening (injective) integer conversion.
fn is_widening(from: Type, to: Type) -> bool {
    fn width(t: Type) -> Option<(u32, bool)> {
        Some(match t {
            Type::I8 => (8, true),
            Type::U8 => (8, false),
            Type::I16 => (16, true),
            Type::U16 => (16, false),
            Type::I32 => (32, true),
            Type::U32 => (32, false),
            Type::I64 => (64, true),
            Type::U64 | Type::Index => (64, false),
            _ => return None,
        })
    }
    match (width(from), width(to)) {
        (Some((wf, sf)), Some((wt, st))) => wt > wf && (sf == st || !sf),
        _ => false,
    }
}

/// Runs key folding on every mut-form function.
pub fn key_fold(m: &mut Module) -> KeyFoldStats {
    let mut stats = KeyFoldStats::default();
    for fid in m.funcs.ids().collect::<Vec<_>>() {
        if m.funcs[fid].form != Form::Mut {
            continue;
        }
        stats.merge(key_fold_function(m, fid));
    }
    stats
}

impl KeyFoldStats {
    fn merge(&mut self, o: KeyFoldStats) {
        self.assocs_folded += o.assocs_folded;
        self.casts_removed += o.casts_removed;
    }
}

fn key_fold_function(m: &mut Module, fid: FuncId) -> KeyFoldStats {
    let mut stats = KeyFoldStats::default();
    let candidates: Vec<InstId> = {
        let f = &m.funcs[fid];
        f.inst_ids_in_order()
            .into_iter()
            .filter(|(_, i)| matches!(f.insts[*i].kind, InstKind::NewAssoc { .. }))
            .map(|(_, i)| i)
            .collect()
    };

    'cand: for alloc in candidates {
        let f = &m.funcs[fid];
        let assoc_v = f.insts[alloc].results[0];
        let InstKind::NewAssoc {
            key: key_ty_id,
            value: val_ty_id,
        } = f.insts[alloc].kind
        else {
            continue;
        };
        let wide_ty = m.types.get(key_ty_id);

        // Collect key operands of every access; reject escapes.
        let mut sites: Vec<(InstId, ValueId)> = Vec::new();
        for (_, i) in f.inst_ids_in_order() {
            let kind = &f.insts[i].kind;
            let mut uses = false;
            kind.visit_operands(|&v| uses |= v == assoc_v);
            if !uses {
                continue;
            }
            match kind {
                InstKind::Read { c, idx }
                | InstKind::MutRemove { c, idx }
                | InstKind::Has { c, key: idx }
                    if *c == assoc_v =>
                {
                    sites.push((i, *idx));
                }
                InstKind::MutWrite { c, idx, .. } if *c == assoc_v => sites.push((i, *idx)),
                InstKind::MutInsert { c, idx, .. } if *c == assoc_v => sites.push((i, *idx)),
                InstKind::Size { c } if *c == assoc_v => {}
                _ => continue 'cand,
            }
        }
        if sites.is_empty() {
            continue;
        }

        // Every key must be `cast narrow_value to wide_ty` from one common
        // narrow type.
        let mut narrow_ty: Option<Type> = None;
        let mut replacements: Vec<(InstId, ValueId)> = Vec::new();
        for &(site, key) in &sites {
            let ValueDef::Inst(def, _) = f.values[key].def else {
                continue 'cand;
            };
            let InstKind::Cast { value, .. } = f.insts[def].kind else {
                continue 'cand;
            };
            let src_ty = m.types.get(f.value_ty(value));
            if !is_widening(src_ty, wide_ty) {
                continue 'cand;
            }
            match narrow_ty {
                None => narrow_ty = Some(src_ty),
                Some(t) if t == src_ty => {}
                _ => continue 'cand,
            }
            replacements.push((site, value));
        }
        let Some(narrow) = narrow_ty else { continue };

        // ---- commit: retype the assoc, bypass the casts ----
        let narrow_id = m.types.intern(narrow);
        let new_assoc_ty = m.types.assoc_of(narrow_id, val_ty_id);
        let f = &mut m.funcs[fid];
        f.insts[alloc].kind = InstKind::NewAssoc {
            key: narrow_id,
            value: val_ty_id,
        };
        let result = f.insts[alloc].results[0];
        f.values[result].ty = new_assoc_ty;
        for (site, narrow_v) in replacements {
            let mut kind = f.insts[site].kind.clone();
            match &mut kind {
                InstKind::Read { idx, .. }
                | InstKind::MutRemove { idx, .. }
                | InstKind::Has { key: idx, .. }
                | InstKind::MutWrite { idx, .. }
                | InstKind::MutInsert { idx, .. } => *idx = narrow_v,
                _ => {}
            }
            f.insts[site].kind = kind;
            stats.casts_removed += 1;
        }
        stats.assocs_folded += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use memoir_interp::{Interp, Value};
    use memoir_ir::ModuleBuilder;

    #[test]
    fn widening_cast_keys_are_folded() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let i16t = b.ty(Type::I16);
            let a = b.new_assoc(i64t, i64t);
            let k16 = b.int(Type::I16, 300);
            let k64 = b.cast(Type::I64, k16);
            let v = b.i64(42);
            b.mut_write(a, k64, v);
            let k16b = b.int(Type::I16, 300);
            let k64b = b.cast(Type::I64, k16b);
            let r = b.read(a, k64b);
            let _ = i16t;
            b.returns(&[i64t]);
            b.ret(vec![r]);
        });
        let mut m = mb.finish();
        let baseline = {
            let mut i = Interp::new(&m);
            i.run_by_name("main", vec![]).unwrap()
        };
        let stats = key_fold(&mut m);
        assert_eq!(stats.assocs_folded, 1);
        assert_eq!(stats.casts_removed, 2);
        memoir_ir::verifier::assert_valid(&m);
        let mut i = Interp::new(&m);
        let out = i.run_by_name("main", vec![]).unwrap();
        assert_eq!(out, baseline);
        assert_eq!(out, vec![Value::Int(Type::I64, 42)]);
    }

    #[test]
    fn mixed_key_sources_defeat_folding() {
        let mut mb = ModuleBuilder::new("m");
        mb.func("main", Form::Mut, |b| {
            let i64t = b.ty(Type::I64);
            let a = b.new_assoc(i64t, i64t);
            let k16 = b.int(Type::I16, 3);
            let k64 = b.cast(Type::I64, k16);
            let v = b.i64(1);
            b.mut_write(a, k64, v);
            let direct = b.i64(5); // not a cast
            b.mut_write(a, direct, v);
            b.ret(vec![]);
        });
        let mut m = mb.finish();
        let stats = key_fold(&mut m);
        assert_eq!(stats.assocs_folded, 0);
    }

    #[test]
    fn narrowing_cast_not_folded() {
        // i64 → i16 keys are not injective: must not fold.
        assert!(!is_widening(Type::I64, Type::I16));
        assert!(is_widening(Type::I16, Type::I64));
        assert!(is_widening(Type::U16, Type::I64));
        assert!(
            !is_widening(Type::I16, Type::U64),
            "sign-extension into unsigned differs"
        );
        assert!(is_widening(Type::U8, Type::Index));
    }
}
