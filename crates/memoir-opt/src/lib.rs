//! # memoir-opt
//!
//! MEMOIR transformations (paper §V–§VI): SSA construction and destruction
//! (Fig. 5, Alg. 3), dead element elimination (Alg. 2, Listings 2–4),
//! dead field elimination, field elision, redundant indirection
//! elimination, key folding, and the supporting scalar passes (constant
//! propagation with element-level forwarding, DCE, CFG simplification,
//! sinking, USEφ copy folding), assembled into the Fig. 4 pipeline —
//! now driven by the generic `passman` pass manager: every pass is
//! registered in [`passes::registry`] and pipelines are textual
//! [`PipelineSpec`](passman::PipelineSpec)s (see [`pipeline`]).

#![warn(missing_docs)]

pub mod constprop;
pub mod copyfold;
pub mod dce;
pub mod dee;
pub mod dfe;
pub mod field_elision;
pub mod fusion;
pub mod key_fold;
pub mod lowering;
pub mod materialize;
pub mod passes;
pub mod pipeline;
pub mod rie;
pub mod simplify;
pub mod sink;
pub mod ssa_construct;
pub mod ssa_destruct;

pub use constprop::{constprop, ConstPropStats};
pub use copyfold::{construct_use_phis, destruct_use_phis};
pub use dce::{dce, DceStats};
pub use dee::{dee_specialize_calls, dee_specialize_calls_with, dee_strict, DeeOptions, DeeStats};
pub use dfe::{dfe, DfeStats};
pub use field_elision::{auto_field_elision, field_elision, FieldElisionStats};
pub use fusion::{fuse, FusionStats};
pub use key_fold::{key_fold, KeyFoldStats};
pub use lowering::{
    compile_lowered_with, split_lowered_spec, LowerConfig, LoweredOutcome, LoweredPipeline,
    LOWER_STAGE,
};
pub use passes::registry;
pub use pipeline::{
    compile, compile_spec, compile_spec_with, default_spec, pass_manager, OptConfig, OptLevel,
    PipelineReport,
};
pub use rie::{rie, RieStats};
pub use simplify::{simplify, SimplifyStats};
pub use sink::{sink, SinkStats};
pub use ssa_construct::{construct_ssa, ConstructError};
pub use ssa_destruct::{destruct_ssa, DestructStats};
